#!/usr/bin/env python
"""How good is zero-shot search, really?  Compare against the exact oracle.

NAS-Bench-201 is small enough to enumerate, so this example computes the
*exact* accuracy/latency frontier (all 9,445 functionally unique
architectures via the latency LUT and the surrogate benchmark), then
overlays what the zero-shot machinery finds without training anything:

* the multi-objective Pareto front of a 32-architecture proxy sample,
* the knee point a user would deploy.

The printout shows the oracle frontier's knees and where the zero-shot
picks land — the regret picture of benchmark A13, as a runnable script.

Runtime: about a minute (enumeration ~10 s, proxies dominate).
"""

from __future__ import annotations

from repro.benchdata import SurrogateModel, build_oracle_table
from repro.hardware import LatencyEstimator, NUCLEO_F746ZG
from repro.proxies import ProxyConfig
from repro.search import HybridObjective, ObjectiveWeights, ParetoZeroShotSearch
from repro.searchspace.network import MacroConfig
from repro.utils import format_table


def main() -> None:
    print("profiling nucleo-f746zg and enumerating the oracle table...")
    estimator = LatencyEstimator(NUCLEO_F746ZG, config=MacroConfig.full())
    table = build_oracle_table(estimator)
    frontier = table.pareto_frontier()

    # Thin the frontier for printing: every ~15 accuracy knees.
    shown = frontier[:: max(1, len(frontier) // 15)]
    print()
    print(format_table(
        [[f"{lat:.0f}", f"{acc:.2f}"] for lat, acc in shown],
        headers=["latency ms", "best achievable ACC"],
        title=f"Oracle frontier ({len(table)} canonical archs, "
              f"{len(frontier)} knees)",
    ))

    print("running the zero-shot Pareto search (no training)...")
    objective = HybridObjective(
        proxy_config=ProxyConfig(init_channels=4, cells_per_stage=1,
                                 input_size=8, ntk_batch_size=16,
                                 lr_num_samples=64, lr_input_size=4,
                                 lr_channels=3, seed=0),
        weights=ObjectiveWeights(latency=0.5),
        latency_estimator=estimator,
    )
    result = ParetoZeroShotSearch(objective, num_samples=32, seed=1).search()
    surrogate = SurrogateModel()

    rows = []
    for point in result.front:
        acc = surrogate.mean_accuracy(point.genotype, "cifar10")
        _, oracle_acc = table.best_under_latency(point.latency_ms)
        marker = "knee -> " if point is result.knee_point() else ""
        rows.append([
            marker + point.genotype.to_arch_str()[:36],
            f"{point.latency_ms:.0f}",
            f"{acc:.2f}",
            f"{oracle_acc:.2f}",
            f"{oracle_acc - acc:+.2f}",
        ])
    print()
    print(format_table(
        rows,
        headers=["zero-shot front", "latency ms", "ACC", "oracle ACC",
                 "regret"],
        title="Zero-shot Pareto front vs the oracle at the same latency",
    ))
    print()
    print("Regret is what the proxies cost you; the oracle needed 9,445")
    print("trained networks to answer, the front above needed none.")


if __name__ == "__main__":
    main()
