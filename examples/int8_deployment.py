#!/usr/bin/env python
"""From discovered cell to shippable firmware artefact: the int8 path.

Walks the full deployment assessment for one architecture on the paper's
STM32 NUCLEO-F746ZG:

1. latency at float32 and int8 (both LUT estimators, separately profiled),
2. the static tensor arena a TFLite-Micro-style runtime would plan
   (liveness lower bound vs naive vs greedy placement),
3. int8 flash footprint and weight-quantization damage (SQNR),
4. full static-int8 numerics: calibrate activation scales, run the
   fake-quantized network, measure prediction agreement vs float,
5. the final deployable / does-not-fit verdict.

Runtime: a couple of minutes (profiles two LUTs, runs real inference).
"""

from __future__ import annotations

import numpy as np

from repro.data import get_dataset
from repro.hardware import NUCLEO_F746ZG, deployment_report, simulate_int8_inference
from repro.hardware.memplan import (
    liveness_lower_bound,
    plan_memory,
    tensor_lifetimes,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

ARCH = (
    "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
    "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
)


def main() -> None:
    genotype = Genotype.from_arch_str(ARCH)
    config = MacroConfig.full()

    print("profiling nucleo-f746zg at float32 and int8 (simulated board)...")
    report = deployment_report(genotype, NUCLEO_F746ZG, config=config)

    print()
    print(format_table(
        [
            ["latency (float32)", f"{report.latency_float32_ms:.1f} ms"],
            ["latency (int8)", f"{report.latency_int8_ms:.1f} ms"],
            ["int8 speedup", f"{report.int8_speedup:.2f}x"],
            ["planned arena (int8)", f"{report.arena_int8_bytes / 1024:.0f} KB"],
            ["board SRAM", f"{report.sram_bytes // 1024} KB"],
            ["flash (int8 weights + code)", f"{report.flash_int8_bytes / 1024:.0f} KB"],
            ["board flash", f"{report.flash_bytes // 1024} KB"],
            ["weight SQNR", f"{report.weight_sqnr_db:.1f} dB"],
            ["verdict", "DEPLOYABLE" if report.deployable else "DOES NOT FIT"],
        ],
        title=f"int8 deployment of {genotype.to_arch_str()[:40]}...",
    ))

    # How the arena number comes about.
    lifetimes = tensor_lifetimes(genotype, config, element_bytes=1)
    bound = liveness_lower_bound(lifetimes)
    rows = []
    for strategy in ("no_reuse", "first_fit", "greedy_by_size"):
        plan = plan_memory(lifetimes, strategy)
        rows.append([strategy, f"{plan.arena_bytes / 1024:.1f} KB",
                     f"{plan.arena_bytes / bound:.2f}x"])
    print()
    print(format_table(
        rows,
        headers=["planner", "arena", "vs liveness bound"],
        title=f"arena planning over {len(lifetimes)} tensor buffers "
              f"(bound {bound / 1024:.1f} KB)",
    ))

    # Static-int8 numerics on a reduced build of the same cell (full-size
    # float inference in NumPy is slow; the quantization error statistics
    # are width-independent).
    from repro.searchspace.network import build_network

    reduced = MacroConfig(init_channels=8, cells_per_stage=1, num_classes=10,
                          input_channels=3, image_size=16)
    images, _ = get_dataset("imagenet16-120", seed=5).batch(48, rng=6)
    print()
    print("calibrating activation scales and running int8 inference...")
    report_q, _ = simulate_int8_inference(
        lambda: build_network(genotype, reduced, rng=7),
        images[:32], images[32:],
    )
    print(f"  {report_q.summary()}")
    print(f"  mean |logit error| {report_q.mean_abs_logit_error:.4f}")

    plan = plan_memory(lifetimes, "greedy_by_size")
    biggest = sorted(lifetimes, key=lambda b: -b.size_bytes)[:8]
    print()
    print(format_table(
        [[b.name, f"{b.size_bytes / 1024:.1f} KB",
          f"{plan.offsets[b.name]}", f"[{b.start}, {b.end}]"]
         for b in biggest],
        headers=["buffer", "size", "offset", "live steps"],
        title="largest tensors in the greedy layout",
    ))


if __name__ == "__main__":
    main()
