#!/usr/bin/env python
"""Distributed fleet search on localhost: broker + two elastic workers.

Demonstrates the socket-broker evaluation fleet end-to-end:

1. a **harness-driven fleet run** — ``RunHarness`` with
   ``fleet_workers=2`` binds a :class:`repro.runtime.fleet.FleetBroker`
   on an ephemeral localhost port, forks two worker processes against
   it, and runs the steady-state search over the fleet transport.  This
   is what ``micronas runtime --async --fleet-workers 2 --store DIR``
   runs.  Workers flush every computed indicator row into the shared
   store, so the run is resumable and late joiners warm-start;
2. a **warm re-run** of the same config — the workers serve nearly all
   rows straight from the store (index reads) instead of recomputing;
3. a **manual broker + remote-shaped worker** — the same wiring split
   into its two halves, the way you run it across machines: the driver
   builds a :class:`FleetPool` bound to an address, and each worker host
   runs ``micronas fleet worker --connect HOST:PORT --store DIR``
   (here: :func:`repro.runtime.fleet.run_worker` in-process).  Workers
   can join or leave at any point mid-search; chunks a dead worker held
   are re-leased and nothing is lost.

The broker pickles chunk payloads over the wire: bind only on
localhost or a trusted network.

Runtime: ~10 seconds (reduced proxy scale, pure NumPy).
"""

from __future__ import annotations

import tempfile
import threading

from repro.runtime import RunHarness, RuntimeConfig
from repro.runtime.fleet import FleetPool, run_worker
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.eval.benchconfig import reduced_proxy_config
from repro.searchspace.canonical import canonicalize
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils import format_table


def harness_fleet_run(store_dir: str) -> None:
    config = RuntimeConfig(
        algorithm="steady-state",
        samples=12,
        cycles=24,
        seed=0,
        fast=True,
        async_mode=True,        # the fleet rides the async executor
        fleet_workers=2,        # fork 2 local workers on an ephemeral port
        store_dir=store_dir,    # shared store: flush + warm starts
        chunk_size=2,
    )
    for label in ("cold fleet run", "warm fleet re-run"):
        report = RunHarness(config).run()
        print(format_table([
            ["run", label],
            ["architecture", report.arch_str],
            ["pool mode", report.pool["mode"]],
            ["chunk futures", report.pool["chunks"]],
            ["store read mode", report.store["read_mode"]],
            ["rows loaded from store", report.store["cache_loaded"]],
            ["rows flushed to store", report.store["cache_saved"]],
            ["wall seconds", f"{report.wall_seconds:.2f}"],
        ]))
        print()


def manual_broker_and_worker(store_dir: str) -> None:
    """The two halves separately — the cross-machine shape."""
    proxy_config = reduced_proxy_config(seed=0)
    macro_config = MacroConfig.full()
    population = [canonicalize(g)
                  for g in NasBench201Space().sample(8, rng=3)]
    items = tuple((g.ops, (True, True, True)) for g in population)

    with FleetPool(n_workers=1, lease_seconds=60.0) as pool:
        print(f"broker listening on {pool.address}")
        # On another machine this would be:
        #   micronas fleet worker --connect {pool.address} --store DIR
        worker = threading.Thread(
            target=run_worker,
            args=(pool.address,),
            kwargs={"store_dir": store_dir, "poll_seconds": 0.05,
                    "max_chunks": 4},
            daemon=True,
        )
        worker.start()
        for start in range(0, len(items), 2):
            pool.submit(_evaluate_genotype_chunk,
                        (items[start:start + 2], proxy_config,
                         macro_config))
        results = pool.gather_all()
        worker.join(timeout=10)
        rows = sum(len(r.value[0]) for r in results if r.error is None)
        print(format_table([
            ["chunks completed", len(results)],
            ["indicator rows", rows],
            ["broker counters", str(pool.broker.counters())],
        ]))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        harness_fleet_run(f"{tmp}/store")
    with tempfile.TemporaryDirectory() as tmp:
        manual_broker_and_worker(f"{tmp}/store")


if __name__ == "__main__":
    main()
