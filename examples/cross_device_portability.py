#!/usr/bin/env python
"""Latency-model portability: one cell, five boards (paper §IV).

The paper argues its MCU latency estimation model "has potential
applicability to other edge devices".  This example profiles every
registered board, estimates the latency of two reference cells on each,
and shows both the absolute spread (480 MHz M7 down to a soft-float M0+)
and how well the F746ZG's latency *ranking* transfers — the reason
hardware-aware search should re-profile rather than assume.

Runtime: well under a minute.
"""

from __future__ import annotations

import numpy as np

from repro.eval import kendall_tau
from repro.hardware import LatencyEstimator, known_devices
from repro.searchspace import NasBench201Space
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

HEAVY = (
    "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|"
    "+|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|"
)
LIGHT = (
    "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
    "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
)
NUM_RANKING_ARCHS = 15


def main() -> None:
    config = MacroConfig.full()
    heavy = Genotype.from_arch_str(HEAVY)
    light = Genotype.from_arch_str(LIGHT)
    sample = NasBench201Space().sample(NUM_RANKING_ARCHS, rng=42)

    estimators = {}
    for name, device in sorted(known_devices().items()):
        print(f"profiling {name} (simulated board)...")
        estimators[name] = LatencyEstimator(device=device, config=config)

    rows = []
    rankings = {}
    for name, estimator in estimators.items():
        rankings[name] = np.array([estimator.estimate_ms(g) for g in sample])
        rows.append([
            name,
            f"{estimator.estimate_ms(heavy):.0f} ms",
            f"{estimator.estimate_ms(light):.0f} ms",
            f"{estimator.estimate_ms(heavy) / estimator.estimate_ms(light):.2f}x",
        ])
    print()
    print(format_table(
        rows,
        headers=["board", "heavy cell", "light cell", "ratio"],
        title="Estimated inference latency per board (float32, C=16 N=5)",
    ))

    reference = rankings["nucleo-f746zg"]
    tau_rows = [
        [name, f"{kendall_tau(reference, lats):+.3f}"]
        for name, lats in sorted(rankings.items())
    ]
    print()
    print(format_table(
        tau_rows,
        headers=["board", "Kendall-tau vs F746ZG"],
        title=f"Ranking transfer over {NUM_RANKING_ARCHS} sampled cells",
    ))
    print()
    print("Sibling M7/M4 cores rank architectures almost identically; the")
    print("soft-float M0+ disagrees more — per-device profiling matters.")


if __name__ == "__main__":
    main()
