#!/usr/bin/env python
"""Analyse the zero-cost indicators (the paper's Fig. 2 methodology).

Samples architectures from NAS-Bench-201, evaluates the NTK condition
number and the linear-region count for each, and reports how well each
indicator — and the rank-combined hybrid — predicts surrogate accuracy
across the three datasets.  Also demonstrates the batch-size effect the
paper studies (Fig. 2b) on a small sweep.

Runtime: a couple of minutes.
"""

from __future__ import annotations

import numpy as np

from repro.benchdata import SurrogateModel
from repro.eval import kendall_tau
from repro.proxies import ProxyConfig
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number
from repro.proxies.ranking import combine_ranks
from repro.searchspace import NasBench201Space
from repro.utils import format_table

NUM_ARCHS = 24
DATASETS = ("cifar10", "cifar100", "imagenet16-120")


def main() -> None:
    config = ProxyConfig(init_channels=6, cells_per_stage=1, input_size=8,
                         ntk_batch_size=16, lr_num_samples=64, lr_input_size=4,
                         lr_channels=3, seed=0)
    surrogate = SurrogateModel()
    archs = NasBench201Space().sample(NUM_ARCHS, rng=42)

    print(f"evaluating proxies on {NUM_ARCHS} architectures...")
    kappas = np.array([ntk_condition_number(g, config) for g in archs])
    kappas[~np.isfinite(kappas)] = 1e30
    regions = np.array([count_line_regions(g, config) for g in archs])
    hybrid = combine_ranks(
        {"ntk": kappas, "lr": regions},
        {"ntk": False, "lr": True},
    )

    rows = []
    for dataset in DATASETS:
        accs = [surrogate.mean_accuracy(g, dataset) for g in archs]
        rows.append([
            dataset,
            f"{kendall_tau(-kappas, accs):+.3f}",
            f"{kendall_tau(regions, accs):+.3f}",
            f"{kendall_tau(-hybrid, accs):+.3f}",
        ])
    print()
    print(format_table(
        rows,
        headers=["dataset", "tau(NTK)", "tau(LR)", "tau(hybrid)"],
        title="Indicator-vs-accuracy rank correlation (paper Fig. 2a context)",
    ))

    print()
    print("batch-size effect on the NTK indicator (paper Fig. 2b):")
    accs = [surrogate.mean_accuracy(g, "cifar10") for g in archs]
    batch_rows = []
    for batch in (4, 8, 16, 32):
        cfg = config.with_batch_size(batch)
        ks = np.array([ntk_condition_number(g, cfg) for g in archs])
        ks[~np.isfinite(ks)] = 1e30
        batch_rows.append([batch, f"{kendall_tau(-ks, accs):+.3f}"])
    print(format_table(batch_rows, headers=["batch size", "tau(NTK)"]))
    print()
    print("expected shape: tau rises with batch size and saturates around "
          "16-32 — the paper's recommended operating point.")


if __name__ == "__main__":
    main()
