#!/usr/bin/env python
"""Asynchronous steady-state search with a warm-started indicator store.

Demonstrates the async evaluation runtime end-to-end:

1. a **cold** steady-state run — ``n_workers`` candidates stay in flight
   as per-chunk futures; children are mutated from the current Pareto set
   the moment any future resolves — that persists its indicator cache
   into a store directory;
2. a **warm** re-run against the same store — candidates already in the
   persisted cache commit instantly without occupying a worker (the
   steady-state fast path), so far fewer futures ship and wall time
   drops.  (With a parallel executor the trajectory may still explore a
   few new candidates: it is a function of completion order — run with
   ``n_workers=1`` for an exact replay.);
3. the same config through :class:`repro.runtime.RunHarness`
   (``async_mode=True``), which is what ``micronas runtime --async
   --algorithm steady-state`` runs, with deterministic executor shutdown.

Runtime: a few seconds (reduced proxy scale, pure NumPy).
"""

from __future__ import annotations

import tempfile

from repro.engine import Engine
from repro.eval.benchconfig import reduced_proxy_config
from repro.runtime import AsyncPopulationExecutor, RunHarness, RuntimeConfig
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.search import HybridObjective, SteadyStateEvolutionarySearch
from repro.search.evolutionary import EvolutionConfig
from repro.searchspace.network import MacroConfig
from repro.utils import format_table


def run_once(store_dir: str, label: str) -> None:
    proxy_config = reduced_proxy_config(seed=0)
    macro_config = MacroConfig.full()
    store = RuntimeStore(store_dir)
    fingerprint = cache_fingerprint(proxy_config, macro_config)

    engine = Engine(proxy_config=proxy_config, macro_config=macro_config)
    loaded = store.load_cache_into(engine.cache, fingerprint)

    with AsyncPopulationExecutor(n_workers=4, chunk_size=1) as executor:
        result = SteadyStateEvolutionarySearch(
            HybridObjective(engine=engine),
            EvolutionConfig(population_size=12, cycles=36),
            seed=0,
            executor=executor,
        ).search()
        saved = store.save_cache(engine.cache, fingerprint)
        print(format_table(
            [
                ["architecture", result.arch_str],
                ["warm-start entries", loaded],
                ["chunk futures shipped", executor.stats.chunks],
                ["worker idle fraction",
                 "n/a" if executor.stats.idle_fraction is None
                 else f"{executor.stats.idle_fraction:.1%}"],
                ["cache entries persisted", saved],
                ["wall time", f"{result.wall_seconds:.2f} s"],
            ],
            title=f"steady-state async search ({label})",
        ))


def run_harness(store_dir: str) -> None:
    report = RunHarness(RuntimeConfig(
        algorithm="steady-state",
        async_mode=True,
        n_workers=4,
        chunk_size=1,
        population_size=12,
        cycles=36,
        store_dir=store_dir,
        seed=0,
    )).run()
    print(format_table(
        [
            ["architecture", report.arch_str],
            ["executor mode", report.pool["mode"]],
            ["warm-start entries", report.cache["warm_start_entries"]],
            ["cache hits / misses", f"{report.cache['hits']} / "
                                    f"{report.cache['misses']}"],
            ["worker idle fraction",
             "n/a" if report.pool["idle_fraction"] is None
             else f"{report.pool['idle_fraction']:.1%}"],
            ["wall time", f"{report.wall_seconds:.2f} s"],
        ],
        title="the same run through RunHarness (async_mode=True)",
    ))


def main() -> None:
    with tempfile.TemporaryDirectory() as store_dir:
        run_once(store_dir, "cold: futures do the work")
        run_once(store_dir, "warm: store-backed, fewer futures")
        run_harness(store_dir)


if __name__ == "__main__":
    main()
