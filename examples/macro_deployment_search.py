#!/usr/bin/env python
"""Secondary-stage search: fit a discovered cell onto different boards.

The MicroNAS workflow ends with a deployable model, not just a cell.  This
example takes the hardware-friendly cell from the constrained search and
runs the secondary (macro) stage on two boards: it finds the largest
skeleton — cells per stage ``N`` and initial width ``C`` — whose int8
deployment fits each board's SRAM and flash within a latency budget, and
prints the latency/capacity Pareto frontier the budget cuts through.

Runtime: under a minute (LUT-based latency, analytic memory).
"""

from __future__ import annotations

from repro.hardware import NUCLEO_F411RE, NUCLEO_F746ZG
from repro.search import MacroSearchSpace, MacroStageSearch, device_constraints
from repro.searchspace.genotype import Genotype
from repro.utils import format_table

#: The kind of cell the latency-guided MicroNAS search discovers.
CELL = (
    "|nor_conv_1x1~0|+|skip_connect~0|nor_conv_1x1~1|"
    "+|skip_connect~0|skip_connect~1|nor_conv_3x3~2|"
)

LATENCY_BUDGET_MS = 150.0


def main() -> None:
    genotype = Genotype.from_arch_str(CELL)
    space = MacroSearchSpace(channel_choices=(4, 8, 12, 16, 24, 32),
                             cell_choices=(1, 2, 3, 4, 5))

    rows = []
    for device in (NUCLEO_F746ZG, NUCLEO_F411RE):
        print(f"profiling {device.name} (simulated board)...")
        search = MacroStageSearch(genotype, device=device, space=space,
                                  element_bytes=1)  # int8 deployment
        constraints = device_constraints(
            device, max_latency_ms=LATENCY_BUDGET_MS, memory_margin=0.9
        )
        plan = search.select(constraints)
        cand = plan.candidate
        rows.append([
            device.name,
            f"{device.clock_hz / 1e6:.0f} MHz {device.core}",
            f"C={cand.config.init_channels} N={cand.config.cells_per_stage}",
            f"{cand.latency_ms:.1f} ms",
            f"{cand.params / 1e3:.0f} k",
            f"{cand.peak_sram_bytes / 1024:.0f} / {device.sram_bytes // 1024} KB",
            f"{cand.flash_bytes / 1024:.0f} / {device.flash_bytes // 1024} KB",
        ])

    print()
    print(format_table(
        rows,
        headers=["board", "core", "skeleton", "latency", "params",
                 "SRAM use", "flash use"],
        title=f"Largest int8 skeleton within {LATENCY_BUDGET_MS:.0f} ms "
              f"and 90 % of each board's memories",
    ))

    # The frontier the budget cuts through (on the paper's board).
    frontier = MacroStageSearch(
        genotype, device=NUCLEO_F746ZG, space=space, element_bytes=1
    ).pareto_frontier()
    print()
    print(format_table(
        [[f"C={c.config.init_channels} N={c.config.cells_per_stage}",
          f"{c.latency_ms:.1f}", f"{c.params / 1e3:.0f} k",
          f"{c.flops / 1e6:.1f} M"] for c in frontier],
        headers=["skeleton", "latency ms", "params", "FLOPs"],
        title="Latency/capacity Pareto frontier on nucleo-f746zg",
    ))


if __name__ == "__main__":
    main()
