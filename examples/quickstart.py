#!/usr/bin/env python
"""Quickstart: run a MicroNAS search end-to-end (Fig. 1's workflow).

Builds the hybrid objective (NTK condition number + linear regions +
latency indicator for an STM32 NUCLEO-F746ZG), runs the hardware-aware
pruning search over the NAS-Bench-201 cell space, and reports what it
found: architecture string, hardware profile and surrogate accuracy.

Runtime: a couple of minutes on a laptop (pure NumPy).
"""

from __future__ import annotations

from repro.benchdata import SurrogateModel
from repro.hardware import LatencyEstimator, MemoryEstimator, NUCLEO_F746ZG
from repro.proxies import ProxyConfig, count_flops, count_params
from repro.search import HybridObjective, MicroNASSearch, ObjectiveWeights
from repro.searchspace.network import MacroConfig
from repro.utils import format_table


def main() -> None:
    # 1. Reduced proxy networks for the zero-cost indicators (TE-NAS style).
    proxy_config = ProxyConfig(
        init_channels=4, cells_per_stage=1, input_size=8,
        ntk_batch_size=16,  # paper recommends 16-32 (Fig. 2b)
        lr_num_samples=64, lr_input_size=4, lr_channels=3,
        seed=0,
    )

    # 2. Profile the target MCU once; the search reuses the latency LUT.
    print("profiling STM32 NUCLEO-F746ZG (simulated board)...")
    latency_estimator = LatencyEstimator(NUCLEO_F746ZG, config=MacroConfig.full())

    # 3. The hybrid objective: trainless proxies + weighted latency indicator.
    objective = HybridObjective(
        proxy_config=proxy_config,
        weights=ObjectiveWeights(ntk=1.0, linear_regions=1.0, latency=0.5),
        latency_estimator=latency_estimator,
    )

    # 4. Hardware-aware pruning-based search (30 -> 1 op per edge).
    print("searching (pruning the supernet)...")
    result = MicroNASSearch(objective, seed=0).search()

    # 5. Report the discovered architecture.
    genotype = result.genotype
    surrogate = SurrogateModel()
    memory = MemoryEstimator(MacroConfig.full(), element_bytes=1)  # int8
    report = memory.report(genotype)
    print()
    print("discovered architecture:")
    print(f"  {genotype.to_arch_str()}")
    print()
    print(format_table(
        [
            ["surrogate CIFAR-10 accuracy", f"{surrogate.mean_accuracy(genotype):.2f} %"],
            ["FLOPs", f"{count_flops(genotype) / 1e6:.2f} M"],
            ["params", f"{count_params(genotype) / 1e6:.3f} M"],
            ["estimated MCU latency", f"{latency_estimator.estimate_ms(genotype):.1f} ms"],
            ["peak SRAM (int8)", f"{report.peak_sram_bytes / 1024:.0f} KB"],
            ["flash (int8)", f"{report.flash_bytes / 1024:.0f} KB"],
            ["proxy evaluations", str(result.ledger.counts.get('pruning_candidates', 0))],
            ["search wall time", f"{result.wall_seconds:.1f} s"],
        ],
        title="MicroNAS result on STM32 NUCLEO-F746ZG",
    ))
    print()
    print("pruning history (ops removed per round):")
    for entry in result.history:
        if "round" in entry:
            removed = ", ".join(f"e{e}:{op}" for e, op in sorted(entry["removed"].items()))
            print(f"  round {entry['round']}: {removed}")


if __name__ == "__main__":
    main()
