#!/usr/bin/env python
"""Validate the MCU latency estimator, and port it to a second device.

Reproduces the paper's latency-model validation ("Our latency model was
validated as accurate, reliable, and simple") and exercises the §IV claim
of "potential applicability to other edge devices" by re-profiling for a
Cortex-M4 board and comparing the two devices' latency landscapes.

Runtime: seconds.
"""

from __future__ import annotations

import numpy as np

from repro.eval import kendall_tau
from repro.hardware import LatencyEstimator, NUCLEO_F411RE, NUCLEO_F746ZG
from repro.searchspace import NasBench201Space
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

SAMPLE = 20


def validate(device) -> dict:
    estimator = LatencyEstimator(device, config=MacroConfig.full())
    archs = NasBench201Space().sample(SAMPLE, rng=7)
    estimates = np.array([estimator.estimate_ms(g) for g in archs])
    truths = np.array([estimator.ground_truth_ms(g) for g in archs])
    errors = np.abs(estimates - truths) / truths
    return {
        "device": device.name,
        "lut_entries": len(estimator.lut),
        "mean_err": errors.mean() * 100,
        "max_err": errors.max() * 100,
        "tau": kendall_tau(estimates, truths),
        "truths": truths,
    }


def main() -> None:
    print("profiling both boards (simulated) and validating the LUT estimator...")
    m7 = validate(NUCLEO_F746ZG)
    m4 = validate(NUCLEO_F411RE)
    print()
    print(format_table(
        [
            [r["device"], r["lut_entries"], f"{r['mean_err']:.2f}%",
             f"{r['max_err']:.2f}%", f"{r['tau']:.3f}"]
            for r in (m7, m4)
        ],
        headers=["device", "LUT entries", "mean |err|", "max |err|",
                 "rank fidelity (tau)"],
        title="LUT estimator vs full on-board runs",
    ))
    slowdown = m4["truths"] / m7["truths"]
    print()
    print(
        f"porting to {NUCLEO_F411RE.name}: same architectures run "
        f"{slowdown.mean():.1f}x slower on the Cortex-M4 "
        f"(range {slowdown.min():.1f}x-{slowdown.max():.1f}x) — "
        "the per-op profiling pipeline transfers unchanged."
    )


if __name__ == "__main__":
    main()
