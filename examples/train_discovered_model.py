#!/usr/bin/env python
"""Full pipeline: search → train → quantize → deploy check.

The end of the paper's Fig. 1 workflow: after the zero-shot search picks a
cell, the deployment model is trained (here at reduced scale on synthetic
data — the NumPy substrate's "GPU"), quantized to int8 for flash, and
checked against the board's budgets.

Runtime: a few minutes (training dominates).
"""

from __future__ import annotations

from repro.data.synthetic import DatasetSpec, SyntheticImageDataset
from repro.hardware import LatencyEstimator, MemoryEstimator, NUCLEO_F746ZG
from repro.hardware.quantize import (
    QuantizedModule,
    quantization_report,
    quantized_logit_error,
)
from repro.proxies import ProxyConfig
from repro.search import HybridObjective, MicroNASSearch, ObjectiveWeights
from repro.searchspace.network import MacroConfig, build_network
from repro.train import (
    Augmenter,
    BestCheckpoint,
    EarlyStopping,
    Trainer,
    TrainerConfig,
)
from repro.utils import format_table

#: Reduced deployment config so CPU training finishes in minutes.
TRAIN_MACRO = MacroConfig(init_channels=8, cells_per_stage=1, num_classes=4,
                          image_size=16)


def main() -> None:
    # --- 1. zero-shot search -------------------------------------------
    print("searching (latency-guided MicroNAS)...")
    objective = HybridObjective(
        proxy_config=ProxyConfig(init_channels=4, cells_per_stage=1,
                                 input_size=8, ntk_batch_size=16,
                                 lr_num_samples=64, lr_input_size=4,
                                 lr_channels=3, seed=0),
        weights=ObjectiveWeights(latency=0.5),
        latency_estimator=LatencyEstimator(NUCLEO_F746ZG, config=MacroConfig.full()),
    )
    found = MicroNASSearch(objective, seed=0).search()
    print(f"  discovered: {found.arch_str}")

    # --- 2. final training ---------------------------------------------
    print("training the discovered cell on a synthetic 4-class task...")
    dataset = SyntheticImageDataset(DatasetSpec("toy4", 4, 16),
                                    noise_sigma=0.35, seed=1)
    model = build_network(found.genotype, TRAIN_MACRO, rng=0)
    trainer = Trainer(
        model, dataset,
        TrainerConfig(epochs=6, batch_size=24,
                      batches_per_epoch=10, lr=0.08, seed=0),
        augmenter=Augmenter(crop_padding=2, flip_probability=0.5, seed=0),
    )
    checkpoint = BestCheckpoint(model)
    history = trainer.fit(
        evaluate_every=2,
        early_stopping=EarlyStopping(patience=2),
        checkpoint=checkpoint,  # best weights are restored at the end
    )
    for stats in history:
        eval_part = (f"  eval acc {stats.eval_accuracy:.3f}"
                     if stats.eval_accuracy is not None else "")
        print(f"  epoch {stats.epoch}: lr {stats.lr:.4f}  "
              f"loss {stats.train_loss:.3f}  "
              f"train acc {stats.train_accuracy:.3f}{eval_part}")
    float_accuracy = trainer.evaluate(num_batches=6)

    # --- 3. int8 quantization ------------------------------------------
    print("quantizing weights to int8...")
    report = quantization_report(model)
    images, _ = dataset.batch(32, rng=99)
    deployed = build_network(found.genotype, TRAIN_MACRO, rng=0)
    deployed.load_state_dict(model.state_dict())
    quantized = QuantizedModule(deployed)
    logit_err = quantized_logit_error(model, quantized, images)
    quant_trainer = Trainer(quantized, dataset,
                            TrainerConfig(epochs=1, batch_size=24,
                                          batches_per_epoch=1, seed=0))
    int8_accuracy = quant_trainer.evaluate(num_batches=6)

    # --- 4. deployment check -------------------------------------------
    memory = MemoryEstimator(TRAIN_MACRO, element_bytes=1)
    mem_report = memory.report(found.genotype)
    print()
    print(format_table(
        [
            ["float32 eval accuracy", f"{float_accuracy:.3f}"],
            ["int8-weight eval accuracy", f"{int8_accuracy:.3f}"],
            ["mean |logit error| after quantization", f"{logit_err:.4f}"],
            ["weight SQNR", f"{report.mean_sqnr_db:.1f} dB"],
            ["flash int8 vs float32",
             f"{report.flash_bytes_int8 / 1024:.0f} KB vs "
             f"{report.flash_bytes_float32 / 1024:.0f} KB "
             f"({report.compression:.1f}x smaller)"],
            ["peak SRAM (int8 activations)",
             f"{mem_report.peak_sram_bytes / 1024:.0f} KB "
             f"(budget {NUCLEO_F746ZG.sram_bytes // 1024} KB)"],
        ],
        title="Search -> train -> quantize -> deploy",
    ))


if __name__ == "__main__":
    main()
