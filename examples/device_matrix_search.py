#!/usr/bin/env python
"""Device-matrix search: one trainless pass, a grid of Pareto fronts.

Hardware-aware NAS usually re-runs the whole search per deployment
scenario.  The device-matrix mode inverts that: the trainless indicators
(NTK conditioning, linear regions, FLOPs) are evaluated exactly once per
candidate, and each (device, objective-set) cell only re-prices the cheap
LUT-backed cost axes — latency, energy, int8 latency, peak SRAM.  This
example runs a 2-board x 2-objective-set matrix and prints each cell's
knee-point pick, showing how the balanced choice shifts when the board or
the cost axes change while the quality column stays bit-identical.

Runtime: a few seconds (reduced proxy scale).
"""

from __future__ import annotations

from repro.runtime import RuntimeConfig, run_matrix
from repro.utils import format_table

DEVICES = ("nucleo-f746zg", "nucleo-l432kc")
OBJECTIVE_SETS = ("latency", "energy,peak-mem")
SAMPLES = 32


def main() -> None:
    config = RuntimeConfig(
        samples=SAMPLES,
        seed=7,
        fast=True,
        save_store=False,
        devices=DEVICES,
        objectives=OBJECTIVE_SETS,
    )
    report = run_matrix(config)

    print(f"population: {report.samples} sampled, "
          f"{report.unique_canonical} unique canonical cells")
    print(f"trainless rows computed once: "
          f"{report.trainless_evals['rows_computed']} "
          f"(= 3 indicators x {report.unique_canonical} archs, "
          f"shared by all {len(report.cells)} cells)")
    print(f"wall time: {report.wall_seconds:.2f} s\n")

    rows = []
    for cell in report.cells:
        knee = cell.knee or {}
        costs = ", ".join(
            f"{axis}={knee.get(axis, float('nan')):.3g}"
            for axis in cell.objectives)
        rows.append([
            cell.device,
            "+".join(cell.objectives),
            str(len(cell.front)),
            str(cell.num_fronts),
            str(knee.get("arch_index", "-")),
            costs,
        ])
    print(format_table(
        rows,
        headers=["device", "objectives", "front", "fronts", "knee arch",
                 "knee costs"],
    ))

    print(
        "\nReading the table: each cell prices the front for its own board\n"
        "and objective axes, but every cell ranked the *same*\n"
        "quality column -- re-pricing a scenario costs LUT lookups, not\n"
        "proxy re-evaluation.  Add --device-matrix to `micronas runtime`\n"
        "for the CLI equivalent."
    )


if __name__ == "__main__":
    main()
