#!/usr/bin/env python
"""Deploy-under-budget scenario: search with hard MCU constraints.

A product team must hit a latency target on an STM32 NUCLEO-F746ZG and fit
int8 weights in the board's 1 MB flash.  MicroNAS's outer loop adapts the
hardware indicator weights until the discovered architecture is feasible
("MicroNAS adapts FLOPs and latency indicator weights, consistently
discovering highly efficient models across various constraints").

Runtime: a few minutes (it may re-run the pruning search several times).
"""

from __future__ import annotations

from repro.benchdata import SurrogateModel
from repro.hardware import LatencyEstimator, MemoryEstimator, NUCLEO_F746ZG
from repro.proxies import ProxyConfig, count_params
from repro.search import (
    HardwareConstraints,
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
)
from repro.search.constraints import ConstraintChecker
from repro.searchspace.network import MacroConfig
from repro.utils import format_table

#: Product requirements: 150 ms per inference, int8 weights in 1 MB flash.
CONSTRAINTS = HardwareConstraints(
    max_latency_ms=150.0,
    max_flash_bytes=NUCLEO_F746ZG.flash_bytes,
)


def main() -> None:
    proxy_config = ProxyConfig(
        init_channels=4, cells_per_stage=1, input_size=8, ntk_batch_size=16,
        lr_num_samples=64, lr_input_size=4, lr_channels=3, seed=0,
    )
    print("profiling the board and building estimators...")
    latency_estimator = LatencyEstimator(NUCLEO_F746ZG, config=MacroConfig.full())
    memory_estimator = MemoryEstimator(MacroConfig.full(), element_bytes=1)
    checker = ConstraintChecker(
        CONSTRAINTS,
        macro_config=MacroConfig.full(),
        latency_estimator=latency_estimator,
        memory_estimator=memory_estimator,
    )

    objective = HybridObjective(
        proxy_config=proxy_config,
        weights=ObjectiveWeights(),  # hardware weights start at zero
        latency_estimator=latency_estimator,
    )
    searcher = MicroNASSearch(objective, seed=0)
    print("searching with constraint-driven weight adaptation...")
    result = searcher.search_with_constraints(
        CONSTRAINTS, checker=checker, max_outer_rounds=4
    )

    genotype = result.genotype
    surrogate = SurrogateModel()
    report = memory_estimator.report(genotype)
    latency = latency_estimator.estimate_ms(genotype)
    violations = checker.violations(genotype)

    print()
    print("weight-adaptation trajectory:")
    for entry in result.history:
        if "outer_round" in entry:
            print(
                f"  outer round {entry['outer_round']}: "
                f"w_L={entry['weights']['latency']:.2f} "
                f"w_F={entry['weights']['flops']:.2f} "
                f"violation={entry['violation']:.3f}"
            )
    print()
    print(format_table(
        [
            ["architecture", genotype.to_arch_str()],
            ["latency", f"{latency:.1f} ms (budget {CONSTRAINTS.max_latency_ms:.0f} ms)"],
            ["flash (int8)", f"{report.flash_bytes / 1024:.0f} KB (budget 1024 KB)"],
            ["params", f"{count_params(genotype) / 1e6:.3f} M"],
            ["surrogate accuracy", f"{surrogate.mean_accuracy(genotype):.2f} %"],
            ["feasible", "yes" if not violations else f"NO: {violations}"],
        ],
        title="Constrained deployment result",
    ))


if __name__ == "__main__":
    main()
