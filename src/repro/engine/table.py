"""The population-level result container of the evaluation engine.

An :class:`IndicatorTable` is the dataset-style view search algorithms
consume: one row per requested genotype (duplicates included, in request
order), one column per indicator.  Cache accounting from the evaluation
that produced the table rides along so benchmarks can report reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np

from repro.errors import ProxyError
from repro.searchspace.genotype import Genotype


@dataclass
class IndicatorTable:
    """Columnar indicator values for a population of architectures."""

    genotypes: List[Genotype]
    columns: Dict[str, np.ndarray]
    cache_hits: int = 0
    cache_misses: int = 0
    unique_canonical: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.genotypes)
        for name, values in self.columns.items():
            self.columns[name] = np.asarray(values, dtype=float)
            if self.columns[name].shape != (n,):
                raise ProxyError(
                    f"column {name!r} has shape {self.columns[name].shape}, "
                    f"expected ({n},)"
                )

    def __len__(self) -> int:
        return len(self.genotypes)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ProxyError(
                f"indicator table has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from None

    def row(self, index: int) -> Dict[str, float]:
        return {name: float(values[index]) for name, values in self.columns.items()}

    def rows(self) -> List[Dict[str, float]]:
        """Row dicts in request order (the shape ``combined_ranks`` wants)."""
        return [self.row(i) for i in range(len(self))]

    def __iter__(self) -> Iterator[Dict[str, float]]:
        return iter(self.rows())

    def argbest(self, scores: np.ndarray) -> int:
        """Index of the best (lowest-score) row for external score arrays."""
        if len(scores) != len(self):
            raise ProxyError(
                f"score array length {len(scores)} != table length {len(self)}"
            )
        return int(np.asarray(scores).argmin())

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-friendly rows (arch string + indicator values)."""
        out = []
        for i, genotype in enumerate(self.genotypes):
            record: Dict[str, object] = {"arch_str": genotype.to_arch_str()}
            record.update(self.row(i))
            out.append(record)
        return out
