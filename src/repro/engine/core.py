"""The batched trainless-evaluation engine (layers 2 and 3).

:class:`Engine` is the single path through which search algorithms obtain
indicator values.  It owns

* the **canonicalization-aware cache** — indicators are properties of the
  canonical cell function, so every value is computed on (and keyed by)
  ``canonicalize(genotype)``; see :mod:`repro.engine` for the key contract,
* the **vectorized proxy kernels** — genotype evaluations dispatch to the
  batched NTK / line-counting paths via ``ProxyConfig.ntk_mode``/``lr_mode``,
* the **population API** — :meth:`evaluate_population` deduplicates a
  population by canonical form, evaluates only the unique survivors and
  returns an :class:`~repro.engine.table.IndicatorTable` in request order.

Latency estimators are built lazily per macro configuration and share the
engine's cache (the per-estimator memo that used to live in
``hardware/latency.py`` now writes the same keys).
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.cache import IndicatorCache
from repro.engine.table import IndicatorTable
from repro.proxies.base import ProxyConfig
from repro.proxies.flops import count_flops, count_params
from repro.proxies.linear_regions import count_line_regions, supernet_line_regions
from repro.proxies.ntk import ntk_condition_number, supernet_ntk_condition_number
from repro.searchspace.canonical import canonicalize
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils.timing import CostLedger, Timer

#: Indicator columns a full genotype evaluation produces.
INDICATOR_NAMES = ("ntk", "linear_regions", "flops", "latency")


def _supernet_key(edge_specs: Sequence[EdgeSpec]) -> Tuple:
    """Hashable identity of a supernet state (alive-op sets in edge order)."""
    return tuple(tuple(spec.alive_ops) for spec in edge_specs)


class Engine:
    """Batched, cached indicator evaluation for populations of genotypes."""

    def __init__(
        self,
        proxy_config: Optional[ProxyConfig] = None,
        macro_config: Optional[MacroConfig] = None,
        latency_estimator=None,
        device=None,
        profiler=None,
        cache: Optional[IndicatorCache] = None,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.proxy_config = proxy_config or ProxyConfig()
        self.macro_config = macro_config or MacroConfig.full()
        self.cache = cache if cache is not None else IndicatorCache()
        self.ledger = ledger if ledger is not None else CostLedger()
        self._device = device
        self._profiler = profiler
        self._latency_estimator = latency_estimator
        self._estimators: Dict[Tuple, object] = {}
        if latency_estimator is not None:
            self._estimators[astuple(latency_estimator.config)] = latency_estimator
        self._proxy_key = astuple(self.proxy_config)

    # ------------------------------------------------------------------
    # Latency estimator plumbing
    # ------------------------------------------------------------------
    @property
    def latency_estimator(self):
        """Lazily profiled estimator for the engine's deployment config."""
        if self._latency_estimator is None:
            self._latency_estimator = self._estimator_for(self.macro_config)
        return self._latency_estimator

    def device(self):
        """The MCU this engine prices latency for (resolved lazily)."""
        if self._device is not None:
            return self._device
        if self._latency_estimator is not None:
            return self._latency_estimator.device
        from repro.hardware.device import NUCLEO_F746ZG

        return NUCLEO_F746ZG  # what _estimator_for would default to

    def for_device(self, device, profiler=None) -> "Engine":
        """This engine if it already prices ``device``, else a sibling.

        The sibling shares the cache and ledger (latency keys embed the
        device name, so entries never alias) but builds its own estimators
        — callers like :class:`~repro.search.macro.MacroStageSearch` must
        never silently receive another board's latencies.
        """
        if self.device().name == device.name:
            return self
        return Engine(
            proxy_config=self.proxy_config,
            macro_config=self.macro_config,
            device=device,
            profiler=profiler,
            cache=self.cache,
            ledger=self.ledger,
        )

    def _estimator_for(self, config: MacroConfig):
        """One shared LUT estimator per macro configuration.

        Estimators built here write into the engine's own cache, folding
        the old per-estimator latency memo into the canonical one.
        """
        key = astuple(config)
        if key not in self._estimators:
            from repro.hardware.latency import LatencyEstimator

            kwargs = {"config": config, "cache": self.cache}
            device = self._device
            profiler = self._profiler
            if self._latency_estimator is not None:
                device = device or self._latency_estimator.device
                profiler = profiler or self._latency_estimator.profiler
            if device is not None:
                kwargs["device"] = device
            if profiler is not None:
                kwargs["profiler"] = profiler
            self._estimators[key] = LatencyEstimator(**kwargs)
        return self._estimators[key]

    # ------------------------------------------------------------------
    # Single-indicator accessors (all canonicalization-aware and cached)
    # ------------------------------------------------------------------
    def ntk(self, genotype: Genotype, k_index: int = 1) -> float:
        """Cached NTK condition number of the canonical form."""
        canon = canonicalize(genotype)
        key = ("ntk", canon.to_index(), k_index, self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = ntk_condition_number(canon, self.proxy_config,
                                             k_index=k_index)
            self.ledger.add("ntk_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "ntk")

    def linear_regions(self, genotype: Genotype) -> float:
        """Cached linear-region count of the canonical form."""
        canon = canonicalize(genotype)
        key = ("linear_regions", canon.to_index(), self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = count_line_regions(canon, self.proxy_config)
            self.ledger.add("lr_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "lr")

    def flops(self, genotype: Genotype,
              config: Optional[MacroConfig] = None) -> float:
        """Cached deployment FLOPs of the canonical form."""
        config = config or self.macro_config
        canon = canonicalize(genotype)
        key = ("flops", canon.to_index(), astuple(config))
        return self._lookup(key, lambda: float(count_flops(canon, config)),
                            "flops")

    def params(self, genotype: Genotype,
               config: Optional[MacroConfig] = None) -> int:
        """Cached learnable-parameter count of the canonical form."""
        config = config or self.macro_config
        canon = canonicalize(genotype)
        key = ("params", canon.to_index(), astuple(config))
        return self._lookup(key, lambda: count_params(canon, config), "params")

    def latency_ms(self, genotype: Genotype,
                   config: Optional[MacroConfig] = None) -> float:
        """Cached LUT latency of the canonical form (what a deployment
        runtime that elides dead edges would actually pay).

        Note the asymmetry with :meth:`LatencyEstimator.estimate_ms` and
        :class:`~repro.search.constraints.ConstraintChecker`, which price
        genotypes *as given* (dead edges billed, matching the on-board
        ground truth) — see the cache-key contract in :mod:`repro.engine`.
        """
        estimator = (self.latency_estimator if config is None
                     else self._estimator_for(config))
        canon = canonicalize(genotype)
        key = ("latency", canon.to_index(), estimator.device.name,
               estimator.precision, astuple(estimator.config))
        if estimator.cache is self.cache:
            # The estimator memoizes under the identical key in the same
            # cache; a second engine-side lookup would double-count misses.
            hit = key in self.cache
            with Timer() as timer:
                value = estimator.estimate_ms(canon)
            if hit:
                self.ledger.add("latency_cache_hit", count=1)
            else:
                self.ledger.add("latency_eval", timer.elapsed)
            return value

        def compute() -> float:
            with Timer() as timer:
                value = estimator.estimate_ms(canon)
            self.ledger.add("latency_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "latency")

    def _lookup(self, key, compute, tag: str):
        before = self.cache.hits
        value = self.cache.lookup(key, compute)
        if self.cache.hits > before:
            self.ledger.add(f"{tag}_cache_hit", count=1)
        return value

    # ------------------------------------------------------------------
    # Genotype evaluation
    # ------------------------------------------------------------------
    def evaluate(self, genotype: Genotype,
                 with_latency: bool = False) -> Dict[str, float]:
        """All four indicator values for one architecture.

        ``latency`` is reported as 0.0 unless requested — profiling a
        device is only worth paying for when the objective weights it.
        """
        return {
            "ntk": self.ntk(genotype),
            "linear_regions": self.linear_regions(genotype),
            "flops": self.flops(genotype),
            "latency": self.latency_ms(genotype) if with_latency else 0.0,
        }

    def evaluate_population(
        self,
        genotypes: Sequence[Genotype],
        with_latency: bool = False,
    ) -> IndicatorTable:
        """Indicator table for a population, deduplicated canonically.

        Rows come back in request order (duplicates included); each unique
        canonical form is evaluated at most once, and repeat populations
        hit the cache outright.
        """
        genotypes = list(genotypes)
        hits0, misses0 = self.cache.counters()
        unique_rows: Dict[int, Dict[str, float]] = {}
        canon_indices: List[int] = []
        for genotype in genotypes:
            index = canonicalize(genotype).to_index()
            canon_indices.append(index)
            if index not in unique_rows:
                unique_rows[index] = self.evaluate(genotype,
                                                   with_latency=with_latency)
        hits1, misses1 = self.cache.counters()
        columns = {
            name: np.array([unique_rows[idx][name] for idx in canon_indices],
                           dtype=float)
            for name in INDICATOR_NAMES
        }
        return IndicatorTable(
            genotypes=genotypes,
            columns=columns,
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            unique_canonical=len(unique_rows),
        )

    # ------------------------------------------------------------------
    # Supernet states (the pruning search's comparison unit)
    # ------------------------------------------------------------------
    def supernet_ntk(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Cached NTK condition number of a pruning-supernet state."""
        key = ("supernet_ntk", _supernet_key(edge_specs), self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = supernet_ntk_condition_number(edge_specs,
                                                      self.proxy_config)
            self.ledger.add("ntk_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "ntk")

    def supernet_linear_regions(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Cached line-region count of a pruning-supernet state."""
        key = ("supernet_lr", _supernet_key(edge_specs), self._proxy_key)

        def compute() -> float:
            edge_op_sets = [spec.alive_ops for spec in edge_specs]
            with Timer() as timer:
                value = supernet_line_regions(edge_op_sets, self.proxy_config)
            self.ledger.add("lr_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "lr")
