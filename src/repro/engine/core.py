"""The batched trainless-evaluation engine (layers 2 and 3).

:class:`Engine` is the single path through which search algorithms obtain
indicator values.  It owns

* the **canonicalization-aware cache** — indicators are properties of the
  canonical cell function, so every value is computed on (and keyed by)
  ``canonicalize(genotype)``; see :mod:`repro.engine` for the key contract,
* the **vectorized proxy kernels** — genotype evaluations dispatch to the
  batched NTK / line-counting paths via ``ProxyConfig.ntk_mode``/``lr_mode``,
* the **population API** — :meth:`evaluate_population` deduplicates a
  population by canonical form, evaluates only the unique survivors and
  returns an :class:`~repro.engine.table.IndicatorTable` in request order.

Latency estimators are built lazily per macro configuration and share the
engine's cache (the per-estimator memo that used to live in
``hardware/latency.py`` now writes the same keys).

Precision: proxies scope themselves under
``ProxyConfig.precision_policy()`` (forward/backward in the compute
dtype, eigensolves promoted to the accumulate dtype — see
:mod:`repro.engine.kernels`), and ``precision`` rides in
``astuple(proxy_config)``, i.e. in every cache key and store
fingerprint: float32 and float64 rows coexist without aliasing.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.cache import IndicatorCache
from repro.engine.kernels import batched_condition_numbers
from repro.engine.table import IndicatorTable
from repro.proxies.base import ProxyConfig
from repro.proxies.flops import count_flops, count_params
from repro.proxies.linear_regions import count_line_regions, supernet_line_regions
from repro.proxies.ntk import (
    ntk_condition_number,
    ntk_grams,
    supernet_ntk_condition_number,
)
from repro.searchspace.canonical import canonicalize
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils.timing import CostLedger, Timer

#: Indicator columns a full genotype evaluation produces.
INDICATOR_NAMES = ("ntk", "linear_regions", "flops", "latency")


def supernet_state_key(edge_specs: Sequence[EdgeSpec]) -> Tuple:
    """Hashable identity of a supernet state (alive-op sets in edge order).

    Exposed for composing layers (the parallel runtime builds the same
    cache keys the engine does when merging worker results back in).
    """
    return tuple(tuple(spec.alive_ops) for spec in edge_specs)


_supernet_key = supernet_state_key


class Engine:
    """Batched, cached indicator evaluation for populations of genotypes."""

    def __init__(
        self,
        proxy_config: Optional[ProxyConfig] = None,
        macro_config: Optional[MacroConfig] = None,
        latency_estimator=None,
        device=None,
        profiler=None,
        cache: Optional[IndicatorCache] = None,
        ledger: Optional[CostLedger] = None,
        lut_store=None,
        telemetry=None,
    ) -> None:
        self.proxy_config = proxy_config or ProxyConfig()
        self.macro_config = macro_config or MacroConfig.full()
        self.cache = cache if cache is not None else IndicatorCache()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.lut_store = lut_store
        #: Duck-typed run telemetry (``span``/``gauge``/``count`` with an
        #: ``enabled`` flag) or ``None``.  Deliberately untyped: the
        #: engine never imports the runtime package, the runtime hands
        #: the object in — the same direction as the ``executor=`` hook.
        self.telemetry = telemetry
        self._device = device
        self._profiler = profiler
        self._latency_estimator = latency_estimator
        self._estimators: Dict[Tuple, object] = {}
        if latency_estimator is not None:
            self._estimators[astuple(latency_estimator.config)] = latency_estimator
        self._cost_models: Dict[str, object] = {}
        self._proxy_key = astuple(self.proxy_config)

    # ------------------------------------------------------------------
    # Latency estimator plumbing
    # ------------------------------------------------------------------
    @property
    def latency_estimator(self):
        """Lazily profiled estimator for the engine's deployment config."""
        if self._latency_estimator is None:
            self._latency_estimator = self._estimator_for(self.macro_config)
        return self._latency_estimator

    @property
    def built_latency_estimator(self):
        """The estimator if one already exists, else None.

        The public seam for composing layers (constraint checkers,
        search loops) that want to *reuse* an existing estimator without
        triggering device profiling.
        """
        return self._latency_estimator

    def device(self):
        """The MCU this engine prices latency for (resolved lazily)."""
        if self._device is not None:
            return self._device
        if self._latency_estimator is not None:
            return self._latency_estimator.device
        from repro.hardware.device import NUCLEO_F746ZG

        return NUCLEO_F746ZG  # what _estimator_for would default to

    def for_device(self, device, profiler=None) -> "Engine":
        """This engine if it already prices ``device``, else a sibling.

        The sibling shares the cache and ledger (latency keys embed the
        device name, so entries never alias) but builds its own estimators
        — callers like :class:`~repro.search.macro.MacroStageSearch` must
        never silently receive another board's latencies.
        """
        if self.device().name == device.name:
            return self
        return Engine(
            proxy_config=self.proxy_config,
            macro_config=self.macro_config,
            device=device,
            profiler=profiler,
            cache=self.cache,
            ledger=self.ledger,
            lut_store=self.lut_store,
            telemetry=self.telemetry,
        )

    def _estimator_for(self, config: MacroConfig):
        """One shared LUT estimator per macro configuration.

        Estimators built here write into the engine's own cache, folding
        the old per-estimator latency memo into the canonical one.
        """
        key = astuple(config)
        if key not in self._estimators:
            from repro.hardware.latency import LatencyEstimator

            kwargs = {"config": config, "cache": self.cache}
            if self.lut_store is not None:
                kwargs["lut_store"] = self.lut_store
            device = self._device
            profiler = self._profiler
            if self._latency_estimator is not None:
                device = device or self._latency_estimator.device
                profiler = profiler or self._latency_estimator.profiler
            if device is not None:
                kwargs["device"] = device
            if profiler is not None:
                kwargs["profiler"] = profiler
            self._estimators[key] = LatencyEstimator(**kwargs)
        return self._estimators[key]

    # ------------------------------------------------------------------
    # Single-indicator accessors (all canonicalization-aware and cached)
    # ------------------------------------------------------------------
    def ntk(self, genotype: Genotype, k_index: int = 1) -> float:
        """Cached NTK condition number of the canonical form."""
        canon = canonicalize(genotype)
        key = ("ntk", canon.to_index(), k_index, self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = ntk_condition_number(canon, self.proxy_config,
                                             k_index=k_index)
            self.ledger.add("ntk_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "ntk")

    def linear_regions(self, genotype: Genotype) -> float:
        """Cached linear-region count of the canonical form."""
        canon = canonicalize(genotype)
        key = ("linear_regions", canon.to_index(), self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = count_line_regions(canon, self.proxy_config)
            self.ledger.add("lr_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "lr")

    def flops(self, genotype: Genotype,
              config: Optional[MacroConfig] = None) -> float:
        """Cached deployment FLOPs of the canonical form."""
        config = config or self.macro_config
        canon = canonicalize(genotype)
        key = ("flops", canon.to_index(), astuple(config))
        return self._lookup(key, lambda: float(count_flops(canon, config)),
                            "flops")

    def params(self, genotype: Genotype,
               config: Optional[MacroConfig] = None) -> int:
        """Cached learnable-parameter count of the canonical form."""
        config = config or self.macro_config
        canon = canonicalize(genotype)
        key = ("params", canon.to_index(), astuple(config))
        return self._lookup(key, lambda: count_params(canon, config), "params")

    def latency_ms(self, genotype: Genotype,
                   config: Optional[MacroConfig] = None) -> float:
        """Cached LUT latency of the canonical form (what a deployment
        runtime that elides dead edges would actually pay).

        Note the asymmetry with :meth:`LatencyEstimator.estimate_ms` and
        :class:`~repro.search.constraints.ConstraintChecker`, which price
        genotypes *as given* (dead edges billed, matching the on-board
        ground truth) — see the cache-key contract in :mod:`repro.engine`.
        """
        estimator = (self.latency_estimator if config is None
                     else self._estimator_for(config))
        canon = canonicalize(genotype)
        key = ("latency", canon.to_index(), estimator.device.name,
               estimator.precision, astuple(estimator.config))
        if estimator.cache is self.cache:
            # The estimator memoizes under the identical key in the same
            # cache; a second engine-side lookup would double-count misses.
            hit = key in self.cache
            with Timer() as timer:
                value = estimator.estimate_ms(canon)
            if hit:
                self.ledger.add("latency_cache_hit", count=1)
            else:
                self.ledger.add("latency_eval", timer.elapsed)
            return value

        def compute() -> float:
            with Timer() as timer:
                value = estimator.estimate_ms(canon)
            self.ledger.add("latency_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "latency")

    # ------------------------------------------------------------------
    # Pluggable cost models (registered hardware axes)
    # ------------------------------------------------------------------
    def cost_model(self, name: str):
        """The registered :class:`~repro.search.costs.CostModel` for one
        axis, built once per engine against this engine's device, macro
        configuration, cache and LUT store.

        ``latency``/``flops`` resolve to adapters over the engine's own
        estimator/counter, so their rows are shared with the legacy
        indicator columns bit-for-bit.
        """
        if name not in self._cost_models:
            from repro.search.costs import build_cost_model

            self._cost_models[name] = build_cost_model(
                name,
                device=self.device(),
                macro_config=self.macro_config,
                cache=self.cache,
                lut_store=self.lut_store,
                latency_estimator=(self.latency_estimator
                                   if name in ("latency", "energy")
                                   else None),
            )
        return self._cost_models[name]

    def cost(self, genotype: Genotype, model) -> float:
        """Cached value of one cost axis for the canonical form.

        ``model`` is a :class:`~repro.search.costs.CostModel` or a
        registered axis name.  Same caching contract as the indicator
        accessors: keyed by the model's fingerprint, so values never
        alias across devices, kernel precisions or macro configurations.
        """
        if isinstance(model, str):
            model = self.cost_model(model)
        return self._cost_canonical(canonicalize(genotype), model)

    def _cost_canonical(self, canon: Genotype, model) -> float:
        key = model.cache_key(canon.to_index())
        tag = f"cost[{model.name}]"
        if model.cache is self.cache:
            # The model memoizes under the identical key in the same
            # cache (estimator-backed axes); a second engine-side lookup
            # would double-count misses — same pattern as latency_ms.
            hit = key in self.cache
            with Timer() as timer:
                value = float(model.estimate(canon))
            if hit:
                self.ledger.add(f"{tag}_cache_hit", count=1)
            else:
                self.ledger.add(f"{tag}_eval", timer.elapsed)
            return value

        def compute() -> float:
            with Timer() as timer:
                value = float(model.estimate(canon))
            self.ledger.add(f"{tag}_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, tag)

    def _lookup(self, key, compute, tag: str):
        before = self.cache.hits
        value = self.cache.lookup(key, compute)
        if self.cache.hits > before:
            self.ledger.add(f"{tag}_cache_hit", count=1)
        return value

    def merge_indicator_rows(self, keyed_rows: Sequence[Tuple[Tuple, float]]
                             ) -> int:
        """Merge externally computed indicator rows into the cache.

        The incremental seam for the parallel/async runtimes: executors
        hand back ``(cache_key, value)`` pairs — in any completion order,
        possibly containing keys another chunk (or the serial path) already
        landed — and this method folds them in under first-write-wins.
        Rows that do land are counted as cache *misses* (they were
        genuinely computed, not found); rows already present are dropped,
        so duplicate or re-ordered chunks can never change a served value.
        Returns the number of rows merged.
        """
        merged = 0
        for key, value in keyed_rows:
            if key not in self.cache:
                self.cache.misses += 1  # computed externally, not found
                self.cache.put(key, value)
                merged += 1
        return merged

    # ------------------------------------------------------------------
    # Genotype evaluation
    # ------------------------------------------------------------------
    def evaluate(self, genotype: Genotype,
                 with_latency: bool = False) -> Dict[str, float]:
        """All four indicator values for one architecture.

        ``latency`` is reported as 0.0 unless requested — profiling a
        device is only worth paying for when the objective weights it.
        """
        return {
            "ntk": self.ntk(genotype),
            "linear_regions": self.linear_regions(genotype),
            "flops": self.flops(genotype),
            "latency": self.latency_ms(genotype) if with_latency else 0.0,
        }

    def ntk_population(self, genotypes: Sequence[Genotype],
                       k_index: int = 1) -> None:
        """Warm the NTK cache for a population with ONE stacked eigensolve.

        All missing unique canonical forms have their Gram matrices
        computed, stacked into an ``(N·repeats, B, B)`` array and
        eigendecomposed in a single ``np.linalg.eigvalsh`` gufunc dispatch
        (bit-identical per matrix to the per-candidate path — see
        :func:`repro.engine.kernels.batched_eigvalsh`).  Subsequent
        :meth:`ntk` calls resolve from the cache.
        """
        self._warm_ntk_canonical([canonicalize(g) for g in genotypes],
                                 k_index=k_index)

    def _warm_ntk_canonical(self, canons: Sequence[Genotype],
                            k_index: int = 1) -> None:
        """:meth:`ntk_population` for already-canonical genotypes."""
        missing: Dict[Tuple, Genotype] = {}
        for canon in canons:
            key = ("ntk", canon.to_index(), k_index, self._proxy_key)
            if key not in self.cache and key not in missing:
                missing[key] = canon
        if not missing:
            return
        grams: List[np.ndarray] = []
        spans: List[int] = []
        policy = self.proxy_config.precision_policy()
        with Timer() as timer:
            for canon in missing.values():
                candidate_grams = ntk_grams(canon, self.proxy_config)
                spans.append(len(candidate_grams))
                grams.extend(candidate_grams)
            # Grams were computed at the policy's compute dtype; the
            # stacked eigensolve promotes to its accumulate dtype, exactly
            # like the per-candidate path (see kernels.batched_eigvalsh).
            values = batched_condition_numbers(
                np.stack(grams), k_index=k_index,
                accumulate_dtype=policy.accumulate_dtype)
        self.ledger.add("ntk_eval", timer.elapsed, count=len(missing))
        offset = 0
        for key, span in zip(missing, spans):
            self.cache.misses += 1  # computed here, not via lookup()
            self.cache.put(key, float(np.mean(values[offset:offset + span])))
            offset += span

    def evaluate_population(
        self,
        genotypes: Sequence[Genotype],
        with_latency: bool = False,
        executor=None,
        cost_models: Optional[Sequence] = None,
    ) -> IndicatorTable:
        """Indicator table for a population, deduplicated canonically.

        Rows come back in request order (duplicates included); each unique
        canonical form is evaluated at most once, and repeat populations
        hit the cache outright.

        ``executor`` is the composition seam for the parallel runtime: any
        object with a ``warm_population(engine, genotypes, with_latency=...)``
        method (e.g. :class:`repro.runtime.pool.PopulationExecutor`) may
        pre-compute missing indicator rows — in worker processes, from a
        persisted store, in any completion order — and merge them into
        :attr:`cache` before the serial pass below assembles the table.
        The hook receives the population's *canonical* forms (computed
        once below), so executors need not re-canonicalize.
        Because assembly always happens here, in request order against the
        shared cache, the resulting table is identical no matter how (or
        whether) an executor warmed it.

        ``cost_models`` optionally appends one column per registered
        :class:`~repro.search.costs.CostModel` (by ``model.name``), each
        computed once per unique canonical form via :meth:`cost` — these
        are driver-side, LUT-mediated axes, so executors stay oblivious
        to them.  Omitted (the default), the table is bit-identical to
        the pre-registry four-column layout.
        """
        genotypes = list(genotypes)
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return self._evaluate_population_impl(genotypes, with_latency,
                                                  executor, cost_models)
        with tel.span("evaluate_population", "engine",
                      candidates=len(genotypes)) as span:
            table = self._evaluate_population_impl(genotypes, with_latency,
                                                   executor, cost_models)
            span.note(unique=table.unique_canonical,
                      cache_hits=table.cache_hits,
                      cache_misses=table.cache_misses)
            stats = self.cache.stats
            tel.gauge("cache.hit_rate", stats.hit_rate)
            tel.gauge("cache.entries", stats.entries)
            return table

    def _evaluate_population_impl(
        self,
        genotypes: Sequence[Genotype],
        with_latency: bool = False,
        executor=None,
        cost_models: Optional[Sequence] = None,
    ) -> IndicatorTable:
        genotypes = list(genotypes)
        # One canonicalization pass serves the executor hook, the stacked
        # eigensolve and the dedupe below (canonicalize builds a cell
        # graph per call — repeating it would dominate the warm path).
        canons = [canonicalize(g) for g in genotypes]
        hits0, misses0 = self.cache.counters()
        if executor is not None:
            executor.warm_population(self, canons, with_latency=with_latency)
        # Whatever κ values are still missing get one stacked eigensolve.
        self._warm_ntk_canonical(canons)
        unique_rows: Dict[int, Dict[str, float]] = {}
        unique_canons: Dict[int, Genotype] = {}
        canon_indices: List[int] = []
        for genotype, canon in zip(genotypes, canons):
            index = canon.to_index()
            canon_indices.append(index)
            if index not in unique_rows:
                unique_rows[index] = self.evaluate(genotype,
                                                   with_latency=with_latency)
                unique_canons[index] = canon
        for model in cost_models or ():
            for index, canon in unique_canons.items():
                unique_rows[index][model.name] = self._cost_canonical(canon,
                                                                      model)
        hits1, misses1 = self.cache.counters()
        column_names = list(INDICATOR_NAMES)
        column_names += [model.name for model in cost_models or ()]
        columns = {
            name: np.array([unique_rows[idx][name] for idx in canon_indices],
                           dtype=float)
            for name in column_names
        }
        return IndicatorTable(
            genotypes=genotypes,
            columns=columns,
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            unique_canonical=len(unique_rows),
        )

    # ------------------------------------------------------------------
    # Supernet states (the pruning search's comparison unit)
    # ------------------------------------------------------------------
    def supernet_ntk(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Cached NTK condition number of a pruning-supernet state."""
        key = ("supernet_ntk", _supernet_key(edge_specs), self._proxy_key)

        def compute() -> float:
            with Timer() as timer:
                value = supernet_ntk_condition_number(edge_specs,
                                                      self.proxy_config)
            self.ledger.add("ntk_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "ntk")

    def supernet_linear_regions(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Cached line-region count of a pruning-supernet state."""
        key = ("supernet_lr", _supernet_key(edge_specs), self._proxy_key)

        def compute() -> float:
            edge_op_sets = [spec.alive_ops for spec in edge_specs]
            with Timer() as timer:
                value = supernet_line_regions(edge_op_sets, self.proxy_config)
            self.ledger.add("lr_eval", timer.elapsed)
            return value

        return self._lookup(key, compute, "lr")
