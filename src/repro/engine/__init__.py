"""Batched trainless-evaluation engine.

Every search algorithm in :mod:`repro.search` obtains indicator values
(NTK condition number κ, linear-region count LR, FLOPs F, latency L)
through one :class:`~repro.engine.core.Engine` instead of re-deriving them
inline.  The engine has three layers:

1. **Vectorized kernels** (:mod:`repro.engine.kernels`) — the full NTK
   Jacobian from ONE batched forward + ONE backward (per-sample gradients
   reconstructed layer-locally), and all probe lines of the region count
   in a single stacked ``no_grad`` forward.  The original per-sample /
   per-line loops remain available as ``mode="reference"`` for validation.
2. **Canonicalization-aware cache** (:mod:`repro.engine.cache`) — memoizes
   every indicator across repeats, search cycles and algorithms.
3. **Population API** (:meth:`Engine.evaluate_population`) — deduplicates
   a population by canonical form and returns an
   :class:`~repro.engine.table.IndicatorTable` in request order.

Cache-key contract
------------------
Indicator values are properties of the **canonical cell function**, not of
the raw genotype: every evaluation first applies
:func:`repro.searchspace.canonical.canonicalize` (dead edges → ``none``)
and both computes on and keys by the canonical form.  Consequences callers
rely on:

* Functionally-equal genotypes (``canonicalize(a) == canonicalize(b)``)
  share one cache entry and return **bit-identical** values — including
  the proxy RNG streams, which are seeded from the *canonical* index.
* Keys embed everything the value depends on, so differing configurations
  can never alias: proxy values are keyed by
  ``(indicator, canonical_index, astuple(ProxyConfig))`` (covering sizes,
  seeds, repeats, the ``ntk_mode``/``lr_mode`` kernel selection and the
  ``precision`` policy name, plus ``k_index`` for κ); FLOPs/params by
  ``(indicator, canonical_index, astuple(MacroConfig))``; latency by
  ``(indicator, canonical_index, device name, precision,
  astuple(MacroConfig))``.  Supernet states replace the canonical index
  with the tuple of alive-op sets in edge order.
* :class:`~repro.hardware.latency.LatencyEstimator` writes the same
  latency keys, so an estimator sharing the engine's
  :class:`~repro.engine.cache.IndicatorCache` contributes to (and benefits
  from) the same memo.  A direct ``estimate_ms`` call does *not*
  canonicalize — dead edges are billed, matching the on-board ground
  truth; the engine's ``latency_ms`` prices the canonical network an
  optimising deployment runtime would compile.

Precision semantics
-------------------
Compute precision is an explicit :class:`~repro.autograd.precision.\
PrecisionPolicy` named by ``ProxyConfig.precision``: proxy forwards,
backwards and Gram products run in the policy's ``compute_dtype``
(float64 default — bit-identical to the pre-policy substrate — or
float32 for ~2× kernel throughput), while **eigensolves always promote
to** ``accumulate_dtype`` (float64 under both built-in policies) because
condition numbers amplify rounding error through near-singular spectra.
The precision name travels inside ``astuple(ProxyConfig)``, i.e. inside
every proxy cache key and persisted-store fingerprint, so rows computed
under different policies can never alias or cross-contaminate.
"""

from repro.engine.cache import CacheStats, IndicatorCache
from repro.engine.table import IndicatorTable
from repro.engine.kernels import (
    batched_condition_numbers,
    batched_count_line_regions,
    batched_eigvalsh,
    batched_line_patterns,
    batched_ntk_jacobian,
)
from repro.engine.core import INDICATOR_NAMES, Engine, supernet_state_key

__all__ = [
    "Engine",
    "IndicatorCache",
    "IndicatorTable",
    "CacheStats",
    "INDICATOR_NAMES",
    "batched_ntk_jacobian",
    "batched_line_patterns",
    "batched_count_line_regions",
    "batched_eigvalsh",
    "batched_condition_numbers",
    "supernet_state_key",
]
