"""Vectorized proxy kernels (layer 1 of the evaluation engine).

Two hot loops dominate trainless evaluation, and both collapse to single
batched passes:

* **NTK Jacobian** — the reference path runs one forward/backward per
  sample (batch-size-1 tapes).  With BatchNorm statistics frozen, no
  operation in the proxy network mixes batch entries, so the per-sample
  gradient of every *intermediate* tensor survives a single batched
  backward intact; only the contraction into parameter gradients sums over
  the batch.  :func:`batched_ntk_jacobian` therefore runs ONE batched
  forward + ONE backward seeded with ones, captures each parameterised
  layer's input activation and output gradient via forward hooks, and
  reconstructs the per-sample parameter gradients layer-locally
  (Goodfellow, 2015): an outer product for ``Linear``, an im2col
  contraction for ``Conv2d``, and channel-wise reductions for the affine
  ``BatchNorm2d`` terms.  The result is the exact ``(B, P)`` Jacobian the
  per-sample loop produces, at ~1/B of the Python/tape overhead.

* **Line-region counting** — the reference path runs one forward per probe
  line.  :func:`batched_line_patterns` stacks all lines' sample points
  into one ``(L·P, C, H, W)`` batch and runs a single ``no_grad`` forward;
  per-line boundary crossings are then counted on the reshaped pattern
  matrix.  Per-sample arithmetic is bit-identical to the per-line path.

Both kernels assume (and assert) per-sample independence: networks must be
in eval mode with frozen normalisation statistics.  The engine's cache and
population layers live in :mod:`repro.engine.core`.

**Precision semantics** (see :mod:`repro.autograd.precision`): every
kernel runs in the dtype of the network it is handed — forward passes,
im2col buffers, per-sample gradient reconstruction and the Gram matmul
all stay in the policy's ``compute_dtype``.  The one deliberate
exception is eigendecomposition: :func:`batched_eigvalsh` promotes Gram
stacks to ``accumulate_dtype`` (float64 under both built-in policies)
because condition numbers amplify rounding error through near-singular
spectra, while the solve itself is negligible next to the Jacobian work.
Probe-line endpoints are interpolated in float64 in both the batched and
reference paths (identical inputs), then cast once at the forward.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd.functional import _im2col
from repro.errors import ProxyError
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module

#: Layer types whose per-sample parameter gradients the kernel can
#: reconstruct layer-locally.  Everything parameterised in this library is
#: composed of these three leaves.
_CAPTURED_TYPES = (Conv2d, Linear, BatchNorm2d)


def _param_slices(params) -> Dict[int, List[slice]]:
    """Flat-Jacobian column slices per parameter id, in collection order.

    Matches the layout of ``_collect_param_grads`` in the reference path:
    parameters are concatenated in ``network.parameters()`` order.
    """
    slices: Dict[int, List[slice]] = {}
    offset = 0
    for p in params:
        slices.setdefault(id(p), []).append(slice(offset, offset + p.size))
        offset += p.size
    return slices


def _per_sample_grads(module: Module, x: Tensor, grad: np.ndarray,
                      batch: int) -> List[Tuple[int, np.ndarray]]:
    """``(param id, (B, size) gradient)`` pairs for one captured layer call."""
    out: List[Tuple[int, np.ndarray]] = []
    if isinstance(module, Conv2d):
        n, c_out, oh, ow = grad.shape
        cols, _ = _im2col(x.data, module.kernel_size, module.stride,
                          module.padding)
        grad_mat = grad.reshape(n, c_out, oh * ow)
        grad_w = np.matmul(grad_mat, cols.transpose(0, 2, 1))
        out.append((id(module.weight), grad_w.reshape(batch, -1)))
        if module.bias is not None:
            out.append((id(module.bias), grad.sum(axis=(2, 3))))
    elif isinstance(module, Linear):
        if x.ndim != 2 or grad.ndim != 2:
            raise ProxyError(
                f"batched NTK supports 2-D Linear activations, got input "
                f"{x.shape} / grad {grad.shape}"
            )
        grad_w = grad[:, :, None] * x.data[:, None, :]
        out.append((id(module.weight), grad_w.reshape(batch, -1)))
        if module.bias is not None:
            out.append((id(module.bias), grad))
    elif isinstance(module, BatchNorm2d):
        if not module.affine:
            return out
        if module.training:
            raise ProxyError(
                "batched NTK requires frozen BatchNorm statistics "
                "(eval mode); use mode='reference' or 'coupled' instead"
            )
        inv_std = 1.0 / np.sqrt(module.running_var + module.eps)
        normalised = (x.data - module.running_mean.reshape(1, -1, 1, 1)) \
            * inv_std.reshape(1, -1, 1, 1)
        out.append((id(module.weight), (grad * normalised).sum(axis=(2, 3))))
        out.append((id(module.bias), grad.sum(axis=(2, 3))))
    return out


def batched_ntk_jacobian(network: Module, images: np.ndarray,
                         freeze_stats: bool = True) -> np.ndarray:
    """Exact per-sample summed-logit Jacobian in one forward + one backward.

    With ``freeze_stats=True`` (the default) every BatchNorm computes this
    batch's statistics on the fly and normalises with them as constants —
    numerically identical to the reference path's separate momentum-1.0
    freeze pass, without paying a second forward.  The network must be in
    eval mode.  Returns the ``(B, P)`` matrix whose rows are
    ``∂ Σ_c f_c(x_i) / ∂θ`` in ``network.parameters()`` order — the same
    layout as the reference per-sample loop, up to float summation order.
    """
    params = network.parameters()
    if not params:
        raise ProxyError("network has no parameters; NTK undefined")
    batch = images.shape[0]
    slices = _param_slices(params)

    captures: List[Tuple[Module, Tensor, Tensor]] = []
    handles: List[Tuple[Module, int]] = []

    def capture(module: Module, inputs: Tuple, output: Tensor) -> None:
        captures.append((module, inputs[0], output))

    batchnorms = []
    for module in network.modules():
        if module._parameters and not isinstance(module, _CAPTURED_TYPES):
            raise ProxyError(
                f"{type(module).__name__} carries parameters the batched NTK "
                "kernel cannot capture; use mode='reference'"
            )
        if isinstance(module, _CAPTURED_TYPES):
            handles.append((module, module.register_forward_hook(capture)))
        if isinstance(module, BatchNorm2d):
            batchnorms.append(module)

    # Route gradient flow through the *input* and detach the parameters:
    # the kernel only consumes intermediate activation gradients, so the
    # total parameter gradients the backward closures would otherwise
    # produce (one tensordot per conv) are pure waste here.
    saved_flags = [p.requires_grad for p in params]
    try:
        if freeze_stats:
            network.train(False)
            for bn in batchnorms:
                bn.freeze_stats_on_forward = True
        for p in params:
            p.requires_grad = False
        output = network(Tensor(images, requires_grad=True))
        if output.ndim != 2:
            raise ProxyError(
                f"expected (batch, classes) logits, got {output.shape}"
            )
        output.backward(np.ones_like(output.data))
    finally:
        for module, handle in handles:
            module.remove_forward_hook(handle)
        for p, flag in zip(params, saved_flags):
            p.requires_grad = flag
        if freeze_stats:
            for bn in batchnorms:
                bn.freeze_stats_on_forward = False

    # The Jacobian inherits the network's compute dtype (precision-policy
    # controlled): a float32 network keeps the whole reconstruction — and
    # the Gram matmul downstream — in float32 instead of upcasting.
    jacobian = np.zeros((batch, sum(p.size for p in params)),
                        dtype=params[0].data.dtype)
    for module, x, out in captures:
        grad = out.grad
        if grad is None:
            # Layer output never reached the logits (dead branch): the
            # reference loop leaves these parameter gradients at zero too.
            continue
        for pid, per_sample in _per_sample_grads(module, x, grad, batch):
            for column_slice in slices[pid]:
                jacobian[:, column_slice] += per_sample
    output.clear_tape_grads()
    return jacobian


def batched_line_patterns(
    network: Module,
    starts: np.ndarray,
    stops: np.ndarray,
    num_points: int,
) -> np.ndarray:
    """ReLU patterns for every point of every probe line in ONE forward.

    ``starts``/``stops`` are ``(L, C, H, W)`` segment endpoints.  Returns a
    ``(L, num_points, units)`` boolean array; per-sample values are
    bit-identical to running each line separately (no op mixes the batch
    axis in the BN-free expressivity network).
    """
    from repro.proxies.linear_regions import _forward_patterns

    starts = np.asarray(starts, dtype=float)
    stops = np.asarray(stops, dtype=float)
    if starts.shape != stops.shape or starts.ndim != 4:
        raise ProxyError(
            f"need matching (L, C, H, W) endpoints, got {starts.shape} "
            f"and {stops.shape}"
        )
    num_lines = starts.shape[0]
    ts = np.linspace(0.0, 1.0, num_points).reshape(1, -1, 1, 1, 1)
    lines = starts[:, None] * (1.0 - ts) + stops[:, None] * ts
    stacked = lines.reshape(num_lines * num_points, *starts.shape[1:])
    patterns = _forward_patterns(network, stacked)
    return patterns.reshape(num_lines, num_points, -1)


def count_regions_per_line(patterns: np.ndarray) -> np.ndarray:
    """Region count per line from stacked ``(L, P, units)`` patterns.

    A region boundary lies between consecutive points whose activation
    patterns differ; each line crosses ``#boundaries + 1`` regions.
    """
    changed = (patterns[:, 1:] != patterns[:, :-1]).any(axis=2)
    return changed.sum(axis=1) + 1


def batched_count_line_regions(
    network: Module,
    starts: np.ndarray,
    stops: np.ndarray,
    num_points: int,
) -> np.ndarray:
    """Per-line region counts for all probe lines in one forward pass."""
    return count_regions_per_line(
        batched_line_patterns(network, starts, stops, num_points)
    )


def batched_eigvalsh(grams: np.ndarray,
                     accumulate_dtype=np.float64) -> np.ndarray:
    """Eigenvalues (ascending) of a stack of symmetric matrices.

    ``np.linalg.eigvalsh`` is a gufunc: stacking population NTK Grams into
    one ``(N, B, B)`` array dispatches a single LAPACK loop instead of N
    Python-level calls, and each matrix goes through the identical
    ``syevd`` routine — per-matrix results are bit-identical to separate
    calls (pinned by ``tests/engine/test_kernels.py``).

    ``accumulate_dtype`` is the precision-policy promotion seam: NTK
    spectra are ill-conditioned by construction (κ IS the indicator), so
    even float32-computed Grams are eigendecomposed in float64 by default
    (``PrecisionPolicy.accumulate_dtype``) — the solve is O(N·B³) on tiny
    B×B matrices, a rounding error next to the Jacobian work it follows.
    """
    grams = np.asarray(grams, dtype=accumulate_dtype)
    if grams.ndim != 3 or grams.shape[-1] != grams.shape[-2]:
        raise ProxyError(
            f"expected a stacked (N, B, B) Gram array, got {grams.shape}"
        )
    return np.linalg.eigvalsh(grams)


def batched_condition_numbers(grams: np.ndarray, k_index: int = 1,
                              accumulate_dtype=np.float64) -> np.ndarray:
    """``K_{k_index} = λ_max / λ_(k-th smallest)`` per Gram, one eigensolve.

    Vectorized twin of :meth:`repro.proxies.ntk.NtkResult.k` over an
    ``(N, B, B)`` stack: singular kernels (λ below the shared epsilon)
    produce ``inf`` exactly as the per-candidate path does.  Grams are
    promoted to ``accumulate_dtype`` for the solve (see
    :func:`batched_eigvalsh`).
    """
    from repro.proxies.ntk import _EIG_EPS

    eigenvalues = batched_eigvalsh(grams, accumulate_dtype=accumulate_dtype)
    num_eigs = eigenvalues.shape[1]
    if not 1 <= k_index <= num_eigs:
        raise ProxyError(f"K index {k_index} outside [1, {num_eigs}]")
    lam_max = eigenvalues[:, -1]
    lam_k = eigenvalues[:, k_index - 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        values = lam_max / lam_k
    values[(lam_max <= _EIG_EPS) | (lam_k <= _EIG_EPS)] = np.inf
    return values


__all__ = [
    "batched_ntk_jacobian",
    "batched_line_patterns",
    "batched_count_line_regions",
    "batched_eigvalsh",
    "batched_condition_numbers",
    "count_regions_per_line",
]
