"""The canonicalization-aware indicator cache.

One :class:`IndicatorCache` memoizes every expensive indicator the
evaluation engine computes — NTK condition numbers, linear-region counts,
FLOPs, parameter counts and LUT latencies — across repeats, search cycles
and algorithms.  Keys are plain hashable tuples built by the caller; the
engine's key contract is documented in :mod:`repro.engine`.

The cache is deliberately simple: no locking (the library is
single-threaded) and values are opaque.  ``float('inf')`` and ``nan`` are
legal cached values, so presence is tracked explicitly rather than via
``get(...) is None``.

Memory is **optionally bounded**: ``IndicatorCache(max_rows=N)`` turns
the cache into an LRU tier over the persistent store — once more than
``N`` rows are resident, the least-recently-used *clean* rows are
dropped.  Two invariants make the bound safe:

* **Dirty rows are pinned.**  A row written since the last
  :meth:`mark_clean` has not been persisted anywhere; evicting it would
  lose computed work (and break the O(delta) save contract).  Dirty rows
  are never evicted, so a burst of fresh computation may transiently
  exceed ``max_rows`` until the next store flush marks them clean.
* **Eviction never changes results.**  An evicted row is simply absent:
  the next lookup recomputes it (bit-identically — proxies seed from the
  canonical key) or reloads it from the store.  Presence only affects
  *cost*, never values.

Recency: :meth:`lookup` hits and :meth:`put` refresh a row's position;
:meth:`get` and ``in`` are deliberately non-promoting peeks (persistence
layers and executors probe with them constantly, which must not distort
the eviction order the *evaluation* access pattern establishes).
``max_rows=None`` (the default) keeps the unbounded behaviour: the
NAS-Bench-201 space tops out at 15,625 architectures × a handful of
indicators, but a long-lived process serving a million-row store needs
the bound.

Precision is part of the *key*, not the cache: proxy keys embed
``astuple(ProxyConfig)`` — which includes the ``precision`` policy name —
so float32 and float64 evaluations of the same canonical form occupy
distinct entries and can warm-start side by side in one cache (and one
persisted store file set; see :mod:`repro.runtime.store`).

The cache also tracks **dirty rows** — keys written since the last
:meth:`IndicatorCache.mark_clean` — so persistence layers can append just
the delta a run computed instead of rewriting everything they loaded:
:meth:`~repro.runtime.store.RuntimeStore.load_cache_into` marks loaded
rows clean, ``save_cache`` appends :meth:`IndicatorCache.dirty_items` and
marks them clean in turn.  Tracking is a set of keys (no value copies), so
``put`` stays O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, List, Optional, Tuple

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`IndicatorCache`."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class IndicatorCache:
    """Memoizes indicator values under caller-supplied hashable keys.

    ``max_rows`` bounds resident rows LRU-style (``None`` = unbounded);
    dirty rows are pinned until a persistence layer flushes them — see
    the module docstring for the eviction invariants.
    """

    def __init__(self, max_rows: Optional[int] = None) -> None:
        if max_rows is not None and max_rows < 1:
            raise ValueError("max_rows must be >= 1 (or None: unbounded)")
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._dirty: set = set()
        self.max_rows = max_rows
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Peek without touching the hit/miss counters (non-promoting)."""
        return self._data.get(key, default)

    def items(self) -> list:
        """Snapshot of ``(key, value)`` pairs (for persistence layers)."""
        return list(self._data.items())

    def put(self, key: Hashable, value: Any) -> Any:
        self._data[key] = value
        self._data.move_to_end(key)
        self._dirty.add(key)
        self._evict_overflow()
        return value

    def _evict_overflow(self) -> None:
        """Drop least-recently-used *clean* rows past ``max_rows``.

        Dirty rows are skipped (pinned until flushed), so the cache may
        transiently exceed the bound while unflushed work accumulates —
        losing computed rows would be worse than exceeding the budget.
        """
        if self.max_rows is None or len(self._data) <= self.max_rows:
            return
        excess = len(self._data) - self.max_rows
        victims = []
        for key in self._data:  # oldest (least recently used) first
            if key in self._dirty:
                continue
            victims.append(key)
            if len(victims) >= excess:
                break
        for key in victims:
            del self._data[key]
        self.evictions += len(victims)

    def dirty_items(self) -> List[Tuple[Hashable, Any]]:
        """``(key, value)`` pairs written since the last :meth:`mark_clean`.

        The O(delta) half of store persistence: appending these — instead
        of rewriting :meth:`items` — is what keeps save cost proportional
        to the rows a run computed, not to everything it warm-started.
        """
        return [(key, self._data[key]) for key in self._dirty
                if key in self._data]

    def mark_clean(self, keys: Optional[Iterable[Hashable]] = None) -> None:
        """Forget dirtiness for ``keys`` (all, when ``None``) — called by
        persistence layers after loading or appending those rows.  Newly
        clean rows become evictable, so an over-budget cache shrinks back
        under ``max_rows`` here (the flush that pinned-row accumulation
        was waiting for)."""
        if keys is None:
            self._dirty.clear()
        else:
            self._dirty.difference_update(keys)
        self._evict_overflow()

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def lookup(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)  # refresh LRU recency
            return value
        self.misses += 1
        return self.put(key, compute())

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        self._dirty.discard(key)
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        self._data.clear()
        self._dirty.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses,
                          entries=len(self._data),
                          evictions=self.evictions)

    def counters(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` snapshot (for delta accounting)."""
        return (self.hits, self.misses)
