"""Run-scoped telemetry: metrics registry, worker-side log, heartbeat.

This module owns the runtime's observability substrate.  One
:class:`Telemetry` object is minted per harness run and threaded through
``RunHarness`` → ``AsyncPopulationExecutor`` → ``FuturePool`` →
``RuntimeStore`` → ``Engine``; every layer records spans (via
:mod:`repro.runtime.tracing`) and metrics against it.  The contract:

* **Strict observer.**  Nothing here may change what the runtime
  computes.  Worker wrappers return the inner result untouched; the
  bit-identity assertions in ``benchmarks/bench_telemetry.py`` and the
  ``obs``-marked tests hold the line.
* **Disabled by default, cheap when armed.**  The disabled singleton
  (:meth:`Telemetry.disabled`) answers every call with a no-op; armed
  overhead must stay under 2% (``BENCH_telemetry.json``).  Metric
  updates are single int/float ops on plain attributes — GIL-atomic, no
  locks on the hot path.
* **Cross-process merge by append-only JSONL.**  Fork workers cannot
  share the parent's in-memory registry, so :class:`TracedWorker`
  appends span + metrics records to a ``flock``'d sidecar
  (``<trace>.workers.jsonl``) — the same discipline as the format-2
  store segments and the quarantine ledger — which the parent drains
  into the trace at export time.  Torn tail lines (a worker killed
  mid-write) are skipped, never fatal.

The engine never imports this module: ``Engine`` takes a duck-typed
``telemetry`` object, keeping the engine→runtime layering acyclic.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.tracing import (
    CAT_WORKER,
    NULL_SPAN,
    Tracer,
    write_chrome_trace,
)

try:  # pragma: no cover - platform dependent
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------

#: Default histogram bucket upper bounds, in seconds — log-spaced to
#: cover everything from a cache-hit merge (~1ms) to a hung-chunk
#: deadline (~60s).  Values above the last bound land in the overflow
#: bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count.  ``inc`` is one int add on a
    plain attribute — GIL-atomic, lock-free."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, cache hit rate): last set
    wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A bucketed distribution (chunk latency, flush time).

    Fixed upper-bound buckets plus an overflow slot; ``observe`` is a
    linear scan over ~a dozen bounds and two adds — cheap enough for the
    per-chunk hot path, and mergeable across processes by summing
    counts.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on demand.

    Creation takes a lock (it mutates a dict and is rare); updates on
    the returned primitive never do.  Call sites that update in a loop
    should hold the primitive, not re-look it up.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._create_lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._create_lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._create_lock:
                return self._histograms.setdefault(name, Histogram(buckets))

    # ------------------------------------------------------------------
    def merge_record(self, record: Dict) -> None:
        """Fold one worker-side metrics record into this registry.

        Worker records carry raw observation lists rather than
        pre-bucketed counts so the parent's bucket layout is the single
        source of truth.
        """
        for name, n in record.get("counters", {}).items():
            self.counter(name).inc(int(n))
        for name, value in record.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in record.get("observations", {}).items():
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(value)

    def snapshot(self) -> Dict:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
        }


# ----------------------------------------------------------------------
# Cross-process worker log
# ----------------------------------------------------------------------
class TelemetryLog:
    """``flock``'d append-only JSONL sidecar for worker-side telemetry.

    Appends hold the file's own ``flock`` (the quarantine-ledger
    discipline); reads skip torn tail lines, so a worker killed
    mid-write — the fault machinery does exactly that on purpose —
    costs at most its final record, never the file.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, record: Dict) -> None:
        self.append_many([record])

    def append_many(self, records: Sequence[Dict]) -> None:
        """Append several records under one lock/open (what the worker
        wrapper uses: one span + one metrics record per chunk)."""
        text = "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in records)
        handle = open(self.path, "a", encoding="utf-8")
        try:
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_EX)
            handle.write(text)
            handle.flush()
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                finally:
                    handle.close()
            else:
                handle.close()

    def read(self) -> List[Dict]:
        if not self.path.exists():
            return []
        records: List[Dict] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(record, dict):
                records.append(record)
        return records

    def unlink(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def _chunk_result_shape(result):
    """``(rows_count, compute_seconds)`` when ``result`` has the chunk
    workers' ``(rows, seconds)`` shape; ``(None, None)`` otherwise."""
    if isinstance(result, tuple) and len(result) == 2:
        rows, compute_seconds = result
        try:
            return len(rows), compute_seconds
        except TypeError:
            pass
    return None, None


class LocalTracedWorker:
    """In-process counterpart of :class:`TracedWorker`.

    Serial/thread pools run the worker in the parent process, so the
    compute span can record straight into the parent's tracer and
    registry — no sidecar file, no ``flock``, which is what keeps the
    armed overhead of a serial run inside the <2% budget.  Same
    strict-observer contract: the inner result passes through untouched
    and a raising inner records (with the error noted) and re-raises.
    """

    __slots__ = ("telemetry", "inner", "chunk")

    def __init__(self, telemetry: "Telemetry", inner: Callable,
                 chunk: Optional[int] = None) -> None:
        self.telemetry = telemetry
        self.inner = inner
        self.chunk = chunk

    def __call__(self, payload):
        telemetry = self.telemetry
        with telemetry.tracer.span("worker_compute", CAT_WORKER,
                                   {"chunk": self.chunk}) as span:
            perf = time.perf_counter()
            result = self.inner(payload)
            duration = time.perf_counter() - perf
            rows_count, compute_seconds = _chunk_result_shape(result)
            if rows_count is not None:
                span.note(rows=rows_count, compute_seconds=compute_seconds)
        metrics = telemetry.metrics
        metrics.counter("worker.chunks").inc()
        if rows_count is not None:
            metrics.counter("worker.rows").inc(rows_count)
        metrics.histogram("worker_chunk_seconds").observe(duration)
        return result


class TracedWorker:
    """Picklable worker wrapper that self-reports compute spans.

    Ships to fork workers by value (path string + inner callable), times
    the inner call, appends one span record and one metrics record to
    the telemetry log, and returns the inner result **untouched** — the
    bit-identity contract.  A raising inner still logs (with the error
    type noted) and re-raises; a crashing worker (``os._exit``) simply
    never logs, which the torn-tail-tolerant reader absorbs.
    """

    def __init__(self, log_path: str, inner: Callable,
                 chunk: Optional[int] = None, run_id: str = "") -> None:
        self.log_path = log_path
        self.inner = inner
        self.chunk = chunk
        self.run_id = run_id

    def __call__(self, payload):
        wall = time.time()
        perf = time.perf_counter()
        log = TelemetryLog(self.log_path)
        try:
            result = self.inner(payload)
        except BaseException as exc:
            duration = time.perf_counter() - perf
            try:
                log.append(self._span_record(wall, duration,
                                             error=type(exc).__name__))
            except OSError:
                pass  # telemetry must never mask the real failure
            raise
        duration = time.perf_counter() - perf
        rows_count, compute_seconds = _chunk_result_shape(result)
        try:
            counters = {"worker.chunks": 1}
            if rows_count is not None:
                counters["worker.rows"] = rows_count
            log.append_many([
                self._span_record(wall, duration, rows=rows_count,
                                  compute_seconds=compute_seconds),
                {
                    "kind": "metrics",
                    "counters": counters,
                    "observations": {"worker_chunk_seconds": [duration]},
                },
            ])
        except OSError:
            pass
        return result

    def _span_record(self, wall: float, duration: float, **extra) -> Dict:
        args = {"chunk": self.chunk}
        args.update({k: v for k, v in extra.items() if v is not None})
        return {
            "kind": "span",
            "name": "worker_compute",
            "cat": CAT_WORKER,
            "ts": wall,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }


# ----------------------------------------------------------------------
# The run-scoped facade
# ----------------------------------------------------------------------
class Telemetry:
    """The run-scoped telemetry object every runtime layer records into.

    Obtain one via :meth:`armed` (tracing/metrics live) or
    :meth:`disabled` (the shared no-op singleton, the default
    everywhere).  Call sites guard with ``tel.enabled`` only when they
    would otherwise build argument dicts; plain ``tel.span(...)`` /
    ``tel.count(...)`` calls are already no-ops when disabled.
    """

    _DISABLED: Optional["Telemetry"] = None

    def __init__(self, enabled: bool, run_id: str = "",
                 trace_path=None) -> None:
        self.enabled = enabled
        self.run_id = run_id
        self.trace_path = Path(trace_path) if trace_path else None
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.worker_log = (TelemetryLog(f"{self.trace_path}.workers.jsonl")
                           if self.trace_path else None)
        self._drained = False

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op instance (safe to hand to every layer)."""
        if cls._DISABLED is None:
            cls._DISABLED = cls(enabled=False)
        return cls._DISABLED

    @classmethod
    def armed(cls, run_id: str = "", trace_path=None) -> "Telemetry":
        return cls(enabled=True, run_id=run_id, trace_path=trace_path)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "runtime", **args):
        """A span context manager (the shared no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, cat, args or None)

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def wrap_worker(self, worker: Callable, chunk: Optional[int] = None,
                    local: bool = False) -> Callable:
        """``worker`` wrapped to self-report compute spans.

        ``local=True`` (serial/thread pools: the worker runs in this
        process) records straight into the tracer; otherwise the wrapper
        writes through the cross-process sidecar, which requires an
        armed trace path — without one, ``worker`` returns unwrapped.
        """
        if not self.enabled:
            return worker
        if local:
            return LocalTracedWorker(self, worker, chunk=chunk)
        if self.worker_log is None:
            return worker
        return TracedWorker(str(self.worker_log.path), worker,
                            chunk=chunk, run_id=self.run_id)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def drain_worker_log(self) -> int:
        """Fold worker-side records into the tracer/registry; returns the
        number of records absorbed.  Idempotent: the sidecar is consumed
        (unlinked) on first drain."""
        if self.worker_log is None or self._drained:
            return 0
        records = self.worker_log.read()
        for record in records:
            kind = record.get("kind")
            if kind == "span":
                self.tracer.record(
                    record.get("name", "worker_compute"),
                    record.get("cat", CAT_WORKER),
                    float(record.get("ts", 0.0)),
                    float(record.get("dur", 0.0)),
                    pid=record.get("pid"),
                    tid=record.get("tid"),
                    args=record.get("args"),
                )
            elif kind == "metrics":
                self.metrics.merge_record(record)
        self.worker_log.unlink()
        self._drained = True
        return len(records)

    def metrics_snapshot(self) -> Dict:
        return self.metrics.snapshot()

    def export(self, other_data: Optional[Dict] = None) -> Dict:
        """The full trace payload (Chrome ``trace_event`` object form),
        with worker records drained in and the metrics snapshot embedded
        in ``otherData``."""
        self.drain_worker_log()
        data = {
            "run_id": self.run_id,
            "pid": self.tracer.pid,
            "metrics": self.metrics_snapshot(),
        }
        data.update(other_data or {})
        return {
            "traceEvents": self.tracer.chrome_events(self.run_id),
            "displayTimeUnit": "ms",
            "otherData": data,
        }

    def write_trace(self, other_data: Optional[Dict] = None) -> Optional[Path]:
        """Write the Chrome trace JSON to the armed ``trace_path``."""
        if not (self.enabled and self.trace_path):
            return None
        payload = self.export(other_data)
        return write_chrome_trace(self.trace_path, payload["traceEvents"],
                                  other_data=payload["otherData"])


# ----------------------------------------------------------------------
# Heartbeat
# ----------------------------------------------------------------------
class Heartbeat:
    """Periodic one-line progress reporter on a daemon thread.

    ``source`` is a zero-arg callable returning a stats dict (keys:
    ``evals``, ``in_flight``, ``idle_fraction``, ``retries``,
    ``store_rows`` — all optional); ``emit`` receives the formatted
    line.  The thread only *reads* counters, so no synchronisation with
    the run loop is needed, and ``stop()`` is prompt (event wait, not
    sleep).
    """

    def __init__(self, interval: float, source: Callable[[], Dict],
                 emit: Optional[Callable[[str], None]] = None,
                 run_id: str = "") -> None:
        self.interval = float(interval)
        self.source = source
        self.emit = emit if emit is not None else self._default_emit
        self.run_id = run_id
        self.beats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_evals = 0
        self._last_time: Optional[float] = None

    @staticmethod
    def _default_emit(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def start(self) -> "Heartbeat":
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop,
                                            name="telemetry-heartbeat",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except Exception:  # noqa: BLE001 - observer must not kill runs
                pass

    def beat(self) -> str:
        """Take one reading and emit it (also called directly by tests)."""
        stats = self.source() or {}
        now = time.perf_counter()
        evals = int(stats.get("evals", 0))
        if self._last_time is None:
            rate = 0.0
        else:
            elapsed = max(now - self._last_time, 1e-9)
            rate = max(evals - self._last_evals, 0) / elapsed
        self._last_evals = evals
        self._last_time = now
        idle = stats.get("idle_fraction")
        idle_text = "n/a" if idle is None else f"{idle:.0%}"
        prefix = f"[run {self.run_id}] " if self.run_id else ""
        line = (f"{prefix}{evals} evals ({rate:.1f}/s)"
                f" | in-flight {int(stats.get('in_flight', 0))}"
                f" | idle {idle_text}"
                f" | retries {int(stats.get('retries', 0))}"
                f" | store rows {int(stats.get('store_rows', 0))}")
        self.beats += 1
        self.emit(line)
        return line


# ----------------------------------------------------------------------
# Trace inspection (`micronas trace summarize`)
# ----------------------------------------------------------------------
def load_trace(path) -> Dict:
    """Read a Chrome trace JSON file written by :meth:`Telemetry.write_trace`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"not a Chrome trace object file: {path}")
    return payload


def _complete_events(payload: Dict) -> List[Dict]:
    return [event for event in payload.get("traceEvents", [])
            if event.get("ph") == "X"]


def _union_seconds(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end]`` intervals, seconds."""
    if not intervals:
        return 0.0
    intervals.sort()
    union = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            union += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    union += cur_end - cur_start
    return union


def span_coverage(payload: Dict) -> float:
    """Fraction of the trace's wall-clock window covered by at least one
    span (union over all tracks).

    The window runs from the earliest span start to the latest span end
    — for a harness run that is first dispatch to last gather, the
    interval the ≥95% acceptance bar is stated over.
    """
    events = _complete_events(payload)
    if not events:
        return 0.0
    intervals = [(event["ts"] / 1e6, (event["ts"] + event["dur"]) / 1e6)
                 for event in events]
    window = (max(end for _, end in intervals)
              - min(start for start, _ in intervals))
    if window <= 0.0:
        return 1.0
    return min(1.0, _union_seconds(intervals) / window)


def summarize_trace(payload: Dict) -> Dict:
    """Phase/span time breakdown of a trace payload.

    Phases are span categories (dispatch/worker/gather/...).  Shares are
    of the wall-clock window, and can sum past 1.0 — phases overlap by
    design (workers compute while the parent waits in gather).
    """
    events = _complete_events(payload)
    other = payload.get("otherData", {})
    if not events:
        return {"run_id": other.get("run_id", ""), "n_spans": 0,
                "wall_seconds": 0.0, "coverage": 0.0,
                "phases": [], "spans": []}
    starts = [event["ts"] / 1e6 for event in events]
    ends = [(event["ts"] + event["dur"]) / 1e6 for event in events]
    wall = max(ends) - min(starts)

    def _rollup(key: Callable[[Dict], str]) -> List[Dict]:
        grouped: Dict[str, Dict] = {}
        for event in events:
            row = grouped.setdefault(
                key(event), {"count": 0, "seconds": 0.0})
            row["count"] += 1
            row["seconds"] += event["dur"] / 1e6
        return [
            {"name": name, "count": row["count"],
             "seconds": row["seconds"],
             "share": (row["seconds"] / wall) if wall > 0 else 0.0}
            for name, row in sorted(grouped.items(),
                                    key=lambda kv: -kv[1]["seconds"])
        ]

    return {
        "run_id": other.get("run_id", ""),
        "n_spans": len(events),
        "wall_seconds": wall,
        "coverage": span_coverage(payload),
        "phases": _rollup(lambda event: event.get("cat", "?")),
        "spans": _rollup(lambda event: event.get("name", "?")),
    }


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LocalTracedWorker",
    "MetricsRegistry",
    "TelemetryLog",
    "Telemetry",
    "TracedWorker",
    "load_trace",
    "span_coverage",
    "summarize_trace",
]
