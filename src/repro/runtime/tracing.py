"""Structured span tracing for the evaluation runtime.

A **span** is one named, timed interval of runtime work — a chunk
dispatch, a worker's proxy compute, a gather wait, a cache merge, a store
flush — with a category (the *phase* it belongs to), the process/thread
that ran it, and free-form correlation arguments (most importantly the
chunk id, the key that ties a dispatch to its worker compute to its
merge).  :class:`Tracer` collects spans in-process with no locks on the
hot path (one list append under the GIL), and exports them as Chrome
``trace_event`` JSON — the format ``chrome://tracing`` and Perfetto load
directly, so a run's timeline can be inspected visually.

Design constraints (shared with :mod:`repro.runtime.telemetry`, which
owns the run-scoped facade):

* **Strict observer.**  Recording a span never changes what the runtime
  computes; a span body's return value passes through untouched, and a
  span records even when its body raises (with the exception type noted),
  so failure timelines stay visible.
* **Cheap when disarmed.**  The disabled path is one attribute check plus
  a shared no-op context manager (:data:`NULL_SPAN`) — no allocation, no
  timestamping — which is what keeps armed-but-unused overhead inside the
  <2% budget ``benchmarks/bench_telemetry.py`` enforces.
* **Cross-process mergeable.**  Timestamps are epoch seconds
  (``time.time()``) so spans recorded by fork workers on the same host —
  shipped back through the flock'd JSONL sidecar in
  :mod:`repro.runtime.telemetry` — land on one coherent timeline with the
  parent's spans; durations come from ``perf_counter`` deltas.

Span *nesting* needs no explicit parent ids: Chrome's trace model nests
complete (``"ph": "X"``) events on the same ``pid``/``tid`` track by
containment, which matches how the runtime's spans actually nest (merge
inside gather, compaction inside flush).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

#: Category names the runtime's built-in spans use.  Free-form strings
#: are legal — these exist so the phase breakdown and tests agree on
#: spelling.
CAT_DISPATCH = "dispatch"
CAT_WORKER = "worker"
CAT_GATHER = "gather"
CAT_MERGE = "merge"
CAT_STORE = "store"
CAT_FAULT = "fault"
CAT_ENGINE = "engine"


class _NullSpan:
    """The shared no-op span: entering, exiting and annotating all do
    nothing.  One instance serves every disarmed call site, so the
    disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **args: object) -> None:
        """Discard correlation arguments (live spans record them)."""


#: The singleton no-op span (what disabled telemetry hands out).
NULL_SPAN = _NullSpan()


class Span:
    """One live span: a context manager that records itself into its
    tracer on exit.

    ``note(**args)`` attaches correlation arguments any time before exit
    (e.g. the number of rows a merge landed, known only at the end).  A
    body that raises still records — with ``error`` set to the exception
    type name — and the exception propagates untouched.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_wall", "_perf")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict] = None) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else {}

    def note(self, **args: object) -> None:
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._wall = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._perf
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer.record(self.name, self.cat, self._wall, duration,
                            args=self.args)
        return False


class Tracer:
    """In-process span collector with Chrome ``trace_event`` export.

    Spans append to a plain list — atomic enough under the GIL for the
    runtime's threading profile (the heartbeat thread only *reads*
    counters; spans are recorded by the thread that ran the work).
    """

    def __init__(self) -> None:
        self._events: List[Dict] = []
        self.pid = os.getpid()

    def __len__(self) -> int:
        return len(self._events)

    def span(self, name: str, cat: str = "runtime",
             args: Optional[Dict] = None) -> Span:
        """A live span context manager recording into this tracer."""
        return Span(self, name, cat, args)

    def record(self, name: str, cat: str, ts: float, duration: float,
               pid: Optional[int] = None, tid: Optional[int] = None,
               args: Optional[Dict] = None) -> None:
        """Record one externally measured span.

        ``ts`` is epoch seconds (``time.time()``), ``duration`` seconds.
        The explicit ``pid``/``tid`` override is how worker-side spans —
        read back from the telemetry sidecar — keep their own track
        identity instead of inheriting the parent's.
        """
        self._events.append({
            "name": name,
            "cat": cat,
            "ts": ts,
            "dur": max(0.0, duration),
            "pid": self.pid if pid is None else pid,
            "tid": threading.get_ident() if tid is None else tid,
            "args": dict(args) if args else {},
        })

    def events(self) -> List[Dict]:
        """Snapshot of raw recorded events (seconds-based, unexported)."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def chrome_events(self, run_id: str = "") -> List[Dict]:
        """Recorded spans as Chrome complete (``"ph": "X"``) events.

        Timestamps/durations convert to integer microseconds (the unit
        the format mandates); every event carries the run id in its
        ``args`` so traces from several processes of one fleet run can be
        concatenated and still correlated.
        """
        events: List[Dict] = []
        pids = {}
        for raw in self._events:
            args = dict(raw["args"])
            if run_id:
                args["run_id"] = run_id
            events.append({
                "name": raw["name"],
                "cat": raw["cat"],
                "ph": "X",
                "ts": int(raw["ts"] * 1e6),
                "dur": max(1, int(raw["dur"] * 1e6)),
                "pid": raw["pid"],
                "tid": raw["tid"],
                "args": args,
            })
            pids.setdefault(raw["pid"], raw["cat"] == CAT_WORKER)
        for pid, is_worker in sorted(pids.items()):
            label = ("micronas-worker" if is_worker and pid != self.pid
                     else "micronas-run")
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"{label} [{pid}]"},
            })
        return events


def write_chrome_trace(path, events: List[Dict],
                       other_data: Optional[Dict] = None) -> Path:
    """Write a Chrome ``trace_event`` JSON object file.

    The object form (``{"traceEvents": [...]}``) is used instead of the
    bare array so run-level metadata — run id, timestamps, the metrics
    snapshot — rides along in ``otherData``, where both Perfetto and
    ``micronas trace summarize`` can find it.
    """
    path = Path(path)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(other_data or {}),
    }
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    os.replace(tmp_path, path)
    return path


__all__ = [
    "CAT_DISPATCH",
    "CAT_ENGINE",
    "CAT_FAULT",
    "CAT_GATHER",
    "CAT_MERGE",
    "CAT_STORE",
    "CAT_WORKER",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "write_chrome_trace",
]
