"""The parallel evaluation runtime.

:mod:`repro.engine` owns *what* trainless evaluation computes (vectorized
proxy kernels, the canonicalization-aware cache, the population API).
This package owns *how* populations get evaluated at scale — without the
engine ever importing it:

1. **Process-pool executor** (:mod:`repro.runtime.pool`) —
   :class:`PopulationExecutor` maps proxy evaluation over the unique
   canonical genotypes (or supernet states) of a population with
   pure-NumPy worker processes, then merges the returned indicator rows
   back into the shared :class:`~repro.engine.cache.IndicatorCache` under
   the engine's exact cache keys.  Workers are deterministic because every
   proxy seeds from the canonical key, so pool results are bit-identical
   to serial evaluation regardless of worker count or completion order.
2. **Persistent store** (:mod:`repro.runtime.store`) —
   :class:`RuntimeStore` serialises the indicator cache (JSON round-trip
   with fingerprint validation, so stale proxy/macro configurations never
   poison results) and keeps a device-keyed latency-LUT store built on
   :meth:`~repro.hardware.profiler.LatencyLUT.save_json`, so repeated
   runs, multi-device Pareto searches and CI all warm-start.
3. **Run harness** (:mod:`repro.runtime.harness`) — one
   :class:`RuntimeConfig` configures engine + pool + store, runs any
   registered search algorithm against them and emits a structured
   :class:`RunReport`.

The composition seam is deliberately thin: ``Engine.evaluate_population``
and every search loop accept an optional ``executor=`` object they only
duck-type (``warm_population`` / ``warm_supernets``), and the engine/
estimator accept a duck-typed ``lut_store``.  Future scaling work (async
evaluators, remote workers, sharding) plugs into the same two hooks.
"""

from repro.runtime.pool import PoolStats, PopulationExecutor
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.runtime.harness import (
    ALGORITHMS,
    RunHarness,
    RunReport,
    RuntimeConfig,
    register_algorithm,
)

__all__ = [
    "PopulationExecutor",
    "PoolStats",
    "RuntimeStore",
    "cache_fingerprint",
    "RuntimeConfig",
    "RunHarness",
    "RunReport",
    "ALGORITHMS",
    "register_algorithm",
]
