"""The parallel evaluation runtime.

:mod:`repro.engine` owns *what* trainless evaluation computes (vectorized
proxy kernels, the canonicalization-aware cache, the population API).
This package owns *how* populations get evaluated at scale — without the
engine ever importing it:

1. **Process-pool executor** (:mod:`repro.runtime.pool`) —
   :class:`PopulationExecutor` maps proxy evaluation over the unique
   canonical genotypes (or supernet states) of a population with
   pure-NumPy worker processes, then merges the returned indicator rows
   back into the shared :class:`~repro.engine.cache.IndicatorCache` under
   the engine's exact cache keys.  Workers are deterministic because every
   proxy seeds from the canonical key, so pool results are bit-identical
   to serial evaluation regardless of worker count or completion order.
2. **Async executor** (:mod:`repro.runtime.async_pool`) —
   :class:`AsyncPopulationExecutor` splits that barrier into DeepHyper-
   style submit/gather halves: per-chunk futures whose indicator rows
   merge into the shared cache **the moment each chunk lands** (via
   :meth:`~repro.engine.core.Engine.merge_indicator_rows`), in any
   completion order, with results bit-identical to serial.  The
   steady-state evolutionary search keeps ``n_workers`` candidates in
   flight on top of it, overlapping mutation with evaluation instead of
   idling at generation barriers.
3. **Persistent store** (:mod:`repro.runtime.store`) —
   :class:`RuntimeStore` serialises the indicator cache (JSON round-trip
   with fingerprint validation, so stale proxy/macro configurations never
   poison results) and keeps a device-keyed latency-LUT store built on
   :meth:`~repro.hardware.profiler.LatencyLUT.save_json`, so repeated
   runs, multi-device Pareto searches and CI all warm-start.
4. **Run harness** (:mod:`repro.runtime.harness`) — one
   :class:`RuntimeConfig` configures engine + pool + store, runs any
   registered search algorithm against them and emits a structured
   :class:`RunReport`.  The harness owns executor lifecycle: pools are
   closed deterministically when the run finishes (or via the harness's
   context manager), never left to GC timing.
5. **Fault tolerance** (:mod:`repro.runtime.faults`) — the failure
   policy the async layers execute: transient-vs-poison classification,
   deterministic retry backoff, per-chunk deadlines, pool respawn after
   worker death, a persistent quarantine ledger for poison candidates,
   and a deterministic fault-injection harness (:class:`FaultPlan`) that
   makes every failure mode replayable in tests.  SIGINT/SIGTERM during
   an async harness run triggers a graceful drain: submission stops,
   in-flight chunks land and flush, and the report comes back marked
   ``interrupted`` with nothing lost.
6. **Telemetry** (:mod:`repro.runtime.telemetry` +
   :mod:`repro.runtime.tracing`) — a strict-observer instrumentation
   substrate: one run-scoped :class:`Telemetry` object threaded through
   harness → executors → pool → store → engine records spans (dispatch,
   worker compute, gather, merge, flush, compaction, backoff, respawn)
   and a lock-free metrics registry; fork workers self-report through a
   ``flock``'d JSONL sidecar.  Exports Chrome ``trace_event`` JSON
   (Perfetto-loadable) plus a metrics snapshot in the
   :class:`RunReport`; disabled by default with <2% armed overhead and
   zero effect on computed rows.

7. **Distributed fleet** (:mod:`repro.runtime.fleet`) — a TCP socket
   broker (:class:`FleetBroker`) leasing picklable chunk payloads to an
   elastic set of worker processes (``micronas fleet worker``), with
   per-lease deadlines, exactly-once re-lease of expired chunks, and
   requeue of chunks a disconnected worker held.  The driver-side
   :class:`FleetPool` implements the ``FuturePool`` submit/gather
   contract, so the async executor, fault taxonomy, quarantine ledger,
   telemetry and graceful drain compose unchanged; workers warm-start
   from — and flush freshly computed rows into — the shared store, so
   late joiners inherit everything already computed.

The composition seam is deliberately thin: ``Engine.evaluate_population``
and every search loop accept an optional ``executor=`` object they only
duck-type (``warm_population`` / ``warm_supernets`` for barrier-style
warming, ``submit_population`` / ``gather`` for event-driven loops), the
engine/estimator accept a duck-typed ``lut_store``, and the async
executor accepts any ``pool=`` honouring the ``FuturePool`` contract —
which is exactly how the fleet transport plugs in.
"""

from repro.runtime.pool import PoolStats, PopulationExecutor
from repro.runtime.async_pool import (
    AsyncPoolStats,
    AsyncPopulationExecutor,
    ChunkGatherError,
    FuturePool,
    GatheredChunk,
)
from repro.runtime.faults import (
    ChunkTimeoutError,
    FaultPlan,
    FaultPolicy,
    QuarantineLedger,
    TransientWorkerError,
    classify_failure,
)
from repro.runtime.fleet import (
    FleetBroker,
    FleetPool,
    FleetWorkerLostError,
    FleetWorkerStats,
    run_worker,
    spawn_local_worker,
)
from repro.runtime.store import RuntimeStore, cache_fingerprint
from repro.runtime.harness import (
    ALGORITHMS,
    DeviceMatrixReport,
    MatrixCell,
    RunHarness,
    RunReport,
    RuntimeConfig,
    register_algorithm,
    run_matrix,
)
from repro.runtime.telemetry import (
    Heartbeat,
    MetricsRegistry,
    Telemetry,
    load_trace,
    span_coverage,
    summarize_trace,
)
from repro.runtime.tracing import Tracer, write_chrome_trace

__all__ = [
    "PopulationExecutor",
    "PoolStats",
    "AsyncPopulationExecutor",
    "AsyncPoolStats",
    "ChunkGatherError",
    "ChunkTimeoutError",
    "FaultPlan",
    "FaultPolicy",
    "FuturePool",
    "GatheredChunk",
    "QuarantineLedger",
    "TransientWorkerError",
    "classify_failure",
    "FleetBroker",
    "FleetPool",
    "FleetWorkerLostError",
    "FleetWorkerStats",
    "run_worker",
    "spawn_local_worker",
    "RuntimeStore",
    "cache_fingerprint",
    "RuntimeConfig",
    "RunHarness",
    "RunReport",
    "MatrixCell",
    "DeviceMatrixReport",
    "ALGORITHMS",
    "register_algorithm",
    "run_matrix",
    "Heartbeat",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "load_trace",
    "span_coverage",
    "summarize_trace",
    "write_chrome_trace",
]
