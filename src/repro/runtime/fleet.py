"""Distributed evaluation fleet: a socket broker over the async seam.

The async runtime (PR 3) deliberately left one seam open: the
:class:`~repro.runtime.async_pool.AsyncPopulationExecutor` talks to its
transport only through the ``FuturePool`` submit/gather contract, and its
chunk workers are plain picklable callables.  This module plugs a
multi-process / multi-host transport into that seam:

* :class:`FleetBroker` — a TCP socket broker living in the driver
  process.  Workers *register*, then *lease* chunk payloads one at a
  time; each lease carries a deadline, and a chunk whose lease expires
  is **re-leased exactly once** before it completes with a
  :class:`~repro.runtime.faults.ChunkTimeoutError` (classified
  *transient*, so the executor's :class:`~repro.runtime.faults.
  FaultPolicy` retries it under the normal budget).  A worker that
  disconnects mid-lease has its chunk requeued (the fleet analogue of
  the fork pool's respawn-and-resubmit); past the per-task disconnect
  budget the chunk completes with :class:`FleetWorkerLostError` — a
  ``BrokenExecutor`` subclass, so :func:`~repro.runtime.faults.
  classify_failure` maps it to ``worker-lost`` exactly like a dead fork
  pool.
* :class:`FleetPool` — the driver-side transport implementing the
  ``FuturePool`` duck type (``submit`` / ``gather`` in completion order /
  ``record_busy`` / ``idle_fraction`` / ``timeouts`` / ``respawns`` /
  ``close``), so the executor, fault taxonomy, quarantine ledger,
  telemetry spans and graceful drain all compose unchanged.  Completed
  chunks additionally emit ``fleet_lease`` (queue wait) and
  ``fleet_remote_compute`` (worker-reported duration) spans, correlated
  with the dispatch/merge spans by chunk id.
* :func:`run_worker` — the worker client loop behind ``micronas fleet
  worker --connect HOST:PORT --store DIR``: lease, evaluate through the
  shipped picklable chunk worker, report back, repeat until the broker
  says *drain*.  With a ``--store`` the worker **warm-starts from the
  shared format-2 store** before computing (index-mode point lookups, so
  a late joiner inherits everything already computed in O(chunk) reads)
  and **flushes freshly computed rows back** under the store's existing
  per-shard flocks — the store is the fleet's shared medium, and
  duplicate appends from racing workers are harmless under the store's
  last-write-wins replay because the determinism contract makes the
  values bit-identical.

**Elastic membership.**  Workers may join and leave (or be killed) at
any point mid-search: a lost worker's leased chunks are requeued and
recomputed bit-identically by whoever leases them next, straggler
results for chunks that already completed elsewhere are counted and
dropped (first result wins; determinism makes the copies equal), and
nothing a worker already flushed to the store is ever lost.  The
``fleet``-marked tests pin the headline property: SIGKILL a worker
mid-lease, join another mid-run, and the surviving rows are
bit-identical to a fault-free serial run.

**Security.**  The wire format is length-prefixed :mod:`pickle` —
deserializing a pickle executes code, so the broker must only ever be
reachable from trusted hosts.  It binds ``127.0.0.1`` by default; an
optional shared ``token`` rejects accidental cross-talk between fleets
sharing a network, but it is an identity check, not an authentication
scheme.  Do not expose the broker port to untrusted networks.

Supernet chunk payloads carry no macro config, so workers cannot derive
the store fingerprint for them: they are evaluated directly (still
bit-identical — only the warm-start shortcut is skipped).
"""

from __future__ import annotations

import contextlib
import os
import pickle
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from dataclasses import astuple, dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.engine.cache import IndicatorCache
from repro.errors import SearchError
from repro.proxies.base import ProxyConfig
from repro.runtime.async_pool import TaskResult
from repro.runtime.faults import ChunkTimeoutError
from repro.runtime.pool import genotype_indicator_keys
from repro.runtime.telemetry import Telemetry
from repro.runtime.tracing import CAT_DISPATCH, CAT_WORKER
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class FleetProtocolError(SearchError):
    """A peer spoke something that is not the fleet wire protocol."""


class FleetRemoteError(SearchError):
    """A worker-side failure whose original exception could not travel.

    Raised driver-side in place of an unpicklable worker exception; the
    original type and message ride along in the text.  Classified
    *poison* by the fault taxonomy — exactly what a deterministic
    compute error deserves (transient infrastructure errors
    (``OSError`` etc.) always pickle, so they keep their types).
    """


class FleetWorkerLostError(BrokenExecutor, SearchError):
    """A chunk's worker disconnected and the requeue budget is spent.

    Subclasses ``BrokenExecutor`` so :func:`~repro.runtime.faults.
    classify_failure` maps it to ``worker-lost`` — the same label a dead
    fork pool earns once its respawn budget runs out.
    """


# ----------------------------------------------------------------------
# Wire protocol: 4-byte big-endian length prefix + pickled dict
# ----------------------------------------------------------------------
#: Upper bound on one wire message (a chunk payload is a handful of
#: genotype tuples + configs — far below this; a length past it means a
#: desynchronized or hostile peer).
_MSG_LIMIT = 64 << 20

#: How long a broker-side lease request may block waiting for work
#: before replying ``idle`` (server-side blocking keeps dispatch latency
#: low without fast client polling).
_LEASE_BLOCK_SECONDS = 0.05

#: Granularity of the broker's lease-expiry sweep while the driver
#: waits in gather (mirrors ``FuturePool._POLL_SECONDS``).
_SWEEP_SECONDS = 0.05


def _send_msg(sock: socket.socket, message: Dict) -> None:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack(">I", len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int,
                should_stop: Optional[Callable[[], bool]] = None) -> bytes:
    """Read exactly ``n`` bytes; socket timeouts just re-poll (so a
    broker handler can notice shutdown via ``should_stop`` without ever
    losing partial-message bytes)."""
    buf = bytearray()
    while len(buf) < n:
        if should_stop is not None and should_stop():
            raise EOFError("broker shutting down")
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            if should_stop is None:
                raise
            continue
        if not chunk:
            raise EOFError("connection closed mid-message")
        buf.extend(chunk)
    return bytes(buf)


def _recv_msg(sock: socket.socket,
              should_stop: Optional[Callable[[], bool]] = None) -> Dict:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4, should_stop))
    if length > _MSG_LIMIT:
        raise FleetProtocolError(
            f"wire message of {length} bytes exceeds the "
            f"{_MSG_LIMIT}-byte limit (desynchronized peer?)")
    message = pickle.loads(_recv_exact(sock, length, should_stop))
    if not isinstance(message, dict) or "op" not in message:
        raise FleetProtocolError("wire message is not an op dict")
    return message


def parse_address(text: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` (the CLI/env address format)."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise SearchError(f"fleet address must be HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SearchError(f"fleet address port must be an integer, "
                          f"got {text!r}")


# ----------------------------------------------------------------------
# Broker
# ----------------------------------------------------------------------
_QUEUED = "queued"
_LEASED = "leased"
_DONE = "done"


class _FleetTask:
    """One submitted chunk as the broker tracks it."""

    __slots__ = ("task_id", "worker_fn", "payload", "tag", "state",
                 "leased_to", "deadline", "expiries", "disconnects",
                 "queued_wall", "leased_wall", "done_wall",
                 "compute_seconds", "value", "error")

    def __init__(self, task_id: int, worker_fn: Callable, payload: object,
                 tag: object) -> None:
        self.task_id = task_id
        self.worker_fn = worker_fn
        self.payload = payload
        self.tag = tag
        self.state = _QUEUED
        self.leased_to: Optional[int] = None
        self.deadline: Optional[float] = None  # monotonic seconds
        self.expiries = 0
        self.disconnects = 0
        self.queued_wall = time.time()
        self.leased_wall: Optional[float] = None
        self.done_wall: Optional[float] = None
        self.compute_seconds: Optional[float] = None
        self.value: object = None
        self.error: Optional[BaseException] = None


class _WorkerSession:
    """One registered worker connection (broker-side bookkeeping)."""

    __slots__ = ("worker_id", "pid", "address", "leased", "graceful")

    def __init__(self, worker_id: int, pid: int, address: str) -> None:
        self.worker_id = worker_id
        self.pid = pid
        self.address = address
        self.leased: set = set()   # task ids currently leased here
        self.graceful = False      # sent "leave" before disconnecting


class FleetBroker:
    """TCP chunk broker: registration, leasing, expiry, elastic workers.

    Runs entirely on daemon threads inside the driver process — one
    accept loop plus one handler per connection; all shared state lives
    behind one lock.  The driver thread interacts through
    :meth:`submit` and :meth:`wait_completed` (which also runs the
    lease-expiry sweep, so expiries are detected even when no worker
    traffic arrives — the hung-worker case).

    Lease semantics: a leased chunk whose deadline passes is requeued
    (to the queue *front*, so recovery latency stays low) exactly once;
    the second expiry completes it with
    :class:`~repro.runtime.faults.ChunkTimeoutError`.  A worker
    disconnect requeues its leased chunks while each chunk's disconnect
    count stays within ``max_task_disconnects``; past the budget the
    chunk completes with :class:`FleetWorkerLostError`.  Results for
    chunks that already completed elsewhere (stragglers: the first
    expiry requeued the chunk, then the original worker finished after
    all) are counted and dropped — first result wins, and the
    determinism contract makes the dropped copy bit-identical anyway.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_seconds: Optional[float] = None,
                 max_task_disconnects: int = 3,
                 token: str = "") -> None:
        if lease_seconds is not None and lease_seconds <= 0:
            raise SearchError("lease_seconds must be positive (or None)")
        self.lease_seconds = lease_seconds
        self.max_task_disconnects = max_task_disconnects
        self.token = token
        self._listener = socket.create_server((host, port))
        bound = self._listener.getsockname()
        self.host, self.port = bound[0], bound[1]
        self._lock = threading.Lock()
        self._queue_cv = threading.Condition(self._lock)
        self._completed_cv = threading.Condition(self._lock)
        self._tasks: Dict[int, _FleetTask] = {}
        self._queue: Deque[int] = deque()
        self._completed: Deque[_FleetTask] = deque()
        self._workers: Dict[int, _WorkerSession] = {}
        self._next_task_id = 0
        self._next_worker_id = 0
        self._closing = False
        self._draining = False
        # Counters (read for stats/benchmarks; guarded by self._lock).
        self.workers_joined = 0
        self.workers_lost = 0       # non-graceful disconnects
        self.leases = 0
        self.lease_expiries = 0     # expiry events (requeue or fail)
        self.expired_tasks = 0      # chunks failed with ChunkTimeoutError
        self.requeues = 0           # chunks put back after a lost worker
        self.lost_tasks = 0         # chunks failed with FleetWorkerLostError
        self.stragglers = 0         # results for already-completed chunks
        self.rejected = 0           # registrations refused (bad token)
        self._threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-broker-accept",
            daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """``HOST:PORT`` as workers should pass to ``--connect``."""
        return f"{self.host}:{self.port}"

    @property
    def num_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def num_pending(self) -> int:
        with self._lock:
            return sum(1 for task in self._tasks.values()
                       if task.state != _DONE)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers_joined": self.workers_joined,
                "workers_lost": self.workers_lost,
                "leases": self.leases,
                "lease_expiries": self.lease_expiries,
                "expired_tasks": self.expired_tasks,
                "requeues": self.requeues,
                "lost_tasks": self.lost_tasks,
                "stragglers": self.stragglers,
            }

    # ------------------------------------------------------------------
    # Driver-side API
    # ------------------------------------------------------------------
    def submit(self, worker_fn: Callable, payload: object,
               tag: object = None) -> int:
        """Queue one chunk for leasing; returns its task id.  Never
        blocks (workers pull — nothing is pushed)."""
        with self._lock:
            task_id = self._next_task_id
            self._next_task_id += 1
            task = _FleetTask(task_id, worker_fn, payload, tag)
            self._tasks[task_id] = task
            self._queue.append(task_id)
            self._queue_cv.notify()
        return task_id

    def wait_completed(self, timeout: float = _SWEEP_SECONDS
                       ) -> List[_FleetTask]:
        """Completed tasks since the last call (possibly empty), waiting
        up to ``timeout`` for one to land.  Also runs the lease-expiry
        sweep, so calling this in a loop *is* the broker's clock."""
        with self._completed_cv:
            self._sweep_expired_locked()
            if not self._completed and not self._closing:
                self._completed_cv.wait(min(timeout, _SWEEP_SECONDS))
                self._sweep_expired_locked()
            out = list(self._completed)
            self._completed.clear()
            return out

    def drain(self) -> None:
        """Tell workers to exit once no queued chunks remain (leased
        chunks still report back first — drain is graceful)."""
        with self._lock:
            self._draining = True
            self._queue_cv.notify_all()

    def close(self) -> None:
        """Shut the broker down now (idempotent, never raises).  Workers
        see EOF on their next request and exit their loops."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            self._draining = True
            self._queue_cv.notify_all()
            self._completed_cv.notify_all()
        with contextlib.suppress(OSError):
            self._listener.close()
        self._accept_thread.join(timeout=2.0)
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    def __enter__(self) -> "FleetBroker":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internal mechanics (all *_locked helpers assume self._lock held)
    # ------------------------------------------------------------------
    def _complete_locked(self, task: _FleetTask, value: object = None,
                         error: Optional[BaseException] = None) -> None:
        if task.state == _LEASED and task.leased_to is not None:
            session = self._workers.get(task.leased_to)
            if session is not None:
                session.leased.discard(task.task_id)
        if task.state == _QUEUED:
            with contextlib.suppress(ValueError):
                self._queue.remove(task.task_id)
        task.state = _DONE
        task.leased_to = None
        task.value = value
        task.error = error
        task.done_wall = time.time()
        self._completed.append(task)
        self._completed_cv.notify_all()

    def _requeue_locked(self, task: _FleetTask) -> None:
        """Back to the queue front: a recovered chunk has already waited
        a full lease, so it should not also wait behind the backlog."""
        if task.leased_to is not None:
            session = self._workers.get(task.leased_to)
            if session is not None:
                session.leased.discard(task.task_id)
        task.state = _QUEUED
        task.leased_to = None
        task.deadline = None
        self._queue.appendleft(task.task_id)
        self._queue_cv.notify()

    def _sweep_expired_locked(self) -> None:
        if self.lease_seconds is None:
            return
        now = time.monotonic()
        for task in list(self._tasks.values()):
            if (task.state != _LEASED or task.deadline is None
                    or now < task.deadline):
                continue
            task.expiries += 1
            self.lease_expiries += 1
            if task.expiries <= 1:
                # Re-lease exactly once: the first expiry may be a slow
                # worker, not a dead one.
                self._requeue_locked(task)
            else:
                self.expired_tasks += 1
                self._complete_locked(task, error=ChunkTimeoutError(
                    f"chunk lease expired twice "
                    f"({self.lease_seconds:g}s each)"))

    def _lease_locked(self, session: _WorkerSession
                      ) -> Optional[_FleetTask]:
        self._sweep_expired_locked()
        while self._queue:
            task = self._tasks.get(self._queue.popleft())
            if task is None or task.state != _QUEUED:
                continue  # completed by a straggler while queued
            task.state = _LEASED
            task.leased_to = session.worker_id
            task.leased_wall = time.time()
            task.deadline = (time.monotonic() + self.lease_seconds
                             if self.lease_seconds is not None else None)
            session.leased.add(task.task_id)
            self.leases += 1
            return task
        return None

    def _drop_worker_locked(self, session: _WorkerSession) -> None:
        self._workers.pop(session.worker_id, None)
        if not session.graceful:
            self.workers_lost += 1
        for task_id in list(session.leased):
            task = self._tasks.get(task_id)
            if (task is None or task.state != _LEASED
                    or task.leased_to != session.worker_id):
                continue
            task.disconnects += 1
            if task.disconnects <= self.max_task_disconnects:
                self.requeues += 1
                self._requeue_locked(task)
            else:
                self.lost_tasks += 1
                self._complete_locked(task, error=FleetWorkerLostError(
                    f"chunk lost {task.disconnects} workers mid-lease "
                    f"(budget {self.max_task_disconnects})"))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        self._listener.settimeout(0.25)
        while not self._closing:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(
                target=self._serve, args=(conn, f"{addr[0]}:{addr[1]}"),
                name="fleet-broker-conn", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket, address: str) -> None:
        session: Optional[_WorkerSession] = None
        conn.settimeout(0.25)
        should_stop = lambda: self._closing  # noqa: E731
        try:
            message = _recv_msg(conn, should_stop)
            if (message.get("op") != "register"
                    or message.get("token", "") != self.token):
                with self._lock:
                    self.rejected += 1
                _send_msg(conn, {"op": "reject",
                                 "reason": "bad token or handshake"})
                return
            with self._lock:
                session = _WorkerSession(self._next_worker_id,
                                         int(message.get("pid", 0)),
                                         address)
                self._next_worker_id += 1
                self._workers[session.worker_id] = session
                self.workers_joined += 1
            _send_msg(conn, {"op": "welcome",
                             "worker_id": session.worker_id})
            while not self._closing:
                message = _recv_msg(conn, should_stop)
                op = message.get("op")
                if op == "lease":
                    self._handle_lease(conn, session)
                elif op == "result":
                    self._handle_result(session, message)
                    _send_msg(conn, {"op": "ok"})
                elif op == "error":
                    self._handle_error(session, message)
                    _send_msg(conn, {"op": "ok"})
                elif op == "leave":
                    session.graceful = True
                    _send_msg(conn, {"op": "ok"})
                    return
                else:
                    raise FleetProtocolError(f"unknown worker op {op!r}")
        except (EOFError, OSError, FleetProtocolError,
                pickle.UnpicklingError, struct.error):
            pass  # disconnect path below requeues anything leased
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            if session is not None:
                with self._lock:
                    self._drop_worker_locked(session)

    def _handle_lease(self, conn: socket.socket,
                      session: _WorkerSession) -> None:
        deadline = time.monotonic() + _LEASE_BLOCK_SECONDS
        with self._lock:
            task = self._lease_locked(session)
            while task is None and not self._closing:
                if self._draining and not self._queue:
                    # The worker will exit on this reply; its eventual
                    # disconnect is retirement, not a loss.
                    session.graceful = True
                    _send_msg(conn, {"op": "drain"})
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    _send_msg(conn, {"op": "idle"})
                    return
                self._queue_cv.wait(remaining)
                task = self._lease_locked(session)
            if task is None:  # closing
                session.graceful = True
                _send_msg(conn, {"op": "drain"})
                return
        try:
            _send_msg(conn, {
                "op": "task",
                "task_id": task.task_id,
                "worker": task.worker_fn,
                "payload": task.payload,
                "lease_seconds": self.lease_seconds,
            })
        except Exception:
            # The reply failed after the lease was granted: put the
            # chunk straight back so it is not stuck until expiry.
            with self._lock:
                if task.state == _LEASED \
                        and task.leased_to == session.worker_id:
                    self._requeue_locked(task)
            raise

    def _handle_result(self, session: _WorkerSession,
                       message: Dict) -> None:
        value = message.get("value")
        with self._lock:
            task = self._tasks.get(message.get("task_id"))
            if task is None or task.state == _DONE:
                self.stragglers += 1
                return
            if isinstance(value, tuple) and len(value) == 2 \
                    and isinstance(value[1], (int, float)):
                task.compute_seconds = float(value[1])
            self._complete_locked(task, value=value)

    def _handle_error(self, session: _WorkerSession,
                      message: Dict) -> None:
        error = message.get("error")
        if not isinstance(error, BaseException):
            error = FleetRemoteError(f"malformed worker error: {error!r}")
        with self._lock:
            task = self._tasks.get(message.get("task_id"))
            if task is None or task.state == _DONE:
                self.stragglers += 1
                return
            self._complete_locked(task, error=error)


# ----------------------------------------------------------------------
# Driver-side transport: the FuturePool duck type over a broker
# ----------------------------------------------------------------------
class FleetPool:
    """``FuturePool``-contract transport backed by a :class:`FleetBroker`.

    Drop this in as ``AsyncPopulationExecutor(pool=FleetPool(...))`` and
    the executor's scheduling, dedupe, fault policy, quarantine and
    drain logic run unchanged — chunks just travel over TCP instead of a
    fork pipe.  ``mode`` is ``"fleet"``; the executor ships workers with
    the cross-process telemetry sidecar (not the in-process tracer), the
    same as fork mode.

    ``n_workers`` is the *expected* worker count (used for utilisation
    capacity in :meth:`idle_fraction` and reporting); actual membership
    is elastic — ``broker.num_workers`` is live.  ``timeouts`` counts
    lease-expiry events and ``respawns`` counts lost-worker recoveries,
    the fleet analogues of the fork pool's deadline expiries and
    backend respawns.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 n_workers: int = 1,
                 lease_seconds: Optional[float] = None,
                 max_task_disconnects: int = 3,
                 token: str = "",
                 broker: Optional[FleetBroker] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        if n_workers < 1:
            raise SearchError("n_workers must be >= 1")
        self.broker = broker if broker is not None else FleetBroker(
            host=host, port=port, lease_seconds=lease_seconds,
            max_task_disconnects=max_task_disconnects, token=token)
        self._owns_broker = broker is None
        self.mode = "fleet"
        self.n_workers = n_workers
        self.chunk_timeout = self.broker.lease_seconds
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        self._pending: Dict[int, object] = {}  # task id -> tag
        self._local_procs: List = []
        self.timeouts = 0
        self.respawns = 0
        self.busy_seconds = 0.0
        self._busy_reported = False
        self._first_submit: Optional[float] = None
        self._last_gather: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.broker.address

    def spawn_local_workers(self, n: int, store_dir=None,
                            read_mode: str = "index",
                            poll_seconds: float = 0.05) -> List:
        """Fork ``n`` local worker processes against this pool's broker
        (the single-host fan-out path the benchmarks and the harness's
        ``fleet_workers`` knob use); returns the started processes.
        They exit on drain/close; :meth:`close` reaps them."""
        procs = [spawn_local_worker(self.address, store_dir=store_dir,
                                    token=self.broker.token,
                                    read_mode=read_mode,
                                    poll_seconds=poll_seconds)
                 for _ in range(n)]
        self._local_procs.extend(procs)
        return procs

    # ------------------------------------------------------------------
    def submit(self, worker: Callable, payload: object,
               tag: object = None) -> int:
        if self._first_submit is None:
            self._first_submit = time.perf_counter()
        task_id = self.broker.submit(worker, payload, tag=tag)
        self._pending[task_id] = tag
        if self.telemetry.enabled:
            self.telemetry.gauge("pool.queue_depth", len(self._pending))
            self.telemetry.observe("queue_depth", len(self._pending))
        return task_id

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def _collect(self, task: _FleetTask,
                 results: List[TaskResult]) -> None:
        tag = self._pending.pop(task.task_id, task.tag)
        if isinstance(task.error, ChunkTimeoutError):
            self.timeouts += 1
            self.telemetry.count("pool.timeouts")
        if self.telemetry.enabled:
            chunk = getattr(tag, "chunk_id", None)
            args = {"chunk": chunk, "task": task.task_id}
            if task.leased_wall is not None:
                # Queue wait: submit (queued) -> lease grant.
                self.telemetry.tracer.record(
                    "fleet_lease", CAT_DISPATCH, task.queued_wall,
                    max(0.0, task.leased_wall - task.queued_wall),
                    args=args)
            if task.compute_seconds and task.done_wall is not None:
                # Worker-reported compute, anchored at result arrival.
                self.telemetry.tracer.record(
                    "fleet_remote_compute", CAT_WORKER,
                    task.done_wall - task.compute_seconds,
                    task.compute_seconds, args=args)
            self.telemetry.count("fleet.chunks_completed")
            if task.error is not None:
                self.telemetry.count("fleet.chunk_errors")
        results.append(TaskResult(task.task_id, tag, task.value,
                                  task.error))

    def gather(self, k: int = 1) -> List[TaskResult]:
        """Block until at least ``k`` pending chunks complete; returns
        them in completion order.  The wait loop doubles as the broker's
        lease-expiry clock.  Blocks until workers connect when none are
        — elastic membership means "no workers right now" is a normal
        transient state, not an error."""
        if k <= 0:
            raise SearchError("gather needs k >= 1 (use gather_all)")
        k = min(k, len(self._pending))
        if k == 0:
            return []
        results: List[TaskResult] = []
        while len(results) < k and self._pending and not self._closed:
            for task in self.broker.wait_completed():
                self._collect(task, results)
        self.respawns = self.broker.requeues + self.broker.lost_tasks
        self._last_gather = time.perf_counter()
        return results

    def gather_all(self) -> List[TaskResult]:
        if not self._pending:
            return []
        return self.gather(len(self._pending))

    # ------------------------------------------------------------------
    def record_busy(self, seconds: float) -> None:
        self.busy_seconds += seconds
        self._busy_reported = True

    def span_seconds(self) -> float:
        if self._first_submit is None or self._last_gather is None:
            return 0.0
        return max(0.0, self._last_gather - self._first_submit)

    def idle_fraction(self) -> Optional[float]:
        if not self._busy_reported:
            return None
        capacity = self.n_workers * self.span_seconds()
        if capacity <= 0.0:
            return None
        return max(0.0, 1.0 - self.busy_seconds / capacity)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain + shut the broker down (idempotent, never raises).
        Local workers spawned through :meth:`spawn_local_workers` get a
        short grace period to exit on drain before being terminated."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        try:
            self.broker.drain()
            deadline = time.monotonic() + 2.0
            for proc in self._local_procs:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    with contextlib.suppress(Exception):
                        proc.terminate()
                        proc.join(timeout=1.0)
            if self._owns_broker:
                self.broker.close()
        except Exception:
            pass  # cleanup must not mask the error that triggered it

    def __enter__(self) -> "FleetPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker client loop
# ----------------------------------------------------------------------
@dataclass
class FleetWorkerStats:
    """What one :func:`run_worker` loop did (its return value)."""

    worker_id: int = -1
    chunks: int = 0
    rows: int = 0
    errors: int = 0
    busy_seconds: float = 0.0
    store_rows_loaded: int = 0     # warm-start rows served from the store
    store_rows_flushed: int = 0    # freshly computed rows appended
    drained: bool = False          # exited on the broker's drain signal

    def to_dict(self) -> Dict:
        return {
            "worker_id": self.worker_id,
            "chunks": self.chunks,
            "rows": self.rows,
            "errors": self.errors,
            "busy_seconds": self.busy_seconds,
            "store_rows_loaded": self.store_rows_loaded,
            "store_rows_flushed": self.store_rows_flushed,
            "drained": self.drained,
        }


#: Indicator names in genotype chunk needs-mask order (the order
#: ``_evaluate_genotype_chunk`` consumes).
_GENOTYPE_NAMES = ("ntk", "linear_regions", "flops")


def _genotype_payload(payload: object) -> bool:
    """Shape check: is this a genotype chunk payload the warm-start path
    understands?  Anything else (supernet chunks, exotic injected
    workers) is evaluated as-is — warm start is an optimisation, never a
    requirement."""
    return (isinstance(payload, tuple) and len(payload) == 3
            and isinstance(payload[1], ProxyConfig)
            and isinstance(payload[2], MacroConfig)
            and isinstance(payload[0], tuple)
            and all(isinstance(item, tuple) and len(item) == 2
                    and len(item[1]) == len(_GENOTYPE_NAMES)
                    for item in payload[0]))


def _warm_start_evaluate(worker_fn: Callable, payload: Tuple, store,
                         fingerprint_cache: Dict, read_mode: str,
                         stats: FleetWorkerStats) -> Tuple:
    """Evaluate one genotype chunk with the store as warm-start medium:
    rows the shared store already holds are *read* (index-mode point
    lookups) instead of recomputed, the rest are computed through the
    shipped worker and flushed back under the store's shard flocks.
    The combined result is bit-identical to a cold evaluation — stored
    rows were produced by the same deterministic proxies."""
    from repro.runtime.store import cache_fingerprint

    items, proxy_config, macro_config = payload
    finger_key = (astuple(proxy_config), astuple(macro_config))
    fingerprint = fingerprint_cache.get(finger_key)
    if fingerprint is None:
        fingerprint = cache_fingerprint(proxy_config, macro_config)
        fingerprint_cache[finger_key] = fingerprint
    proxy_key, macro_key = finger_key
    per_item = []
    wanted: List[Tuple] = []
    for ops, needs in items:
        index = Genotype(tuple(ops)).to_index()
        keys = genotype_indicator_keys(index, proxy_key, macro_key)
        per_item.append((ops, needs, index, keys))
        wanted.extend(keys[name]
                      for name, need in zip(_GENOTYPE_NAMES, needs)
                      if need)
    scratch = IndicatorCache()
    if wanted:
        stats.store_rows_loaded += store.load_cache_into(
            scratch, fingerprint, keys=wanted, read_mode=read_mode)
    stored_rows: List[Tuple] = []
    reduced: List[Tuple] = []
    for ops, needs, index, keys in per_item:
        hit_row = {}
        remaining = []
        for name, need in zip(_GENOTYPE_NAMES, needs):
            if need and keys[name] in scratch:
                hit_row[name] = scratch.get(keys[name])
                remaining.append(False)
            else:
                remaining.append(need)
        if hit_row:
            stored_rows.append((index, hit_row))
        if any(remaining):
            reduced.append((ops, tuple(remaining)))
    if not reduced:
        return stored_rows, 0.0
    computed_rows, seconds = worker_fn(
        (tuple(reduced), proxy_config, macro_config))
    for index, row in computed_rows:
        keys = genotype_indicator_keys(index, proxy_key, macro_key)
        for name, value in row.items():
            scratch.put(keys[name], value)
    # Only the freshly computed rows are dirty (warm-start loads were
    # marked clean), so this append is O(computed delta) and runs under
    # the store's per-shard flocks like every other writer.
    stats.store_rows_flushed += store.save_cache(scratch, fingerprint)
    return stored_rows + list(computed_rows), seconds


def _picklable_error(error: BaseException) -> BaseException:
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return FleetRemoteError(
            f"unpicklable worker exception "
            f"{type(error).__name__}: {error!r}")


def run_worker(connect: str, store_dir=None, token: str = "",
               poll_seconds: float = 0.2, read_mode: str = "index",
               max_chunks: Optional[int] = None,
               socket_timeout: float = 60.0) -> FleetWorkerStats:
    """The fleet worker client loop (``micronas fleet worker``).

    Connects to the broker at ``connect`` (``HOST:PORT``), registers,
    then leases chunks until the broker drains: each chunk is evaluated
    through the shipped picklable worker — warm-started from (and
    flushed back to) the shared store when ``store_dir`` is given and
    the payload is a genotype chunk — and its result reported back.
    ``max_chunks`` caps the chunks this worker will process before
    leaving gracefully (elastic-membership tests use it to script a
    mid-run leave).  Returns the loop's :class:`FleetWorkerStats`.

    Worker exceptions are reported to the broker (driving the driver's
    fault taxonomy) and never kill the loop; a broker that vanishes
    (driver exit) ends the loop via the socket error instead.
    """
    host, port = parse_address(connect)
    store = None
    if store_dir is not None:
        from repro.runtime.store import RuntimeStore

        store = RuntimeStore(store_dir)
    stats = FleetWorkerStats()
    fingerprint_cache: Dict = {}
    sock = socket.create_connection((host, port), timeout=socket_timeout)
    try:
        sock.settimeout(socket_timeout)
        _send_msg(sock, {"op": "register", "token": token,
                         "pid": os.getpid()})
        reply = _recv_msg(sock)
        if reply.get("op") != "welcome":
            raise FleetProtocolError(
                f"broker rejected registration: "
                f"{reply.get('reason', reply)!r}")
        stats.worker_id = int(reply["worker_id"])
        while True:
            if max_chunks is not None and stats.chunks >= max_chunks:
                _send_msg(sock, {"op": "leave",
                                 "worker_id": stats.worker_id})
                _recv_msg(sock)  # the closing "ok"
                break
            _send_msg(sock, {"op": "lease", "worker_id": stats.worker_id})
            reply = _recv_msg(sock)
            op = reply.get("op")
            if op == "idle":
                time.sleep(poll_seconds)
                continue
            if op == "drain":
                stats.drained = True
                break
            if op != "task":
                raise FleetProtocolError(f"unexpected broker op {op!r}")
            task_id = reply["task_id"]
            worker_fn, payload = reply["worker"], reply["payload"]
            started = time.perf_counter()
            try:
                if store is not None and _genotype_payload(payload):
                    value = _warm_start_evaluate(
                        worker_fn, payload, store, fingerprint_cache,
                        read_mode, stats)
                else:
                    value = worker_fn(payload)
            except Exception as exc:
                stats.errors += 1
                stats.busy_seconds += time.perf_counter() - started
                _send_msg(sock, {"op": "error",
                                 "worker_id": stats.worker_id,
                                 "task_id": task_id,
                                 "error": _picklable_error(exc)})
            else:
                stats.chunks += 1
                stats.busy_seconds += time.perf_counter() - started
                if isinstance(value, tuple) and len(value) == 2:
                    try:
                        stats.rows += len(value[0])
                    except TypeError:
                        pass
                _send_msg(sock, {"op": "result",
                                 "worker_id": stats.worker_id,
                                 "task_id": task_id,
                                 "value": value})
            _recv_msg(sock)  # the broker's "ok" acknowledgement
    finally:
        with contextlib.suppress(OSError):
            sock.close()
    return stats


def _local_worker_main(connect: str, store_dir, token: str,
                       read_mode: str, poll_seconds: float) -> None:
    """Entry point of a forked local worker process."""
    try:
        run_worker(connect, store_dir=store_dir, token=token,
                   read_mode=read_mode, poll_seconds=poll_seconds)
    except Exception:
        os._exit(13)  # broker gone / protocol error: just die quietly


def spawn_local_worker(connect: str, store_dir=None, token: str = "",
                       read_mode: str = "index",
                       poll_seconds: float = 0.05):
    """Fork one local worker process running :func:`run_worker` against
    ``connect``; returns the started ``multiprocessing.Process``.  Fork
    start method (the pure-NumPy substrate ships by inheritance, like
    the fork pool's workers); callers on fork-less platforms should use
    ``micronas fleet worker`` subprocesses instead."""
    import multiprocessing

    process = multiprocessing.get_context("fork").Process(
        target=_local_worker_main,
        args=(connect, store_dir, token, read_mode, poll_seconds),
        daemon=True, name="fleet-worker")
    process.start()
    return process


__all__ = [
    "FleetBroker",
    "FleetPool",
    "FleetProtocolError",
    "FleetRemoteError",
    "FleetWorkerLostError",
    "FleetWorkerStats",
    "parse_address",
    "run_worker",
    "spawn_local_worker",
]
