"""Process-pool fan-out for population evaluation.

:class:`PopulationExecutor` parallelises the expensive part of
``Engine.evaluate_population`` — computing indicators for the *unique
canonical* survivors of a population — across worker processes:

* **Determinism.**  Every proxy seeds its RNG from the canonical key
  (``stable_seed(tag, config.seed, repeat, canonical_index)``), so a
  worker computes bit-for-bit the value the serial path would.  Results
  are merged into the shared :class:`~repro.engine.cache.IndicatorCache`
  under the engine's exact cache keys, and the engine then assembles the
  table serially in request order — worker count, chunking and completion
  order can never reorder or re-dedupe rows.
* **Chunked dispatch.**  Candidates ship in chunks of ``chunk_size`` so
  per-task pickling overhead amortises over several proxy evaluations.
* **Serial fallback.**  ``n_workers=1``, platforms without ``fork`` (the
  only start method that inherits the pure-NumPy substrate for free), or
  degenerate workloads (a single chunk) run the same chunk function
  inline in the parent; behaviour is identical by construction.

The executor never imports search code and the engine never imports this
module: the engine's ``executor=`` hook duck-types ``warm_population`` /
``warm_supernets`` only.

Cache accounting note: rows a worker computed are recorded as cache
*misses* when merged (they were genuinely computed, not found), after
which the engine's serial assembly pass sees hits.  A pool-warmed table
therefore reports one extra hit per computed row compared to serial
evaluation; the indicator values themselves are identical.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import astuple, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.core import supernet_state_key
from repro.errors import SearchError
from repro.runtime.telemetry import Telemetry
from repro.runtime.tracing import CAT_DISPATCH
from repro.searchspace.canonical import canonicalize
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _chunked(items: Sequence, size: int) -> List[Sequence]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def genotype_indicator_keys(index: int, proxy_key: Tuple,
                            macro_key: Tuple) -> Dict[str, Tuple]:
    """The engine's cache keys for one canonical genotype, by indicator.

    Single source of truth for every executor that merges worker rows
    back into an :class:`~repro.engine.cache.IndicatorCache` — the key
    tuples here must stay bit-compatible with the ones
    :class:`~repro.engine.core.Engine` builds internally.
    """
    return {
        "ntk": ("ntk", index, 1, proxy_key),
        "linear_regions": ("linear_regions", index, proxy_key),
        "flops": ("flops", index, macro_key),
    }


def supernet_indicator_keys(state: Tuple, proxy_key: Tuple) -> Dict[str, Tuple]:
    """The engine's cache keys for one supernet state, by indicator."""
    return {
        "supernet_ntk": ("supernet_ntk", state, proxy_key),
        "supernet_lr": ("supernet_lr", state, proxy_key),
    }


# ----------------------------------------------------------------------
# Worker entry points (module level: picklable by reference).
# ----------------------------------------------------------------------
def _evaluate_genotype_chunk(payload: Tuple) -> Tuple[List[Tuple], float]:
    """Indicator rows for a chunk of canonical genotypes.

    Each chunk item is ``(ops, (need_ntk, need_lr, need_flops))``: only
    the indicators the parent found missing are computed, so a partially
    warm cache (e.g. FLOPs missing under a new macro config) never re-pays
    the expensive proxies.  Returns
    ``([(canonical_index, {indicator: value}), ...], seconds)``.
    Latency is deliberately absent: LUT composition is cheap and the
    profiled estimator lives in the parent; workers only pay for the
    proxy-network indicators.
    """
    items, proxy_config, macro_config = payload
    from repro.proxies.flops import count_flops
    from repro.proxies.linear_regions import count_line_regions
    from repro.proxies.ntk import ntk_condition_number

    start = time.perf_counter()
    rows: List[Tuple] = []
    for ops, (need_ntk, need_lr, need_flops) in items:
        genotype = Genotype(tuple(ops))
        row = {}
        if need_ntk:
            row["ntk"] = ntk_condition_number(genotype, proxy_config)
        if need_lr:
            row["linear_regions"] = count_line_regions(genotype, proxy_config)
        if need_flops:
            row["flops"] = float(count_flops(genotype, macro_config))
        rows.append((genotype.to_index(), row))
    return rows, time.perf_counter() - start


def _evaluate_supernet_chunk(payload: Tuple) -> Tuple[List[Tuple], float]:
    """Supernet NTK / line-region rows for a chunk of alive-op states.

    Each chunk item is ``(state, (need_ntk, need_lr))`` — as with the
    genotype chunks, only the indicators the parent found missing are
    computed.
    """
    items, proxy_config = payload
    from repro.proxies.linear_regions import supernet_line_regions
    from repro.proxies.ntk import supernet_ntk_condition_number

    start = time.perf_counter()
    rows: List[Tuple] = []
    for state, (need_ntk, need_lr) in items:
        specs = [EdgeSpec(i, tuple(ops)) for i, ops in enumerate(state)]
        row = {}
        if need_ntk:
            row["supernet_ntk"] = supernet_ntk_condition_number(specs,
                                                                proxy_config)
        if need_lr:
            row["supernet_lr"] = supernet_line_regions(
                [spec.alive_ops for spec in specs], proxy_config
            )
        rows.append((tuple(tuple(ops) for ops in state), row))
    return rows, time.perf_counter() - start


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Cumulative dispatch accounting of one :class:`PopulationExecutor`."""

    mode: str = "serial"
    n_workers: int = 1
    dispatches: int = 0
    chunks: int = 0
    tasks: int = 0
    merged_rows: int = 0
    worker_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "dispatches": self.dispatches,
            "chunks": self.chunks,
            "tasks": self.tasks,
            "merged_rows": self.merged_rows,
            "worker_seconds": self.worker_seconds,
        }


class PopulationExecutor:
    """Maps engine proxy evaluation over worker processes.

    Pass an instance to ``Engine.evaluate_population(..., executor=...)``
    (or to any search loop's ``executor=`` hook) to fan unique-candidate
    evaluation out over ``n_workers`` fork-based processes.  The executor
    holds no engine state: the same instance may serve many engines, and
    each call reads the engine's configs to build matching cache keys.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 chunk_size: int = 8,
                 telemetry: Optional[Telemetry] = None,
                 cache_loader: Optional[Callable] = None) -> None:
        if n_workers is None:
            n_workers = multiprocessing.cpu_count()
        if n_workers < 1:
            raise SearchError("n_workers must be >= 1")
        if chunk_size < 1:
            raise SearchError("chunk_size must be >= 1")
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        #: Optional warm-start hook: called with the candidate cache keys
        #: still missing before any compute ships, and expected to merge
        #: whatever the persistent store holds for them into the engine's
        #: cache (the harness wires it to a shard-selective / indexed
        #: store read — see ``RuntimeConfig.store_read_mode``).  Keys the
        #: loader fills are then not recomputed.
        self.cache_loader = cache_loader
        self.stats = PoolStats(n_workers=n_workers)
        self._pool = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent; also runs on ``del``).

        Workers are forked lazily on the first parallel dispatch and then
        reused — a pruning search dispatches once per round, and paying
        pool startup each time would dominate small rounds.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PopulationExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def _run_chunks(self, worker, payloads: List[Tuple]) -> List[Tuple]:
        """Run chunk payloads through the pool (or inline), in order."""
        parallel = (self.n_workers > 1 and len(payloads) > 1
                    and _fork_available())
        if parallel:
            # Sticky: "fork-pool" means the pool ran at least once this
            # lifetime (later single-chunk dispatches go inline without
            # re-labelling the whole run serial).
            self.stats.mode = "fork-pool"
        self.stats.dispatches += 1
        self.stats.chunks += len(payloads)
        tel = self.telemetry
        run_worker = tel.wrap_worker(worker, local=not parallel)
        with tel.span("pool_run_chunks", CAT_DISPATCH,
                      chunks=len(payloads), parallel=parallel):
            if not parallel:
                return [run_worker(payload) for payload in payloads]
            # Results come back in submission order regardless of which
            # worker finishes first; merge order is thus deterministic
            # (and irrelevant anyway — keys are unique after dedupe).
            return list(self._ensure_pool().map(run_worker, payloads))

    def _merge(self, engine, keyed_rows: List[Tuple[Tuple, float]]) -> int:
        merged = engine.merge_indicator_rows(keyed_rows)
        self.stats.merged_rows += merged
        return merged

    def _preload(self, engine, key_sets: List[Dict]) -> None:
        """Give :attr:`cache_loader` one shot at the candidate keys still
        missing from the cache, before needs masks are computed — rows it
        pulls from the store are never shipped for recompute."""
        if self.cache_loader is None:
            return
        wanted = [key for keys in key_sets for key in keys.values()
                  if key not in engine.cache]
        if wanted:
            self.cache_loader(wanted)

    # ------------------------------------------------------------------
    # Engine hooks (duck-typed from Engine.evaluate_population and
    # HybridObjective.supernet_population)
    # ------------------------------------------------------------------
    def warm_population(self, engine, genotypes: Sequence[Genotype],
                        with_latency: bool = False,
                        assume_canonical: bool = True) -> int:
        """Compute missing unique-canonical indicator rows in the pool.

        Returns the number of cache entries merged.  ``with_latency`` is
        accepted for hook-signature compatibility; latency stays in the
        parent (see :func:`_evaluate_genotype_chunk`).

        ``Engine.evaluate_population`` passes already-canonical forms, so
        canonicalization (a cell-graph build per genotype — the dominant
        cost on a warm cache) is skipped by default; pass
        ``assume_canonical=False`` when warming raw genotypes directly.
        Raw forms under the default would only waste worker compute on
        keys the engine never reads — canonical indices are keyed by
        canonical forms only — never corrupt served values.
        """
        proxy_key = astuple(engine.proxy_config)
        macro_key = astuple(engine.macro_config)
        candidates: List[Tuple] = []  # (canon, key dict), unique
        seen = set()
        for genotype in genotypes:
            canon = (genotype if assume_canonical
                     else canonicalize(genotype))
            index = canon.to_index()
            if index in seen:
                continue
            seen.add(index)
            candidates.append(
                (canon, genotype_indicator_keys(index, proxy_key,
                                                macro_key)))
        self._preload(engine, [keys for _, keys in candidates])
        missing: List[Tuple] = []  # (ops, per-indicator need mask)
        for canon, keys in candidates:
            needs = (
                keys["ntk"] not in engine.cache,
                keys["linear_regions"] not in engine.cache,
                keys["flops"] not in engine.cache,
            )
            if any(needs):
                missing.append((canon.ops, needs))
        if not missing:
            return 0
        payloads = [
            (tuple(chunk), engine.proxy_config, engine.macro_config)
            for chunk in _chunked(missing, self.chunk_size)
        ]
        keyed: List[Tuple[Tuple, float]] = []
        for rows, seconds in self._run_chunks(_evaluate_genotype_chunk,
                                              payloads):
            self.stats.tasks += len(rows)
            self.stats.worker_seconds += seconds
            self.telemetry.observe("chunk_seconds", seconds)
            self.telemetry.count("executor.evals", len(rows))
            engine.ledger.add("pool_eval", seconds=seconds, count=len(rows))
            for index, row in rows:
                keys = genotype_indicator_keys(index, proxy_key, macro_key)
                for name, value in row.items():
                    keyed.append((keys[name], value))
        return self._merge(engine, keyed)

    def warm_supernets(self, engine,
                       spec_lists: Sequence[Sequence[EdgeSpec]]) -> int:
        """Compute missing supernet-state indicator rows in the pool."""
        proxy_key = astuple(engine.proxy_config)
        candidates: List[Tuple] = []  # (state, key dict), unique
        seen = set()
        for specs in spec_lists:
            state = supernet_state_key(specs)
            if state in seen:
                continue
            seen.add(state)
            candidates.append(
                (state, supernet_indicator_keys(state, proxy_key)))
        self._preload(engine, [keys for _, keys in candidates])
        missing: List[Tuple] = []  # (state, per-indicator need mask)
        for state, keys in candidates:
            needs = (
                keys["supernet_ntk"] not in engine.cache,
                keys["supernet_lr"] not in engine.cache,
            )
            if any(needs):
                missing.append((state, needs))
        if not missing:
            return 0
        payloads = [
            (tuple(chunk), engine.proxy_config)
            for chunk in _chunked(missing, self.chunk_size)
        ]
        keyed: List[Tuple[Tuple, float]] = []
        for rows, seconds in self._run_chunks(_evaluate_supernet_chunk,
                                              payloads):
            self.stats.tasks += len(rows)
            self.stats.worker_seconds += seconds
            self.telemetry.observe("chunk_seconds", seconds)
            self.telemetry.count("executor.evals", len(rows))
            engine.ledger.add("pool_eval", seconds=seconds, count=len(rows))
            for state, row in rows:
                keys = supernet_indicator_keys(state, proxy_key)
                for name, value in row.items():
                    keyed.append((keys[name], value))
        return self._merge(engine, keyed)


__all__ = [
    "PopulationExecutor",
    "PoolStats",
    "genotype_indicator_keys",
    "supernet_indicator_keys",
]
