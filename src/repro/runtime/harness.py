"""The run harness: one config wires engine + pool + store + algorithm.

:class:`RuntimeConfig` is the single declarative description of an
evaluation run — which search algorithm, how many worker processes, which
device, which store directory to warm-start from.  :class:`RunHarness`
materialises it: builds the :class:`~repro.engine.Engine` (loading any
persisted indicator cache and letting latency estimators pull profiled
LUTs from the store), builds the :class:`~repro.runtime.pool.\
PopulationExecutor`, runs the selected algorithm from :data:`ALGORITHMS`
and emits a structured :class:`RunReport` (optionally persisting the
warmed cache back).

New algorithms register with :func:`register_algorithm`; the builder
receives the harness and returns a
:class:`~repro.search.result.SearchResult`, so external search loops plug
in without touching this module.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SearchError
from repro.proxies.base import ProxyConfig
from repro.runtime.pool import PopulationExecutor
from repro.runtime.store import READ_MODES, RuntimeStore, cache_fingerprint
from repro.runtime.telemetry import Heartbeat, Telemetry
from repro.search.result import SearchResult
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.utils.timing import Timer


def _utc_now() -> str:
    """ISO-8601 UTC timestamp (the cross-process correlation format)."""
    return datetime.now(timezone.utc).isoformat()

@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a reproducible evaluation run needs, in one place."""

    algorithm: str = "random"
    n_workers: int = 1
    chunk_size: int = 8
    async_mode: bool = False   # futures-per-chunk async executor
    store_dir: Optional[str] = None
    #: How warm-start reads the store: "full" (eager whole-store replay
    #: at harness construction — right when the run will touch most of
    #: it), "selective" (replay only the shards each population's keys
    #: hash to, at submit time) or "index" (point lookups through the
    #: per-shard index sidecars — O(population), the million-row-store
    #: mode).  The default "auto" resolves to "index" for async runs
    #: (submit-time preloads only ever want each population's keys, and
    #: fleet workers warm-start the same way) and "full" for synchronous
    #: runs (which still replay eagerly); pass "full" explicitly to opt
    #: an async run out.  See :mod:`repro.runtime.store`.
    store_read_mode: str = "auto"
    #: LRU bound on in-memory cache rows (None = unbounded).  Dirty rows
    #: are pinned until flushed; see :mod:`repro.engine.cache`.
    max_cache_rows: Optional[int] = None
    device: str = "nucleo-f746zg"
    samples: int = 64          # random / pareto population size
    population_size: int = 20  # evolutionary population
    cycles: int = 100          # evolutionary cycles
    sample_size: int = 5       # evolutionary tournament size
    latency_weight: float = 0.0
    flops_weight: float = 0.0
    arch: Optional[str] = None  # cell for the macro stage (str or index)
    seed: int = 0
    fast: bool = True           # reduced proxy scale (quick demo / CI)
    save_store: bool = True     # persist the warmed cache after the run
    precision: str = "float64"  # proxy compute policy (float32|float64)
    parent_selection: str = "crowding"  # steady-state Pareto parent pick
    chunk_timeout: Optional[float] = None  # async per-chunk deadline (s)
    max_retries: int = 2        # async transient-failure retry budget
    graceful_shutdown: bool = True  # SIGINT/SIGTERM drain (async runs)
    trace_path: Optional[str] = None  # write a Chrome trace JSON here
    heartbeat: Optional[float] = None  # progress line every N seconds
    #: Bind address for a fleet broker ("HOST:PORT"; port 0 picks one).
    #: Setting this (or ``fleet_workers``) swaps the async transport for
    #: the socket-broker :class:`~repro.runtime.fleet.FleetPool` —
    #: external workers join with ``micronas fleet worker --connect``.
    fleet_bind: Optional[str] = None
    #: Local worker processes to fork against the broker at start (the
    #: single-host fan-out path; remote workers may still join on top).
    fleet_workers: int = 0
    #: Per-chunk lease deadline for fleet runs (defaults to
    #: ``chunk_timeout``; None = leases never expire).
    fleet_lease_seconds: Optional[float] = None
    #: Shared fleet token (an identity check against cross-talk between
    #: fleets on one network — not authentication; see the fleet module).
    fleet_token: str = ""
    #: Objective sets for the scenario matrix: each entry is a
    #: comma-joined list of registered cost axes (``"latency"``,
    #: ``"energy,peak-mem"``, ...).  With :attr:`devices` set, the run
    #: emits one Pareto front per (device, objective-set) cell; without,
    #: the named axes fold into the hybrid objective's cost weights.
    objectives: Tuple[str, ...] = ()
    #: Device-matrix boards.  Non-empty switches :meth:`RunHarness.run_matrix`
    #: on: trainless indicators are evaluated once (shared cache/store),
    #: then every (device, objective-set) cell prices its own cost axes.
    devices: Tuple[str, ...] = ()

    def objective_sets(self) -> Tuple[Tuple[str, ...], ...]:
        """Parsed :attr:`objectives` — one tuple of axis names per set."""
        sets = []
        for entry in self.objectives:
            axes = tuple(a.strip() for a in entry.split(",") if a.strip())
            if axes:
                sets.append(axes)
        return tuple(sets)

    def cost_axes(self) -> Tuple[str, ...]:
        """Sorted union of every axis named across the objective sets."""
        union = {axis for axes in self.objective_sets() for axis in axes}
        return tuple(sorted(union))

    def proxy_config(self) -> ProxyConfig:
        from repro.eval.benchconfig import reduced_proxy_config

        if self.fast:
            return reduced_proxy_config(seed=self.seed,
                                        precision=self.precision)
        return ProxyConfig(seed=self.seed, precision=self.precision)

    def macro_config(self) -> MacroConfig:
        return MacroConfig.full()


@dataclass
class RunReport:
    """Structured record of one harness run (JSON-serialisable)."""

    config: RuntimeConfig
    algorithm: str
    arch_str: str
    arch_index: int
    indicators: Dict[str, float]
    wall_seconds: float
    num_evaluations: int
    cache: Dict[str, float]
    pool: Dict[str, object]
    store: Dict[str, object]
    weights_used: Optional[Dict[str, float]] = None
    history: List[Dict] = field(default_factory=list)
    #: "completed", or "interrupted" when a SIGINT/SIGTERM drain cut the
    #: run short — everything gathered before the drain is still in the
    #: report (and persisted, when a store is configured).
    status: str = "completed"
    #: Short random hex minted at harness construction — stamped on every
    #: telemetry event too, so fleet-mode logs from several processes can
    #: be correlated after the fact.
    run_id: str = ""
    started_at: str = ""   # ISO-8601 UTC
    finished_at: str = ""  # ISO-8601 UTC
    #: Metrics snapshot (counters/gauges/histograms) when telemetry was
    #: armed for the run; ``None`` otherwise.
    telemetry: Optional[Dict] = None

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["config"] = asdict(self.config)
        return payload

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)


@dataclass
class MatrixCell:
    """One (device, objective-set) cell of a device-matrix run."""

    device: str
    objectives: Tuple[str, ...]
    #: First Pareto front, sorted by the first cost axis; each row maps
    #: ``arch_str``/``arch_index``/``quality_rank``/``crowding`` plus one
    #: entry per cost axis.
    front: List[Dict[str, object]]
    #: The balanced pick (minimal normalised L2 distance to utopia).
    knee: Optional[Dict[str, object]]
    num_fronts: int


@dataclass
class DeviceMatrixReport:
    """Structured record of one device-matrix run (JSON-serialisable).

    The headline invariant: ``unique_canonical`` trainless evaluations
    serve *every* cell — devices and objective sets only re-price cheap,
    LUT-mediated cost axes against the shared cache.
    """

    config: RuntimeConfig
    cells: List[MatrixCell]
    samples: int
    unique_canonical: int
    #: Trainless evaluation accounting.  ``rows_computed`` is the cache
    #: miss delta of the single population pass — the number of indicator
    #: rows genuinely computed (driver- or worker-side) before any cell
    #: was priced, proving the exactly-once sharing across cells;
    #: ``ntk``/``linear_regions`` are the driver-side ledger counts (zero
    #: when an executor computed the rows in workers).
    trainless_evals: Dict[str, int]
    cache: Dict[str, float]
    store: Dict[str, object]
    wall_seconds: float
    status: str = "completed"
    run_id: str = ""
    started_at: str = ""
    finished_at: str = ""

    def cell(self, device: str, objectives: Tuple[str, ...]) -> MatrixCell:
        """Look up one cell by its (device, objective-set) coordinates."""
        for cell in self.cells:
            if cell.device == device and tuple(cell.objectives) == tuple(objectives):
                return cell
        raise SearchError(f"no matrix cell ({device!r}, {objectives!r})")

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["config"] = asdict(self.config)
        return payload

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)


# ----------------------------------------------------------------------
# Algorithm registry
# ----------------------------------------------------------------------
ALGORITHMS: Dict[str, Callable[["RunHarness"], SearchResult]] = {}


def register_algorithm(name: str):
    """Decorator registering a harness-runnable search algorithm."""

    def wrap(builder: Callable[["RunHarness"], SearchResult]):
        ALGORITHMS[name] = builder
        return builder

    return wrap


@register_algorithm("random")
def _run_random(harness: "RunHarness") -> SearchResult:
    from repro.search.random_search import ZeroShotRandomSearch

    return ZeroShotRandomSearch(
        harness.objective(),
        num_samples=harness.config.samples,
        seed=harness.config.seed,
        executor=harness.executor,
    ).search()


@register_algorithm("evolutionary")
def _run_evolutionary(harness: "RunHarness") -> SearchResult:
    """µNAS-style train-based aging evolution (surrogate benchmark).

    Fitness queries the surrogate — no engine indicators — so the pool
    and indicator store have nothing to accelerate here; the algorithm is
    registered so cost-accounting comparisons run under the same harness.
    Indicator weights would be silently meaningless, so they are rejected
    rather than ignored (use ``trainless-evolutionary`` for weighted
    indicator-driven evolution).
    """
    from repro.search.evolutionary import (
        ConstrainedEvolutionarySearch,
        EvolutionConfig,
    )

    if harness.config.latency_weight or harness.config.flops_weight:
        raise SearchError(
            "the train-based 'evolutionary' algorithm scores candidates by "
            "surrogate accuracy only and ignores indicator weights; drop "
            "--latency-weight/--flops-weight or use trainless-evolutionary"
        )

    return ConstrainedEvolutionarySearch(
        EvolutionConfig(
            population_size=harness.config.population_size,
            sample_size=harness.config.sample_size,
            cycles=harness.config.cycles,
        ),
        macro_config=harness.macro_config,
        seed=harness.config.seed,
    ).search()


@register_algorithm("trainless-evolutionary")
def _run_trainless_evolutionary(harness: "RunHarness") -> SearchResult:
    from repro.search.evolutionary import (
        EvolutionConfig,
        TrainlessEvolutionarySearch,
    )

    return TrainlessEvolutionarySearch(
        harness.objective(),
        EvolutionConfig(
            population_size=harness.config.population_size,
            sample_size=harness.config.sample_size,
            cycles=harness.config.cycles,
        ),
        seed=harness.config.seed,
        executor=harness.executor,
    ).search()


@register_algorithm("steady-state")
def _run_steady_state(harness: "RunHarness") -> SearchResult:
    """Asynchronous steady-state evolution (needs the async runtime)."""
    from repro.search.evolutionary import (
        EvolutionConfig,
        SteadyStateEvolutionarySearch,
    )

    if not hasattr(harness.executor, "submit_population"):
        raise SearchError(
            "the steady-state algorithm is event-driven and needs the "
            "asynchronous executor: set RuntimeConfig.async_mode=True "
            "(CLI: micronas runtime --async --algorithm steady-state)"
        )
    return SteadyStateEvolutionarySearch(
        harness.objective(),
        EvolutionConfig(
            population_size=harness.config.population_size,
            sample_size=harness.config.sample_size,
            cycles=harness.config.cycles,
        ),
        seed=harness.config.seed,
        executor=harness.executor,
        parent_selection=harness.config.parent_selection,
    ).search()


@register_algorithm("pruning")
def _run_pruning(harness: "RunHarness") -> SearchResult:
    from repro.search.pruning import MicroNASSearch

    return MicroNASSearch(
        harness.objective(),
        seed=harness.config.seed,
        executor=harness.executor,
    ).search()


@register_algorithm("macro")
def _run_macro(harness: "RunHarness") -> SearchResult:
    """Secondary stage: fit ``config.arch`` onto the configured board."""
    from repro.search.macro import (
        MacroSearchSpace,
        MacroStageSearch,
        device_constraints,
    )

    if harness.config.arch is None:
        raise SearchError(
            "the macro algorithm needs a discovered cell: set "
            "RuntimeConfig.arch to an architecture string or index"
        )
    genotype = Genotype.resolve(harness.config.arch)
    search = MacroStageSearch(genotype, device=harness.device,
                              space=MacroSearchSpace(),
                              engine=harness.engine)
    plan = search.select(device_constraints(harness.device))
    candidate = plan.candidate
    return SearchResult(
        genotype=genotype,
        algorithm="macro-stage",
        indicators={
            "latency": candidate.latency_ms,
            "flops": float(candidate.flops),
            "params": float(candidate.params),
            "peak_sram_bytes": float(candidate.peak_sram_bytes),
            "flash_bytes": float(candidate.flash_bytes),
        },
        history=[{
            "skeleton": {
                "init_channels": candidate.config.init_channels,
                "cells_per_stage": candidate.config.cells_per_stage,
            },
            "alternatives_considered": plan.alternatives_considered,
        }],
        ledger=harness.engine.ledger,
    )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
class RunHarness:
    """Materialises a :class:`RuntimeConfig` and runs its algorithm."""

    def __init__(self, config: RuntimeConfig) -> None:
        from repro.engine.core import Engine
        from repro.hardware.device import known_devices

        if config.algorithm not in ALGORITHMS:
            raise SearchError(
                f"unknown algorithm {config.algorithm!r}; registered: "
                f"{sorted(ALGORITHMS)}"
            )
        devices = known_devices()
        if config.device not in devices:
            raise SearchError(
                f"unknown device {config.device!r}; known: {sorted(devices)}"
            )
        for name in config.devices:
            if name not in devices:
                raise SearchError(
                    f"unknown matrix device {name!r}; known: "
                    f"{sorted(devices)}")
        if config.objectives or config.devices:
            from repro.search.costs import registered_cost_models

            registered = registered_cost_models()
            for axis in config.cost_axes():
                if axis not in registered:
                    raise SearchError(
                        f"unknown cost axis {axis!r}; registered: "
                        f"{list(registered)}")
        # Fail fast on unknown precision names (the proxies would only
        # raise at first evaluation, deep inside the run).
        from repro.autograd.precision import resolve_policy

        resolve_policy(config.precision)
        if config.store_read_mode not in READ_MODES + ("auto",):
            raise SearchError(
                f"unknown store_read_mode {config.store_read_mode!r}; "
                f"valid: {('auto',) + READ_MODES}"
            )
        if (config.fleet_bind or config.fleet_workers) \
                and not config.async_mode:
            raise SearchError(
                "fleet transport rides the async executor: set "
                "async_mode=True (CLI: micronas runtime --async)"
            )
        if config.fleet_workers < 0:
            raise SearchError("fleet_workers must be >= 0")
        if config.max_cache_rows is not None and config.max_cache_rows < 1:
            raise SearchError("max_cache_rows must be >= 1 (or None)")
        self.config = config
        self.device = devices[config.device]
        self.proxy_config = config.proxy_config()
        self.macro_config = config.macro_config()
        #: Short random hex correlating this run across processes, logs
        #: and telemetry events (minted even when telemetry is off — the
        #: report always carries it).
        self.run_id = os.urandom(4).hex()
        #: Armed when the run wants a trace file or a heartbeat; the
        #: shared disabled singleton otherwise — every layer below takes
        #: it unconditionally and no-ops when disabled.
        self.telemetry = (
            Telemetry.armed(run_id=self.run_id, trace_path=config.trace_path)
            if (config.trace_path or config.heartbeat)
            else Telemetry.disabled()
        )
        self.store = (RuntimeStore(config.store_dir,
                                   telemetry=self.telemetry)
                      if config.store_dir else None)
        # Extra cost axes fold into the store fingerprint so rows never
        # alias across objective sets; the built-in latency/flops axes
        # are part of the legacy indicator schema already, so plain runs
        # (and latency-only objective sets) keep the legacy fingerprint
        # bit-compatible.
        extra_axes = tuple(a for a in config.cost_axes()
                           if a not in ("latency", "flops"))
        self.fingerprint = cache_fingerprint(self.proxy_config,
                                             self.macro_config,
                                             cost_axes=extra_axes)
        #: The resolved read mode ("auto" picks "index" for async runs,
        #: "full" for synchronous ones — see :class:`RuntimeConfig`).
        self.store_read_mode = (
            config.store_read_mode if config.store_read_mode != "auto"
            else ("index" if config.async_mode else "full"))
        # Rows warm-started from the store (eagerly below for "full";
        # accumulated per submit-time preload for selective/index reads).
        self.warm_entries = 0
        # The executors' warm-start seam: selective/index read modes
        # defer store reads to submit time, loading only what each
        # population actually asks for — O(population), not O(store).
        cache_loader = (
            self._load_store_keys
            if self.store is not None and self.store_read_mode != "full"
            else None
        )
        if config.async_mode:
            from repro.runtime.async_pool import AsyncPopulationExecutor
            from repro.runtime.faults import FaultPolicy

            pool = None
            if config.fleet_bind or config.fleet_workers:
                from repro.runtime.fleet import FleetPool, parse_address

                host, port = (parse_address(config.fleet_bind)
                              if config.fleet_bind else ("127.0.0.1", 0))
                pool = FleetPool(
                    host=host, port=port,
                    n_workers=max(config.fleet_workers, 1),
                    lease_seconds=(config.fleet_lease_seconds
                                   if config.fleet_lease_seconds
                                   is not None
                                   else config.chunk_timeout),
                    token=config.fleet_token,
                    telemetry=self.telemetry,
                )
            self.executor = AsyncPopulationExecutor(
                n_workers=config.n_workers, chunk_size=config.chunk_size,
                fault_policy=FaultPolicy(
                    chunk_timeout=config.chunk_timeout,
                    max_retries=config.max_retries,
                ),
                # Quarantine decisions persist in the store directory
                # (and pre-seed the executor) when a store is configured;
                # store-less runs quarantine in memory only.
                quarantine_ledger=(
                    self.store.quarantine_ledger(self.fingerprint)
                    if self.store is not None else None
                ),
                telemetry=self.telemetry,
                cache_loader=cache_loader,
                pool=pool,
            )
            if pool is not None and config.fleet_workers:
                # Local fan-out: forked workers share the store for
                # warm starts and flush their rows under its flocks.
                pool.spawn_local_workers(
                    config.fleet_workers, store_dir=config.store_dir,
                    read_mode=(self.store_read_mode
                               if self.store_read_mode != "full"
                               else "index"))
        else:
            self.executor = PopulationExecutor(n_workers=config.n_workers,
                                               chunk_size=config.chunk_size,
                                               telemetry=self.telemetry,
                                               cache_loader=cache_loader)
        from repro.engine.cache import IndicatorCache

        self.engine = Engine(
            proxy_config=self.proxy_config,
            macro_config=self.macro_config,
            device=self.device,
            lut_store=self.store,
            telemetry=self.telemetry,
            cache=IndicatorCache(max_rows=config.max_cache_rows),
        )
        if self.store is not None and self.store_read_mode == "full":
            self.warm_entries = self.store.load_cache_into(
                self.engine.cache, self.fingerprint)
        #: Rows appended to the store by mid-run flushes (async only).
        self.flushed_entries = 0
        #: Set by the first SIGINT/SIGTERM during :meth:`run`: the run is
        #: draining and its report will carry ``status="interrupted"``.
        self._drain_requested = False
        if (config.async_mode and config.save_store
                and self.store is not None):
            # Store format 2 appends only dirty rows (O(delta)), so
            # flushing on *every* gather is affordable: a crashed or
            # killed run leaves everything it computed persisted, and
            # sibling processes warm-start from it while this run is
            # still going.
            self.executor.on_gather = self._flush_store

    def _flush_store(self, gathered) -> None:
        self.flushed_entries += self.store.save_cache(self.engine.cache,
                                                      self.fingerprint)

    def _load_store_keys(self, keys) -> int:
        """The executors' ``cache_loader`` hook: pull exactly the
        requested keys from the store via the configured read mode."""
        loaded = self.store.load_cache_into(
            self.engine.cache, self.fingerprint, keys=keys,
            read_mode=self.store_read_mode)
        self.warm_entries += loaded
        return loaded

    def _heartbeat_source(self) -> Dict:
        """One reading for the heartbeat line (reads shared counters only,
        so it is safe from the heartbeat thread mid-run)."""
        stats = self.executor.stats
        return {
            "evals": getattr(stats, "tasks", 0),
            "in_flight": getattr(self.executor, "num_pending", 0),
            "idle_fraction": getattr(stats, "idle_fraction", None),
            "retries": getattr(stats, "retries", 0),
            "store_rows": self.flushed_entries,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut worker pools down *now* (idempotent).

        :class:`~repro.runtime.pool.PopulationExecutor` used to lean on
        ``__del__`` for cleanup, which runs at GC's convenience — forked
        workers could outlive the run that spawned them.  The harness is
        the object with the executor's lifecycle in hand, so it closes
        deterministically: :meth:`run` on completion (success or not), or
        the context manager on scope exit.
        """
        self.executor.close()

    def __enter__(self) -> "RunHarness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def objective(self):
        """A hybrid objective wired to this harness's engine and pool.

        ``RuntimeConfig.objectives`` axes fold in at weight 1.0 unless an
        explicit weight already covers them (``latency``/``flops`` via
        their dedicated knobs, extra axes at unit weight) — so a config
        naming ``energy,peak-mem`` scores those axes even outside
        device-matrix mode.
        """
        from repro.search.objective import HybridObjective, ObjectiveWeights

        axes = self.config.cost_axes()
        latency_weight = self.config.latency_weight
        if not latency_weight and "latency" in axes:
            latency_weight = 1.0
        flops_weight = self.config.flops_weight
        if not flops_weight and "flops" in axes:
            flops_weight = 1.0
        extra = {axis: 1.0 for axis in axes
                 if axis not in ("latency", "flops")}
        return HybridObjective(
            weights=ObjectiveWeights(latency=latency_weight,
                                     flops=flops_weight,
                                     costs=extra),
            engine=self.engine,
            executor=self.executor,
        )

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def _handle_drain_signal(self, signum, frame) -> None:
        """First SIGINT/SIGTERM: drain.  Second: abort for real."""
        if self._drain_requested:
            raise KeyboardInterrupt(
                f"second signal {signum} during drain")
        self._drain_requested = True
        self.executor.request_drain()

    def _install_drain_handlers(self) -> List:
        """Route SIGINT/SIGTERM into a graceful drain; returns the
        ``(signum, previous_handler)`` pairs to restore afterwards.

        Only armed for async runs (the executor must expose
        ``request_drain``) from the main thread — synchronous runs keep
        stock Ctrl-C semantics, and signal handlers cannot be installed
        off the main thread anyway.
        """
        if (not self.config.graceful_shutdown
                or not hasattr(self.executor, "request_drain")
                or threading.current_thread()
                is not threading.main_thread()):
            return []
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(signum, self._handle_drain_signal)
            installed.append((signum, previous))
        return installed

    # ------------------------------------------------------------------
    def run(self) -> RunReport:
        """Run the configured algorithm; persist and report.

        For async runs, SIGINT/SIGTERM triggers a **graceful drain**
        rather than an abort: submission stops, in-flight chunks are
        gathered and flushed, and the report comes back marked
        ``status="interrupted"`` with everything computed so far
        persisted (a second signal aborts immediately).
        """
        stats_before = self.engine.cache.stats
        installed = self._install_drain_handlers()
        started_at = _utc_now()
        finished_at = ""
        heartbeat: Optional[Heartbeat] = None
        if self.config.heartbeat:
            heartbeat = Heartbeat(self.config.heartbeat,
                                  self._heartbeat_source,
                                  run_id=self.run_id).start()
        try:
            with Timer() as timer:
                result = ALGORITHMS[self.config.algorithm](self)
        finally:
            if heartbeat is not None:
                heartbeat.stop()
            for signum, previous in installed:
                signal.signal(signum, previous)
            self.close()  # forked workers don't outlive the run
            finished_at = _utc_now()
            # Write the trace even when the run raised or was drained —
            # an interrupted timeline is exactly when you want one — and
            # never let a telemetry write failure mask the run's outcome.
            try:
                self.telemetry.write_trace(other_data={
                    "started_at": started_at,
                    "finished_at": finished_at,
                    "interrupted": self._drain_requested,
                })
            except Exception:
                pass
        stats_after = self.engine.cache.stats
        saved_entries = self.flushed_entries
        if self.store is not None and self.config.save_store:
            # Appends whatever the mid-run flushes have not already
            # persisted (everything, for the sync executor).
            saved_entries += self.store.save_cache(self.engine.cache,
                                                   self.fingerprint)
        return RunReport(
            config=self.config,
            algorithm=result.algorithm,
            arch_str=result.arch_str,
            arch_index=result.genotype.to_index(),
            indicators={k: float(v) for k, v in result.indicators.items()},
            wall_seconds=timer.elapsed,
            num_evaluations=result.num_evaluations,
            cache={
                "warm_start_entries": self.warm_entries,
                "hits": stats_after.hits - stats_before.hits,
                "misses": stats_after.misses - stats_before.misses,
                "entries": stats_after.entries,
                "hit_rate": stats_after.hit_rate,
            },
            pool=self.executor.stats.to_dict(),
            store={
                "dir": self.config.store_dir,
                "read_mode": self.store_read_mode,
                "cache_loaded": self.warm_entries,
                "cache_saved": saved_entries,
                "luts": (self.store.lut_keys()
                         if self.store is not None else []),
            },
            weights_used=result.weights_used,
            history=result.history,
            status=("interrupted" if self._drain_requested
                    else "completed"),
            run_id=self.run_id,
            started_at=started_at,
            finished_at=finished_at,
            telemetry=(self.telemetry.metrics_snapshot()
                       if self.telemetry.enabled else None),
        )

    # ------------------------------------------------------------------
    # Device-matrix mode
    # ------------------------------------------------------------------
    def run_matrix(self) -> DeviceMatrixReport:
        """Evaluate one candidate sample across every (device,
        objective-set) cell; return one Pareto front per cell.

        Trainless indicators (κ_NTK, linear regions) are computed exactly
        once per unique canonical form — through the same executor hook a
        plain run uses, so pool/async/fleet transports compose unchanged
        and workers stay oblivious to cost axes.  Each device then prices
        its cost axes against the shared cache via the registered
        :class:`~repro.search.costs.CostModel` adapters (LUT-mediated,
        driver-side), and each objective set sorts its own front.
        """
        import numpy as np

        from repro.hardware.device import get_device
        from repro.search.objective import HybridObjective, ObjectiveWeights
        from repro.search.pareto import crowding_distance, non_dominated_sort
        from repro.searchspace.space import NasBench201Space

        config = self.config
        if not config.devices:
            raise SearchError(
                "device-matrix mode needs RuntimeConfig(devices=[...]) "
                "(CLI: micronas runtime --device-matrix DEV1,DEV2)")
        objective_sets = config.objective_sets() or (("latency",),)
        started_at = _utc_now()
        stats_before = self.engine.cache.stats
        # Quality is the trainless part only — hardware enters as cost
        # axes, so cells stay comparable across devices.
        trainless = HybridObjective(weights=ObjectiveWeights(),
                                    engine=self.engine,
                                    executor=self.executor)
        try:
            with Timer() as timer:
                genotypes = NasBench201Space().sample(config.samples,
                                                      rng=config.seed)
                table = trainless.evaluate_population(genotypes)
                quality = trainless.combined_ranks(table.rows())
                cells: List[MatrixCell] = []
                for device_name in config.devices:
                    engine = self.engine.for_device(get_device(device_name))
                    # Price each axis once per device; objective sets
                    # sharing an axis reuse the same column.
                    columns: Dict[str, np.ndarray] = {}
                    for axes in objective_sets:
                        for axis in axes:
                            if axis in columns:
                                continue
                            if axis == "flops":
                                columns[axis] = table.column("flops")
                                continue
                            model = engine.cost_model(axis)
                            columns[axis] = np.array(
                                [engine.cost(g, model) for g in genotypes],
                                dtype=float)
                    for axes in objective_sets:
                        cells.append(self._matrix_cell(
                            device_name, axes, genotypes, quality, columns,
                            non_dominated_sort, crowding_distance))
        finally:
            self.close()
            finished_at = _utc_now()
        stats_after = self.engine.cache.stats
        saved_entries = self.flushed_entries
        if self.store is not None and config.save_store:
            saved_entries += self.store.save_cache(self.engine.cache,
                                                   self.fingerprint)
        counts = self.engine.ledger.counts
        return DeviceMatrixReport(
            config=config,
            cells=cells,
            samples=config.samples,
            unique_canonical=table.unique_canonical,
            trainless_evals={
                "ntk": counts.get("ntk_eval", 0),
                "linear_regions": counts.get("lr_eval", 0),
                "rows_computed": table.cache_misses,
                "rows_hit": table.cache_hits,
            },
            cache={
                "warm_start_entries": self.warm_entries,
                "hits": stats_after.hits - stats_before.hits,
                "misses": stats_after.misses - stats_before.misses,
                "entries": stats_after.entries,
                "hit_rate": stats_after.hit_rate,
            },
            store={
                "dir": config.store_dir,
                "read_mode": self.store_read_mode,
                "cache_loaded": self.warm_entries,
                "cache_saved": saved_entries,
                "luts": (self.store.lut_keys()
                         if self.store is not None else []),
            },
            wall_seconds=timer.elapsed,
            run_id=self.run_id,
            started_at=started_at,
            finished_at=finished_at,
        )

    @staticmethod
    def _matrix_cell(device_name, axes, genotypes, quality, columns,
                     non_dominated_sort, crowding_distance) -> MatrixCell:
        """Sort one (device, objective-set) cell's Pareto front."""
        import numpy as np

        vectors = np.column_stack(
            [np.asarray(quality, dtype=float)]
            + [columns[axis] for axis in axes])
        fronts = non_dominated_sort(vectors)
        first = fronts[0]
        crowd = crowding_distance(vectors[first])
        rows: List[Dict[str, object]] = []
        for idx, crowding in zip(first, crowd):
            row: Dict[str, object] = {
                "arch_str": genotypes[idx].to_arch_str(),
                "arch_index": genotypes[idx].to_index(),
                "quality_rank": float(quality[idx]),
                "crowding": float(crowding),
            }
            for axis in axes:
                row[axis] = float(columns[axis][idx])
            rows.append(row)
        rows.sort(key=lambda r: r[axes[0]])
        # Knee: min-max normalise quality + every axis over the front,
        # pick the row closest (L2) to the utopian corner.
        knee = None
        if rows:
            matrix = np.array(
                [[row["quality_rank"]] + [row[a] for a in axes]
                 for row in rows], dtype=float)
            lo, hi = matrix.min(axis=0), matrix.max(axis=0)
            spread = np.where(hi > lo, hi - lo, 1.0)
            normed = (matrix - lo) / spread
            knee = rows[int(np.argmin(np.sqrt((normed ** 2).sum(axis=1))))]
        return MatrixCell(
            device=device_name,
            objectives=tuple(axes),
            front=rows,
            knee=knee,
            num_fronts=len(fronts),
        )


def run(config: RuntimeConfig) -> RunReport:
    """One-call convenience: build the harness and run it."""
    return RunHarness(config).run()


def run_matrix(config: RuntimeConfig) -> DeviceMatrixReport:
    """One-call convenience for device-matrix mode."""
    return RunHarness(config).run_matrix()


__all__ = [
    "RuntimeConfig",
    "RunHarness",
    "RunReport",
    "MatrixCell",
    "DeviceMatrixReport",
    "ALGORITHMS",
    "register_algorithm",
    "run",
    "run_matrix",
]
