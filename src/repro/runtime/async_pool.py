"""Futures-per-chunk asynchronous population evaluation.

PR 2's :class:`~repro.runtime.pool.PopulationExecutor` is a *barrier*
executor: ``warm_population`` blocks until every chunk of a population has
been computed, so a search loop sits idle while the slowest chunk
finishes.  This module splits that barrier into DeepHyper-style
**submit/gather** halves (their evaluator abstraction keeps ``num_workers``
jobs in flight and lets the search react to whichever result lands first):

* :class:`FuturePool` — the transport: submit picklable ``(worker,
  payload)`` tasks, gather completed results **in completion order**, with
  a serial fallback that defers execution to gather time so single-process
  runs interleave exactly like a pool would (FIFO completion).  It also
  accounts busy/span time, from which the worker idle fraction is derived.
* :class:`AsyncPopulationExecutor` — the engine adapter:
  :meth:`~AsyncPopulationExecutor.submit_population` dedupes a population
  against the cache *and against chunks already in flight*, ships one
  future per ``chunk_size`` candidates, and :meth:`~AsyncPopulationExecutor.
  gather` merges each chunk's indicator rows into the shared
  :class:`~repro.engine.cache.IndicatorCache` the moment it lands — via
  :meth:`~repro.engine.core.Engine.merge_indicator_rows`, under the
  engine's exact cache keys.

**Determinism.**  Indicator values are bit-identical to serial evaluation
no matter how futures resolve: every proxy seeds its RNG from the
canonical key, merges are first-write-wins under unique keys, and the
engine's serial assembly pass (``evaluate_population``) reads the cache in
request order.  Completion order can therefore reorder *when* rows land,
never *what* they say — the property the completion-order fuzzing tests
pin down.

The executor also implements the synchronous ``warm_population`` /
``warm_supernets`` hooks (submit + gather-all), so it is a drop-in
``executor=`` for every existing search loop; the steady-state
evolutionary search (:class:`~repro.search.evolutionary.
SteadyStateEvolutionarySearch`) is the loop that actually exploits the
split halves.

Worker functions are injectable (``genotype_worker=`` /
``supernet_worker=``): the seam through which a remote transport (or a
test/benchmark wrapping workers with simulated device latency) plugs in
without touching scheduling.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import astuple, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.core import supernet_state_key
from repro.errors import SearchError
from repro.runtime.pool import (
    _chunked,
    _evaluate_genotype_chunk,
    _evaluate_supernet_chunk,
    _fork_available,
    genotype_indicator_keys,
    supernet_indicator_keys,
)
from repro.searchspace.canonical import canonicalize
from repro.searchspace.genotype import Genotype


# ----------------------------------------------------------------------
# The transport: submit/gather over futures with a serial-lazy fallback
# ----------------------------------------------------------------------
@dataclass
class TaskResult:
    """One completed task, in the order :meth:`FuturePool.gather` saw it.

    A task whose worker raised completes with ``error`` set and ``value``
    ``None`` — it still leaves the pending queue, so one poisoned chunk
    can neither wedge the pool nor drop the results of siblings gathered
    in the same call.
    """

    task_id: int
    tag: object
    value: object
    error: Optional[BaseException] = None


class FuturePool:
    """Submit tasks now, collect whichever finishes first later.

    ``mode`` selects the backend:

    * ``"fork"`` — a fork-based :class:`~concurrent.futures.
      ProcessPoolExecutor` (workers inherit the pure-NumPy substrate);
    * ``"thread"`` — a thread pool (useful for workloads that release the
      GIL or mostly wait, e.g. simulated device-profiling latency);
    * ``"serial"`` — no pool at all: tasks are queued as thunks and run
      lazily, FIFO, inside :meth:`gather` — the completion order a
      single-worker pool would produce, without fork overhead;
    * ``"auto"`` (default) — ``"fork"`` when available and
      ``n_workers > 1``, else ``"serial"``.

    Span accounting starts at the first submit and advances on every
    gather; :meth:`idle_fraction` is the fraction of ``n_workers × span``
    no worker spent computing — the number the async-overlap benchmark
    reports.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 mode: str = "auto") -> None:
        if n_workers is None:
            n_workers = multiprocessing.cpu_count()
        if n_workers < 1:
            raise SearchError("n_workers must be >= 1")
        if mode not in ("auto", "fork", "thread", "serial"):
            raise SearchError(f"unknown FuturePool mode {mode!r}")
        if mode == "auto":
            mode = ("fork" if n_workers > 1 and _fork_available()
                    else "serial")
        if mode == "fork" and not _fork_available():
            raise SearchError("fork start method unavailable on this "
                              "platform; use mode='thread' or 'serial'")
        self.n_workers = n_workers
        self.mode = mode
        self._pool = None
        self._next_id = 0
        #: Pending tasks in submission order: (task_id, tag, future|thunk).
        self._pending: List[Tuple[int, object, object]] = []
        self.busy_seconds = 0.0      # sum of measured task durations
        self._first_submit: Optional[float] = None
        self._last_gather: Optional[float] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self.mode == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
        return self._pool

    def submit(self, worker: Callable, payload: object,
               tag: object = None) -> int:
        """Queue one task; returns its id.  Never blocks."""
        task_id = self._next_id
        self._next_id += 1
        if self._first_submit is None:
            self._first_submit = time.perf_counter()
        if self.mode == "serial":
            # Deferred thunk: runs inside gather(), so submission really is
            # instantaneous and completion order is FIFO by construction.
            entry = (task_id, tag, (worker, payload))
        else:
            entry = (task_id, tag, self._ensure_pool().submit(worker,
                                                              payload))
        self._pending.append(entry)
        return task_id

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def gather(self, k: int = 1) -> List[TaskResult]:
        """Block until at least ``k`` pending tasks finish; return them
        **in completion order** (FIFO under the serial fallback).  Fewer
        than ``k`` pending gathers everything; ``k <= 0`` is an error."""
        if k <= 0:
            raise SearchError("gather needs k >= 1 (use gather_all)")
        k = min(k, len(self._pending))
        if k == 0:
            return []
        results: List[TaskResult] = []
        if self.mode == "serial":
            take, self._pending = self._pending[:k], self._pending[k:]
            for task_id, tag, (worker, payload) in take:
                try:
                    results.append(TaskResult(task_id, tag, worker(payload)))
                except Exception as exc:
                    results.append(TaskResult(task_id, tag, None, exc))
        else:
            from concurrent.futures import FIRST_COMPLETED, wait

            while len(results) < k:
                futures = {entry[2] for entry in self._pending}
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                still_pending = []
                for entry in self._pending:
                    task_id, tag, future = entry
                    if future in done:
                        try:
                            results.append(TaskResult(task_id, tag,
                                                      future.result()))
                        except Exception as exc:
                            results.append(TaskResult(task_id, tag, None,
                                                      exc))
                    else:
                        still_pending.append(entry)
                self._pending = still_pending
        self._last_gather = time.perf_counter()
        return results

    def gather_all(self) -> List[TaskResult]:
        """Gather every pending task (empty list when nothing is pending)."""
        if not self._pending:
            return []
        return self.gather(len(self._pending))

    # ------------------------------------------------------------------
    def record_busy(self, seconds: float) -> None:
        """Credit measured task-execution time toward utilisation.

        Task durations are opaque to the pool (fork workers run in other
        processes), so callers whose workers self-report duration — the
        chunk functions return ``(rows, seconds)`` — feed it back here;
        :meth:`idle_fraction` is meaningless without it.
        """
        self.busy_seconds += seconds

    def span_seconds(self) -> float:
        """Wall-clock from the first submit to the last gather so far."""
        if self._first_submit is None or self._last_gather is None:
            return 0.0
        return max(0.0, self._last_gather - self._first_submit)

    def idle_fraction(self) -> float:
        """Fraction of worker capacity (``n_workers × span``) left idle."""
        capacity = self.n_workers * self.span_seconds()
        if capacity <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.busy_seconds / capacity)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the backing pool down *now* (idempotent).

        Pending serial thunks are dropped and queued futures cancelled —
        their results would be discarded anyway, and an aborted run must
        not block behind a backlog of straggler chunks; only tasks
        already executing are waited out.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._pending = []

    def __enter__(self) -> "FuturePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# The engine adapter
# ----------------------------------------------------------------------
@dataclass
class AsyncPoolStats:
    """Cumulative accounting of one :class:`AsyncPopulationExecutor`."""

    mode: str = "serial"
    n_workers: int = 1
    dispatches: int = 0       # submit_* calls that shipped >= 1 chunk
    chunks: int = 0           # chunk futures submitted
    # gather() calls that drained >= 1 chunk — landed *or failed*: an
    # all-failure gather still synchronised with the pool, and reports
    # must not understate how often that happened.
    gathers: int = 0
    flushes: int = 0          # on_gather flush-hook invocations
    tasks: int = 0            # candidate rows computed by workers
    merged_rows: int = 0      # cache entries merged
    worker_seconds: float = 0.0
    idle_fraction: float = 0.0
    span_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "dispatches": self.dispatches,
            "chunks": self.chunks,
            "gathers": self.gathers,
            "flushes": self.flushes,
            "tasks": self.tasks,
            "merged_rows": self.merged_rows,
            "worker_seconds": self.worker_seconds,
            "idle_fraction": self.idle_fraction,
            "span_seconds": self.span_seconds,
        }


@dataclass
class GatheredChunk:
    """What one landed chunk contributed (the search loop's event unit)."""

    kind: str                      # "genotype" | "supernet"
    canonical_indices: Tuple[int, ...] = ()   # genotype chunks
    states: Tuple = ()             # supernet chunks
    merged_rows: int = 0
    worker_seconds: float = 0.0


class ChunkGatherError(SearchError):
    """One or more chunk workers raised during a gather.

    The sibling chunks that *did* land are not lost: their rows were
    merged into their engines' caches before this was raised, and they
    ride along as :attr:`gathered` so an error-tolerant caller can still
    react to them (commit candidates, update bookkeeping).  The first
    worker exception is the ``__cause__``; all of them are in
    :attr:`failures`.  If the gather's ``on_gather`` flush hook *also*
    raised, that exception rides along as :attr:`flush_error` (worker
    failures take precedence, but a store problem must stay visible).
    """

    def __init__(self, failures: List[BaseException],
                 gathered: List[GatheredChunk]) -> None:
        super().__init__(
            f"{len(failures)} chunk worker(s) raised during gather "
            f"(first: {failures[0]!r}); {len(gathered)} sibling chunk(s) "
            "landed and merged before the error"
        )
        self.failures = failures
        self.gathered = gathered
        self.flush_error: Optional[BaseException] = None


class _ChunkContext:
    """Submission-time context a gathered chunk needs to merge itself."""

    __slots__ = ("kind", "engine", "proxy_key", "macro_key", "keys")

    def __init__(self, kind: str, engine, proxy_key: Tuple,
                 macro_key: Optional[Tuple], keys: Tuple) -> None:
        self.kind = kind
        self.engine = engine
        self.proxy_key = proxy_key
        self.macro_key = macro_key
        self.keys = keys  # pending-set members to release on landing


class AsyncPopulationExecutor:
    """Submit population chunks as futures; merge results as they land.

    The two halves compose with the engine like this::

        executor.submit_population(engine, candidates)   # never blocks
        ... mutate / select while workers compute ...
        for chunk in executor.gather(1):                 # completion order
            ...react to chunk.canonical_indices...       # rows now cached
        engine.evaluate_population(candidates)           # pure cache reads

    In-flight dedupe: a candidate whose missing indicators are already
    owned by a submitted-but-ungathered chunk is *not* resubmitted —
    mutation loops revisit architectures constantly, and double-computing
    them would waste exactly the capacity the async runtime frees up.

    The synchronous ``warm_population`` / ``warm_supernets`` hooks make
    this a drop-in for :class:`~repro.runtime.pool.PopulationExecutor`
    anywhere an ``executor=`` is accepted.
    """

    def __init__(self, n_workers: Optional[int] = None, chunk_size: int = 8,
                 mode: str = "auto",
                 genotype_worker: Callable = _evaluate_genotype_chunk,
                 supernet_worker: Callable = _evaluate_supernet_chunk,
                 ) -> None:
        if chunk_size < 1:
            raise SearchError("chunk_size must be >= 1")
        self.pool = FuturePool(n_workers=n_workers, mode=mode)
        self.n_workers = self.pool.n_workers
        self.chunk_size = chunk_size
        self.genotype_worker = genotype_worker
        self.supernet_worker = supernet_worker
        self.stats = AsyncPoolStats(mode=self.pool.mode,
                                    n_workers=self.pool.n_workers)
        #: Cache keys owned by in-flight chunks, per engine identity —
        #: the in-flight half of the dedupe (the cache is the landed half).
        self._in_flight: Dict[int, set] = {}
        #: Called after every gather that drained >= 1 chunk, with the
        #: chunks that landed (possibly empty when all failed) — the seam
        #: the harness uses for O(delta) mid-run store flushes, so rows
        #: persist the moment they merge instead of only at run end.
        self.on_gather: Optional[
            Callable[[List["GatheredChunk"]], None]] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _pending_keys(self, engine) -> set:
        return self._in_flight.setdefault(id(engine), set())

    def submit_population(self, engine, genotypes: Sequence[Genotype],
                          with_latency: bool = False,
                          assume_canonical: bool = False) -> int:
        """Submit missing unique-canonical indicator rows; returns the
        number of chunk futures shipped (0 = everything cached or already
        in flight).  Never blocks.  ``with_latency`` is accepted for hook
        compatibility; latency stays in the parent (LUT composition is
        cheap, the profiled estimator lives there)."""
        proxy_key = astuple(engine.proxy_config)
        macro_key = astuple(engine.macro_config)
        pending = self._pending_keys(engine)
        missing: List[Tuple] = []   # (ops, need mask)
        claimed: List[Tuple] = []   # keys each list item claims
        seen = set()
        for genotype in genotypes:
            canon = (genotype if assume_canonical
                     else canonicalize(genotype))
            index = canon.to_index()
            if index in seen:
                continue
            seen.add(index)
            keys = genotype_indicator_keys(index, proxy_key, macro_key)
            names = ("ntk", "linear_regions", "flops")
            needs = tuple(
                keys[name] not in engine.cache and keys[name] not in pending
                for name in names
            )
            if any(needs):
                missing.append((canon.ops, needs))
                claimed.append(tuple(keys[name]
                                     for name, need in zip(names, needs)
                                     if need))
        return self._ship("genotype", engine, missing, claimed,
                          lambda chunk: (tuple(chunk), engine.proxy_config,
                                         engine.macro_config),
                          self.genotype_worker, proxy_key, macro_key)

    def submit_supernets(self, engine, spec_lists: Sequence[Sequence]
                         ) -> int:
        """Submit missing supernet-state rows; returns chunks shipped."""
        proxy_key = astuple(engine.proxy_config)
        pending = self._pending_keys(engine)
        missing: List[Tuple] = []
        claimed: List[Tuple] = []
        seen = set()
        for specs in spec_lists:
            state = supernet_state_key(specs)
            if state in seen:
                continue
            seen.add(state)
            keys = supernet_indicator_keys(state, proxy_key)
            names = ("supernet_ntk", "supernet_lr")
            needs = tuple(
                keys[name] not in engine.cache and keys[name] not in pending
                for name in names
            )
            if any(needs):
                missing.append((state, needs))
                claimed.append(tuple(keys[name]
                                     for name, need in zip(names, needs)
                                     if need))
        return self._ship("supernet", engine, missing, claimed,
                          lambda chunk: (tuple(chunk), engine.proxy_config),
                          self.supernet_worker, proxy_key, None)

    def _ship(self, kind: str, engine, missing: List[Tuple],
              claimed: List[Tuple], build_payload, worker,
              proxy_key: Tuple, macro_key: Optional[Tuple]) -> int:
        if not missing:
            return 0
        pending = self._pending_keys(engine)
        shipped = 0
        for chunk_index in range(0, len(missing), self.chunk_size):
            chunk = missing[chunk_index:chunk_index + self.chunk_size]
            chunk_keys = tuple(
                key
                for claims in claimed[chunk_index:chunk_index
                                      + self.chunk_size]
                for key in claims
            )
            pending.update(chunk_keys)
            context = _ChunkContext(kind, engine, proxy_key, macro_key,
                                    chunk_keys)
            self.pool.submit(worker, build_payload(chunk), tag=context)
            shipped += 1
        self.stats.dispatches += 1
        self.stats.chunks += shipped
        return shipped

    # ------------------------------------------------------------------
    # Gathering
    # ------------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        """Chunk futures submitted but not yet gathered."""
        return self.pool.num_pending

    def gather(self, k: int = 1) -> List[GatheredChunk]:
        """Block until ``k`` chunks land; merge each into its engine's
        cache immediately and return them in completion order.  Gathers
        everything when fewer than ``k`` chunks are pending; returns
        ``[]`` when nothing is.

        A chunk whose worker raised surfaces as :class:`ChunkGatherError`
        — but only after the sibling chunks gathered in the same call
        have merged (they ride along on the error's ``gathered``
        attribute) and the failed chunk's in-flight key claims have been
        released, so the executor stays drainable and the candidates can
        be resubmitted (or computed serially by the engine).
        """
        gathered: List[GatheredChunk] = []
        failures: List[BaseException] = []
        results = self.pool.gather(k)
        for result in results:
            context: _ChunkContext = result.tag
            if result.error is not None:
                self._pending_keys(context.engine).difference_update(
                    context.keys
                )
                failures.append(result.error)
                continue
            rows, seconds = result.value
            engine = context.engine
            keyed: List[Tuple[Tuple, float]] = []
            indices: List[int] = []
            states: List[Tuple] = []
            for identity, row in rows:
                if context.kind == "genotype":
                    keys = genotype_indicator_keys(identity,
                                                   context.proxy_key,
                                                   context.macro_key)
                    indices.append(identity)
                else:
                    keys = supernet_indicator_keys(identity,
                                                   context.proxy_key)
                    states.append(identity)
                for name, value in row.items():
                    keyed.append((keys[name], value))
            merged = engine.merge_indicator_rows(keyed)
            self._pending_keys(engine).difference_update(context.keys)
            self.pool.record_busy(seconds)
            engine.ledger.add("pool_eval", seconds=seconds, count=len(rows))
            self.stats.tasks += len(rows)
            self.stats.merged_rows += merged
            self.stats.worker_seconds += seconds
            gathered.append(GatheredChunk(
                kind=context.kind,
                canonical_indices=tuple(indices),
                states=tuple(states),
                merged_rows=merged,
                worker_seconds=seconds,
            ))
        if results:
            # Count the gather even when every chunk in it failed —
            # the loop still synchronised with the pool, and reports
            # must not understate that.
            self.stats.gathers += 1
        self.stats.idle_fraction = self.pool.idle_fraction()
        self.stats.span_seconds = self.pool.span_seconds()
        flush_error: Optional[BaseException] = None
        if results and self.on_gather is not None:
            # Flush before surfacing failures: the sibling chunks that
            # landed are already merged and deserve to be persisted.
            self.stats.flushes += 1
            try:
                self.on_gather(gathered)
            except Exception as exc:
                # Never let a store hiccup mask ChunkGatherError — the
                # caller needs the worker failures and landed chunks it
                # carries.  With no worker failures the flush error
                # surfaces itself (and a transient one re-surfaces on
                # the next gather anyway, when the rows are re-flushed).
                flush_error = exc
        if failures:
            error = ChunkGatherError(failures, gathered)
            error.flush_error = flush_error  # don't swallow a store error
            raise error from failures[0]
        if flush_error is not None:
            raise flush_error
        return gathered

    def gather_all(self) -> List[GatheredChunk]:
        """Gather every in-flight chunk (the barrier the sync hooks use)."""
        if self.num_pending == 0:
            return []
        return self.gather(self.num_pending)

    # ------------------------------------------------------------------
    # Synchronous executor hooks (drop-in for PopulationExecutor)
    # ------------------------------------------------------------------
    def warm_population(self, engine, genotypes: Sequence[Genotype],
                        with_latency: bool = False,
                        assume_canonical: bool = True) -> int:
        """Submit + gather-all: the blocking hook the engine duck-types.

        Note the ``assume_canonical`` default matches
        :meth:`~repro.runtime.pool.PopulationExecutor.warm_population`
        (the engine passes already-canonical forms), while
        :meth:`submit_population` defaults to ``False`` because search
        loops submit raw mutants directly.
        """
        self.submit_population(engine, genotypes, with_latency=with_latency,
                               assume_canonical=assume_canonical)
        return sum(chunk.merged_rows for chunk in self.gather_all())

    def warm_supernets(self, engine, spec_lists: Sequence[Sequence]) -> int:
        self.submit_supernets(engine, spec_lists)
        return sum(chunk.merged_rows for chunk in self.gather_all())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the transport down (idempotent; in-flight bookkeeping is
        cleared so a closed executor can be reused serially)."""
        self.pool.close()
        self._in_flight.clear()

    def __enter__(self) -> "AsyncPopulationExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "AsyncPopulationExecutor",
    "AsyncPoolStats",
    "ChunkGatherError",
    "FuturePool",
    "GatheredChunk",
    "TaskResult",
]
