"""Futures-per-chunk asynchronous population evaluation.

PR 2's :class:`~repro.runtime.pool.PopulationExecutor` is a *barrier*
executor: ``warm_population`` blocks until every chunk of a population has
been computed, so a search loop sits idle while the slowest chunk
finishes.  This module splits that barrier into DeepHyper-style
**submit/gather** halves (their evaluator abstraction keeps ``num_workers``
jobs in flight and lets the search react to whichever result lands first):

* :class:`FuturePool` — the transport: submit picklable ``(worker,
  payload)`` tasks, gather completed results **in completion order**, with
  a serial fallback that defers execution to gather time so single-process
  runs interleave exactly like a pool would (FIFO completion).  It also
  accounts busy/span time, from which the worker idle fraction is derived.
* :class:`AsyncPopulationExecutor` — the engine adapter:
  :meth:`~AsyncPopulationExecutor.submit_population` dedupes a population
  against the cache *and against chunks already in flight*, ships one
  future per ``chunk_size`` candidates, and :meth:`~AsyncPopulationExecutor.
  gather` merges each chunk's indicator rows into the shared
  :class:`~repro.engine.cache.IndicatorCache` the moment it lands — via
  :meth:`~repro.engine.core.Engine.merge_indicator_rows`, under the
  engine's exact cache keys.

**Determinism.**  Indicator values are bit-identical to serial evaluation
no matter how futures resolve: every proxy seeds its RNG from the
canonical key, merges are first-write-wins under unique keys, and the
engine's serial assembly pass (``evaluate_population``) reads the cache in
request order.  Completion order can therefore reorder *when* rows land,
never *what* they say — the property the completion-order fuzzing tests
pin down.

**Fault tolerance.**  Both layers carry the failure semantics a worker
fleet needs (policy objects in :mod:`repro.runtime.faults`):

* the transport enforces per-chunk deadlines (``chunk_timeout``), counts
  hung futures it had to abandon, and survives pool death
  (``BrokenProcessPool``): it terminates the carcass, spawns a fresh
  pool, and resubmits every lost in-flight task exactly once per death,
  up to ``max_respawns``;
* the executor — when given a :class:`~repro.runtime.faults.FaultPolicy`
  — classifies chunk failures: *transient* ones retry with deterministic
  exponential backoff under a retry budget; *poison* ones bisect, so one
  bad genotype cannot sink its chunk-mates, and the lone offender left
  at the bottom lands in the (optionally persistent)
  :class:`~repro.runtime.faults.QuarantineLedger`, after which it is
  never shipped again.  Without a policy the legacy semantics hold: any
  worker failure surfaces as :class:`ChunkGatherError` after siblings
  merge.

The executor also implements the synchronous ``warm_population`` /
``warm_supernets`` hooks (submit + gather-all), so it is a drop-in
``executor=`` for every existing search loop; the steady-state
evolutionary search (:class:`~repro.search.evolutionary.
SteadyStateEvolutionarySearch`) is the loop that actually exploits the
split halves.

Worker functions are injectable (``genotype_worker=`` /
``supernet_worker=``): the seam through which a remote transport (or a
test/benchmark wrapping workers with simulated device latency — or a
:class:`~repro.runtime.faults.FaultPlan` injecting scripted failures)
plugs in without touching scheduling.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import BrokenExecutor
from dataclasses import astuple, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.core import supernet_state_key
from repro.errors import SearchError
from repro.runtime.faults import (
    POISON,
    TRANSIENT,
    ChunkTimeoutError,
    FaultPolicy,
    chunk_item_identity,
    classify_failure,
)
from repro.runtime.pool import (
    _chunked,
    _evaluate_genotype_chunk,
    _evaluate_supernet_chunk,
    _fork_available,
    genotype_indicator_keys,
    supernet_indicator_keys,
)
from repro.runtime.telemetry import Telemetry
from repro.runtime.tracing import (
    CAT_DISPATCH,
    CAT_FAULT,
    CAT_GATHER,
    CAT_MERGE,
)
from repro.searchspace.canonical import canonicalize
from repro.searchspace.genotype import Genotype


# ----------------------------------------------------------------------
# The transport: submit/gather over futures with a serial-lazy fallback
# ----------------------------------------------------------------------
@dataclass
class TaskResult:
    """One completed task, in the order :meth:`FuturePool.gather` saw it.

    A task whose worker raised completes with ``error`` set and ``value``
    ``None`` — it still leaves the pending queue, so one poisoned chunk
    can neither wedge the pool nor drop the results of siblings gathered
    in the same call.  A task that outlived its deadline completes with a
    :class:`~repro.runtime.faults.ChunkTimeoutError`.
    """

    task_id: int
    tag: object
    value: object
    error: Optional[BaseException] = None


class _PendingTask:
    """One submitted-but-ungathered task.

    Keeps the worker and payload alongside the live future so the pool
    can *resubmit* the task after a pool death (``future`` is replaced,
    identity and tag survive).  The pending list stays a plain reorderable
    list of these — the completion-order fuzzing harness permutes it.
    """

    __slots__ = ("task_id", "tag", "worker", "payload", "future", "deadline")

    def __init__(self, task_id: int, tag: object, worker: Callable,
                 payload: object, future: object,
                 deadline: Optional[float]) -> None:
        self.task_id = task_id
        self.tag = tag
        self.worker = worker
        self.payload = payload
        self.future = future      # None under the serial fallback
        self.deadline = deadline  # monotonic seconds; None = no deadline


class FuturePool:
    """Submit tasks now, collect whichever finishes first later.

    ``mode`` selects the backend:

    * ``"fork"`` — a fork-based :class:`~concurrent.futures.
      ProcessPoolExecutor` (workers inherit the pure-NumPy substrate);
    * ``"thread"`` — a thread pool (useful for workloads that release the
      GIL or mostly wait, e.g. simulated device-profiling latency);
    * ``"serial"`` — no pool at all: tasks are queued as thunks and run
      lazily, FIFO, inside :meth:`gather` — the completion order a
      single-worker pool would produce, without fork overhead;
    * ``"auto"`` (default) — ``"fork"`` when available and
      ``n_workers > 1``, else ``"serial"``.

    **Deadlines.**  With ``chunk_timeout`` set, a task that *runs* longer
    than the timeout is expired during :meth:`gather`: its future is
    cancelled, and it completes with a :class:`~repro.runtime.faults.
    ChunkTimeoutError`.  The clock starts when the task starts executing
    (queued tasks don't age).  A running future usually cannot be
    cancelled — the worker is *hung* and keeps occupying its slot; the
    pool tracks these and, once every worker is wedged behind one,
    respawns the backend (fork workers are terminated; threads cannot be
    killed and leak until they return — use fork mode when workers can
    genuinely hang).

    **Pool death.**  ``BrokenProcessPool`` (a worker died mid-task, e.g.
    segfault or ``os._exit``) does not kill the run: the pool terminates
    the broken backend, spawns a fresh one and resubmits every lost
    in-flight task exactly once per death.  Each recovery — death or
    hung-worker sweep — spends one unit of the ``max_respawns`` budget;
    past the budget, pending tasks complete with the error instead.

    Span accounting starts at the first submit and advances on every
    gather; :meth:`idle_fraction` is the fraction of ``n_workers × span``
    no worker spent computing — the number the async-overlap benchmark
    reports.
    """

    #: Poll interval while waiting for queued tasks to start running
    #: (only relevant when a deadline is configured).
    _POLL_SECONDS = 0.05

    def __init__(self, n_workers: Optional[int] = None,
                 mode: str = "auto",
                 chunk_timeout: Optional[float] = None,
                 max_respawns: int = 3,
                 telemetry: Optional[Telemetry] = None) -> None:
        if n_workers is None:
            n_workers = multiprocessing.cpu_count()
        if n_workers < 1:
            raise SearchError("n_workers must be >= 1")
        if mode not in ("auto", "fork", "thread", "serial"):
            raise SearchError(f"unknown FuturePool mode {mode!r}")
        if mode == "auto":
            mode = ("fork" if n_workers > 1 and _fork_available()
                    else "serial")
        if mode == "fork" and not _fork_available():
            raise SearchError("fork start method unavailable on this "
                              "platform; use mode='thread' or 'serial'")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise SearchError("chunk_timeout must be positive (or None)")
        self.n_workers = n_workers
        self.mode = mode
        self.chunk_timeout = chunk_timeout
        self.max_respawns = max_respawns
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        self._pool = None
        self._next_id = 0
        #: Pending tasks in submission order.
        self._pending: List[_PendingTask] = []
        #: Abandoned (timed-out, uncancellable) futures still occupying
        #: worker slots.
        self._hung: List[object] = []
        self.timeouts = 0            # tasks expired past their deadline
        self.respawns = 0            # backend recoveries performed
        self.busy_seconds = 0.0      # sum of measured task durations
        self._busy_reported = False  # has record_busy ever been fed?
        self._first_submit: Optional[float] = None
        self._last_gather: Optional[float] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self.mode == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
        return self._pool

    def _deadline(self) -> Optional[float]:
        if self.chunk_timeout is None:
            return None
        return time.monotonic() + self.chunk_timeout

    def submit(self, worker: Callable, payload: object,
               tag: object = None) -> int:
        """Queue one task; returns its id.  Never blocks.

        Submitting into a broken pool respawns it first (within the
        respawn budget) instead of propagating ``BrokenProcessPool``.
        """
        task_id = self._next_id
        self._next_id += 1
        if self._first_submit is None:
            self._first_submit = time.perf_counter()
        if self.mode == "serial":
            # Deferred thunk: runs inside gather(), so submission really is
            # instantaneous and completion order is FIFO by construction.
            future = None
        else:
            try:
                future = self._ensure_pool().submit(worker, payload)
            except (BrokenExecutor, RuntimeError):
                # Broken (or shut-down-by-breakage) backend: recover and
                # retry once; a spent budget propagates the failure.
                if not self._respawn():
                    raise
                future = self._ensure_pool().submit(worker, payload)
        self._pending.append(_PendingTask(task_id, tag, worker, payload,
                                          future, self._deadline()))
        if self.telemetry.enabled:
            self.telemetry.gauge("pool.queue_depth", len(self._pending))
            self.telemetry.observe("queue_depth", len(self._pending))
        return task_id

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------
    def _respawn(self) -> bool:
        """Replace the backend and resubmit every pending task.

        Returns ``False`` (doing nothing) when the respawn budget is
        spent.  Fork workers of the old backend are terminated first so
        hung or crashed processes don't linger.
        """
        if self.respawns >= self.max_respawns:
            return False
        self.respawns += 1
        self.telemetry.count("pool.respawns")
        with self.telemetry.span("pool_respawn", CAT_FAULT,
                                 resubmitted=len(self._pending)):
            pool, self._pool = self._pool, None
            self._hung = []
            if pool is not None:
                for process in list((getattr(pool, "_processes", None)
                                     or {}).values()):
                    try:
                        process.terminate()
                    except Exception:
                        pass
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
            fresh = self._ensure_pool()
            for task in self._pending:
                task.future = fresh.submit(task.worker, task.payload)
                task.deadline = self._deadline()
        return True

    def _expire_overdue(self, results: List[TaskResult]) -> None:
        """Expire running tasks past their deadline into ``results``."""
        if self.chunk_timeout is None:
            return
        now = time.monotonic()
        still: List[_PendingTask] = []
        for task in self._pending:
            future = task.future
            if future.done():
                still.append(task)  # collected by the wait path
            elif not future.running():
                # Still queued: the deadline clock starts at dispatch.
                task.deadline = now + self.chunk_timeout
                still.append(task)
            elif task.deadline is not None and now >= task.deadline:
                self.timeouts += 1
                self.telemetry.count("pool.timeouts")
                if not future.cancel():
                    # Uncancellable = genuinely executing = hung worker.
                    self._hung.append(future)
                results.append(TaskResult(
                    task.task_id, task.tag, None,
                    ChunkTimeoutError(
                        f"chunk exceeded its {self.chunk_timeout:g}s "
                        "deadline"),
                ))
            else:
                still.append(task)
        self._pending = still

    def _expire_all(self, results: List[TaskResult],
                    error: Optional[BaseException] = None) -> None:
        """Fail every pending task (respawn budget spent, can't progress)."""
        for task in self._pending:
            if error is None:
                self.timeouts += 1
                task_error: BaseException = ChunkTimeoutError(
                    "all workers hung and the respawn budget is spent")
            else:
                task_error = error
            results.append(TaskResult(task.task_id, task.tag, None,
                                      task_error))
        self._pending = []

    def _wait_timeout(self) -> Optional[float]:
        """How long the next ``wait`` may block before a deadline check."""
        if self.chunk_timeout is None:
            return None
        deadlines = [task.deadline for task in self._pending
                     if task.deadline is not None and task.future.running()]
        if not deadlines:
            return self._POLL_SECONDS  # queued tasks: poll for startup
        return max(0.0, min(deadlines) - time.monotonic()) + 0.01

    # ------------------------------------------------------------------
    def gather(self, k: int = 1) -> List[TaskResult]:
        """Block until at least ``k`` pending tasks finish; return them
        **in completion order** (FIFO under the serial fallback).  Fewer
        than ``k`` pending gathers everything; ``k <= 0`` is an error."""
        if k <= 0:
            raise SearchError("gather needs k >= 1 (use gather_all)")
        k = min(k, len(self._pending))
        if k == 0:
            return []
        results: List[TaskResult] = []
        if self.mode == "serial":
            take, self._pending = self._pending[:k], self._pending[k:]
            for task in take:
                try:
                    results.append(TaskResult(task.task_id, task.tag,
                                              task.worker(task.payload)))
                except Exception as exc:
                    results.append(TaskResult(task.task_id, task.tag, None,
                                              exc))
        else:
            from concurrent.futures import FIRST_COMPLETED, wait

            while len(results) < k and self._pending:
                self._expire_overdue(results)
                if len(results) >= k or not self._pending:
                    break
                if len(self._hung) >= self.n_workers:
                    # Every worker is wedged behind an abandoned future:
                    # nothing pending can ever start.
                    if not self._respawn():
                        self._expire_all(results)
                        break
                futures = {task.future for task in self._pending}
                done, _ = wait(futures, timeout=self._wait_timeout(),
                               return_when=FIRST_COMPLETED)
                if not done:
                    continue  # deadline sweep runs next iteration
                still_pending: List[_PendingTask] = []
                broken: Optional[BaseException] = None
                for task in self._pending:
                    if task.future not in done:
                        still_pending.append(task)
                        continue
                    try:
                        results.append(TaskResult(task.task_id, task.tag,
                                                  task.future.result()))
                    except BrokenExecutor as exc:
                        # The pool died under this task — keep it (and
                        # everything else) pending for resubmission.
                        broken = exc
                        still_pending.append(task)
                    except Exception as exc:
                        results.append(TaskResult(task.task_id, task.tag,
                                                  None, exc))
                self._pending = still_pending
                if broken is not None and not self._respawn():
                    self._expire_all(results, error=broken)
        self._last_gather = time.perf_counter()
        return results

    def gather_all(self) -> List[TaskResult]:
        """Gather every pending task (empty list when nothing is pending)."""
        if not self._pending:
            return []
        return self.gather(len(self._pending))

    # ------------------------------------------------------------------
    def record_busy(self, seconds: float) -> None:
        """Credit measured task-execution time toward utilisation.

        Task durations are opaque to the pool (fork workers run in other
        processes), so callers whose workers self-report duration — the
        chunk functions return ``(rows, seconds)`` — feed it back here;
        :meth:`idle_fraction` is meaningless without it.
        """
        self.busy_seconds += seconds
        self._busy_reported = True

    def span_seconds(self) -> float:
        """Wall-clock from the first submit to the last gather so far."""
        if self._first_submit is None or self._last_gather is None:
            return 0.0
        return max(0.0, self._last_gather - self._first_submit)

    def idle_fraction(self) -> Optional[float]:
        """Fraction of worker capacity (``n_workers × span``) left idle.

        ``None`` means *no data* — no gather has landed yet, or no caller
        ever fed :meth:`record_busy` — which is distinct from ``0.0``
        ("fully utilised").  Conflating the two made fresh pools read as
        perfectly busy in reports.
        """
        if not self._busy_reported:
            return None
        capacity = self.n_workers * self.span_seconds()
        if capacity <= 0.0:
            return None
        return max(0.0, 1.0 - self.busy_seconds / capacity)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the backing pool down *now* (idempotent, never raises).

        Pending serial thunks are dropped and queued futures cancelled —
        their results would be discarded anyway, and an aborted run must
        not block behind a backlog of straggler chunks; only tasks
        already executing are waited out.  A broken backend or hung
        workers cannot make close raise or block: with hung workers the
        shutdown doesn't wait (fork workers are terminated outright), so
        harness cleanup never masks the failure that triggered it.
        """
        pool, self._pool = self._pool, None
        self._pending = []
        hung, self._hung = bool(self._hung), []
        if pool is None:
            return
        try:
            if hung:
                for process in list((getattr(pool, "_processes", None)
                                     or {}).values()):
                    try:
                        process.terminate()
                    except Exception:
                        pass
            pool.shutdown(wait=not hung, cancel_futures=True)
        except Exception:
            # A pool that broke mid-run may fail its own shutdown;
            # cleanup must stay silent so the original error surfaces.
            pass

    def __enter__(self) -> "FuturePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# The engine adapter
# ----------------------------------------------------------------------
@dataclass
class AsyncPoolStats:
    """Cumulative accounting of one :class:`AsyncPopulationExecutor`."""

    mode: str = "serial"
    n_workers: int = 1
    dispatches: int = 0       # submit_* calls that shipped >= 1 chunk
    chunks: int = 0           # chunk futures submitted
    # gather() calls that drained >= 1 chunk — landed *or failed*: an
    # all-failure gather still synchronised with the pool, and reports
    # must not understate how often that happened.
    gathers: int = 0
    flushes: int = 0          # on_gather flush-hook invocations
    tasks: int = 0            # candidate rows computed by workers
    merged_rows: int = 0      # cache entries merged
    # Candidates skipped at submit time because a submitted-but-ungathered
    # chunk already owned every key they were missing.
    dedupe_hits: int = 0
    retries: int = 0          # transient chunk failures retried
    timeouts: int = 0         # chunks expired past their deadline
    respawns: int = 0         # pool backends replaced after death/hang
    quarantined: int = 0      # poison candidates quarantined
    worker_seconds: float = 0.0
    # None = no utilisation data yet (nothing gathered / record_busy never
    # fed) — deliberately distinct from 0.0, "no idle at all".
    idle_fraction: Optional[float] = None
    span_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "dispatches": self.dispatches,
            "chunks": self.chunks,
            "gathers": self.gathers,
            "flushes": self.flushes,
            "tasks": self.tasks,
            "merged_rows": self.merged_rows,
            "dedupe_hits": self.dedupe_hits,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "quarantined": self.quarantined,
            "worker_seconds": self.worker_seconds,
            "idle_fraction": self.idle_fraction,
            "span_seconds": self.span_seconds,
        }


@dataclass
class GatheredChunk:
    """What one landed chunk contributed (the search loop's event unit).

    A quarantine event surfaces as a chunk with empty indices/states and
    the offender in ``quarantined_indices`` / ``quarantined_states`` —
    the search loop's signal to stop waiting for (and stop re-proposing)
    that candidate.
    """

    kind: str                      # "genotype" | "supernet"
    canonical_indices: Tuple[int, ...] = ()   # genotype chunks
    states: Tuple = ()             # supernet chunks
    merged_rows: int = 0
    worker_seconds: float = 0.0
    quarantined_indices: Tuple[int, ...] = ()
    quarantined_states: Tuple = ()


class ChunkGatherError(SearchError):
    """One or more chunk workers raised during a gather.

    The sibling chunks that *did* land are not lost: their rows were
    merged into their engines' caches before this was raised, and they
    ride along as :attr:`gathered` so an error-tolerant caller can still
    react to them (commit candidates, update bookkeeping).  The first
    worker exception is the ``__cause__``; all of them are in
    :attr:`failures`.  If the gather's ``on_gather`` flush hook *also*
    raised, that exception rides along as :attr:`flush_error` (worker
    failures take precedence, but a store problem must stay visible).
    """

    def __init__(self, failures: List[BaseException],
                 gathered: List[GatheredChunk]) -> None:
        super().__init__(
            f"{len(failures)} chunk worker(s) raised during gather "
            f"(first: {failures[0]!r}); {len(gathered)} sibling chunk(s) "
            "landed and merged before the error"
        )
        self.failures = failures
        self.gathered = gathered
        self.flush_error: Optional[BaseException] = None


class _ChunkContext:
    """Submission-time context a gathered chunk needs to merge itself —
    and, under a fault policy, to retry, bisect or quarantine itself:
    the chunk's items and per-item key claims ride along so a failed
    chunk can be resubmitted (or split) without re-deriving anything."""

    __slots__ = ("kind", "engine", "proxy_key", "macro_key", "keys",
                 "worker", "build_payload", "items", "item_claims",
                 "attempts", "chunk_id")

    def __init__(self, kind: str, engine, proxy_key: Tuple,
                 macro_key: Optional[Tuple], worker: Callable,
                 build_payload: Callable, items: Tuple,
                 item_claims: Tuple, attempts: int = 0,
                 chunk_id: Optional[int] = None) -> None:
        self.kind = kind
        self.engine = engine
        self.proxy_key = proxy_key
        self.macro_key = macro_key
        self.worker = worker
        self.build_payload = build_payload
        self.items = items              # the (head, needs) chunk slice
        self.item_claims = item_claims  # per-item claimed key tuples
        self.attempts = attempts        # completed attempts of THIS chunk
        #: Telemetry correlation key: ties the chunk's dispatch span to
        #: its worker-compute and merge spans across retries/bisection.
        self.chunk_id = chunk_id
        #: Pending-set members to release on landing (all claims, flat).
        self.keys = tuple(key for claims in item_claims for key in claims)

    def split(self) -> Tuple["_ChunkContext", "_ChunkContext"]:
        """Bisect into two halves (claims follow their items; halves keep
        the parent's chunk id so the trace shows one lineage)."""
        mid = len(self.items) // 2
        halves = []
        for lo, hi in ((0, mid), (mid, len(self.items))):
            halves.append(_ChunkContext(
                self.kind, self.engine, self.proxy_key, self.macro_key,
                self.worker, self.build_payload,
                self.items[lo:hi], self.item_claims[lo:hi], attempts=0,
                chunk_id=self.chunk_id,
            ))
        return halves[0], halves[1]


class AsyncPopulationExecutor:
    """Submit population chunks as futures; merge results as they land.

    The two halves compose with the engine like this::

        executor.submit_population(engine, candidates)   # never blocks
        ... mutate / select while workers compute ...
        for chunk in executor.gather(1):                 # completion order
            ...react to chunk.canonical_indices...       # rows now cached
        engine.evaluate_population(candidates)           # pure cache reads

    In-flight dedupe: a candidate whose missing indicators are already
    owned by a submitted-but-ungathered chunk is *not* resubmitted —
    mutation loops revisit architectures constantly, and double-computing
    them would waste exactly the capacity the async runtime frees up.

    **Fault policy.**  Pass ``fault_policy=`` to enable failure recovery
    (and ``quarantine_ledger=`` to persist quarantine decisions in the
    store directory): transient failures retry with deterministic
    backoff, poison chunks bisect down to the offending candidate which
    is quarantined and never re-shipped — submits consult the quarantine
    sets, which are seeded from the ledger, so a restart keeps earlier
    decisions.  Without a policy, failures raise :class:`ChunkGatherError`
    exactly as before.

    The synchronous ``warm_population`` / ``warm_supernets`` hooks make
    this a drop-in for :class:`~repro.runtime.pool.PopulationExecutor`
    anywhere an ``executor=`` is accepted.
    """

    def __init__(self, n_workers: Optional[int] = None, chunk_size: int = 8,
                 mode: str = "auto",
                 genotype_worker: Callable = _evaluate_genotype_chunk,
                 supernet_worker: Callable = _evaluate_supernet_chunk,
                 fault_policy: Optional[FaultPolicy] = None,
                 quarantine_ledger=None,
                 telemetry: Optional[Telemetry] = None,
                 cache_loader: Optional[Callable] = None,
                 pool=None,
                 ) -> None:
        if chunk_size < 1:
            raise SearchError("chunk_size must be >= 1")
        self.fault_policy = fault_policy
        self.quarantine_ledger = quarantine_ledger
        #: Optional warm-start hook: called at submit time with the
        #: candidate cache keys neither cached nor owned by an in-flight
        #: chunk, and expected to merge whatever the persistent store
        #: holds for them into the engine's cache (the harness wires it
        #: to a shard-selective / indexed store read — see
        #: ``RuntimeConfig.store_read_mode``).  Keys the loader fills are
        #: then never shipped for recompute.
        self.cache_loader = cache_loader
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        if pool is not None:
            # Transport injection: anything honouring the FuturePool
            # submit/gather contract (e.g. the fleet's socket-broker
            # FleetPool) slots in here; scheduling, dedupe, fault policy
            # and drain logic below never look past the contract.
            self.pool = pool
        else:
            self.pool = FuturePool(
                n_workers=n_workers, mode=mode,
                chunk_timeout=(fault_policy.chunk_timeout
                               if fault_policy else None),
                max_respawns=(fault_policy.max_respawns
                              if fault_policy else 3),
                telemetry=self.telemetry,
            )
        self.n_workers = self.pool.n_workers
        self.chunk_size = chunk_size
        self.genotype_worker = genotype_worker
        self.supernet_worker = supernet_worker
        self.stats = AsyncPoolStats(mode=self.pool.mode,
                                    n_workers=self.pool.n_workers)
        #: Monotone chunk ids — the telemetry correlation key tying a
        #: dispatch span to its worker-compute and merge spans.
        self._next_chunk_id = 0
        #: Cache keys owned by in-flight chunks, per engine identity —
        #: the in-flight half of the dedupe (the cache is the landed half).
        self._in_flight: Dict[int, set] = {}
        #: Quarantined candidate identities — consulted at submit time so
        #: a poison candidate is never shipped again.  Seeded from the
        #: ledger (when given), so the set survives restarts.
        self.quarantined_genotypes: set = set()
        self.quarantined_states: set = set()
        if quarantine_ledger is not None:
            self.quarantined_genotypes |= quarantine_ledger.identities(
                "genotype")
            self.quarantined_states |= quarantine_ledger.identities(
                "supernet")
        #: Set by :meth:`request_drain` (the harness's signal handlers):
        #: search loops consult it to stop proposing new work while the
        #: executor stays fully functional for gathering what's in flight.
        self.drain_requested = False
        #: Called after every gather that drained >= 1 chunk, with the
        #: chunks that landed (possibly empty when all failed) — the seam
        #: the harness uses for O(delta) mid-run store flushes, so rows
        #: persist the moment they merge instead of only at run end.
        self.on_gather: Optional[
            Callable[[List["GatheredChunk"]], None]] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _pending_keys(self, engine) -> set:
        return self._in_flight.setdefault(id(engine), set())

    def _preload(self, engine, pending: set, key_sets: List[Dict]) -> None:
        """Give :attr:`cache_loader` one shot at the candidate keys that
        are neither cached nor in flight, before needs masks are computed
        — rows it pulls from the store are never shipped for recompute.
        In-flight keys are excluded: their chunk already owns them, and
        the store cannot have them yet anyway."""
        if self.cache_loader is None:
            return
        wanted = [key for keys in key_sets for key in keys.values()
                  if key not in engine.cache and key not in pending]
        if wanted:
            self.cache_loader(wanted)

    def request_drain(self) -> None:
        """Ask search loops to stop proposing new work (sticky flag).

        Gathering, merging and store flushing stay fully functional —
        drain means *finish what's in flight, start nothing new*.
        """
        self.drain_requested = True

    def submit_population(self, engine, genotypes: Sequence[Genotype],
                          with_latency: bool = False,
                          assume_canonical: bool = False) -> int:
        """Submit missing unique-canonical indicator rows; returns the
        number of chunk futures shipped (0 = everything cached or already
        in flight).  Never blocks.  Quarantined candidates are skipped.
        ``with_latency`` is accepted for hook compatibility; latency
        stays in the parent (LUT composition is cheap, the profiled
        estimator lives there)."""
        proxy_key = astuple(engine.proxy_config)
        macro_key = astuple(engine.macro_config)
        pending = self._pending_keys(engine)
        candidates: List[Tuple] = []  # (canon, key dict), unique
        seen = set()
        for genotype in genotypes:
            canon = (genotype if assume_canonical
                     else canonicalize(genotype))
            index = canon.to_index()
            if index in seen or index in self.quarantined_genotypes:
                continue
            seen.add(index)
            candidates.append(
                (canon, genotype_indicator_keys(index, proxy_key,
                                                macro_key)))
        self._preload(engine, pending, [keys for _, keys in candidates])
        missing: List[Tuple] = []   # (ops, need mask)
        claimed: List[Tuple] = []   # keys each list item claims
        for canon, keys in candidates:
            names = ("ntk", "linear_regions", "flops")
            needs = tuple(
                keys[name] not in engine.cache and keys[name] not in pending
                for name in names
            )
            if any(needs):
                missing.append((canon.ops, needs))
                claimed.append(tuple(keys[name]
                                     for name, need in zip(names, needs)
                                     if need))
            elif any(keys[name] in pending for name in names):
                # Nothing to ship, but only because an in-flight chunk
                # already owns the missing keys: an in-flight dedupe hit.
                self.stats.dedupe_hits += 1
                self.telemetry.count("executor.dedupe_hits")
        return self._ship("genotype", engine, missing, claimed,
                          lambda chunk: (tuple(chunk), engine.proxy_config,
                                         engine.macro_config),
                          self.genotype_worker, proxy_key, macro_key)

    def submit_supernets(self, engine, spec_lists: Sequence[Sequence]
                         ) -> int:
        """Submit missing supernet-state rows; returns chunks shipped."""
        proxy_key = astuple(engine.proxy_config)
        pending = self._pending_keys(engine)
        candidates: List[Tuple] = []  # (state, key dict), unique
        seen = set()
        for specs in spec_lists:
            state = supernet_state_key(specs)
            if state in seen or state in self.quarantined_states:
                continue
            seen.add(state)
            candidates.append(
                (state, supernet_indicator_keys(state, proxy_key)))
        self._preload(engine, pending, [keys for _, keys in candidates])
        missing: List[Tuple] = []
        claimed: List[Tuple] = []
        for state, keys in candidates:
            names = ("supernet_ntk", "supernet_lr")
            needs = tuple(
                keys[name] not in engine.cache and keys[name] not in pending
                for name in names
            )
            if any(needs):
                missing.append((state, needs))
                claimed.append(tuple(keys[name]
                                     for name, need in zip(names, needs)
                                     if need))
            elif any(keys[name] in pending for name in names):
                self.stats.dedupe_hits += 1
                self.telemetry.count("executor.dedupe_hits")
        return self._ship("supernet", engine, missing, claimed,
                          lambda chunk: (tuple(chunk), engine.proxy_config),
                          self.supernet_worker, proxy_key, None)

    def _ship(self, kind: str, engine, missing: List[Tuple],
              claimed: List[Tuple], build_payload, worker,
              proxy_key: Tuple, macro_key: Optional[Tuple]) -> int:
        if not missing:
            return 0
        tel = self.telemetry
        pending = self._pending_keys(engine)
        shipped = 0
        for chunk_index in range(0, len(missing), self.chunk_size):
            chunk = tuple(missing[chunk_index:chunk_index + self.chunk_size])
            chunk_claims = tuple(
                claimed[chunk_index:chunk_index + self.chunk_size])
            chunk_id = self._next_chunk_id
            self._next_chunk_id += 1
            context = _ChunkContext(kind, engine, proxy_key, macro_key,
                                    worker, build_payload, chunk,
                                    chunk_claims, chunk_id=chunk_id)
            pending.update(context.keys)
            with tel.span("dispatch", CAT_DISPATCH, chunk=chunk_id,
                          kind=kind, items=len(chunk)):
                self.pool.submit(
                    tel.wrap_worker(
                        worker, chunk=chunk_id,
                        local=self.pool.mode in ("serial", "thread")),
                    build_payload(chunk), tag=context)
            shipped += 1
        self.stats.dispatches += 1
        self.stats.chunks += shipped
        if tel.enabled:
            tel.gauge("executor.in_flight", self.pool.num_pending)
        return shipped

    def _resubmit(self, context: _ChunkContext) -> None:
        """Ship a retry/bisection context (claims are already held)."""
        tel = self.telemetry
        with tel.span("dispatch", CAT_DISPATCH, chunk=context.chunk_id,
                      kind=context.kind, items=len(context.items),
                      resubmit=True):
            self.pool.submit(
                tel.wrap_worker(
                    context.worker, chunk=context.chunk_id,
                    local=self.pool.mode in ("serial", "thread")),
                context.build_payload(context.items), tag=context)

    # ------------------------------------------------------------------
    # Gathering
    # ------------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        """Chunk futures submitted but not yet gathered."""
        return self.pool.num_pending

    def _merge_landed(self, context: _ChunkContext,
                      value: Tuple) -> GatheredChunk:
        """Merge one landed chunk into its engine's cache; release its
        claims; return the search-loop event."""
        tel = self.telemetry
        if not tel.enabled:
            return self._merge_landed_impl(context, value)
        with tel.span("merge", CAT_MERGE, chunk=context.chunk_id,
                      kind=context.kind) as span:
            chunk = self._merge_landed_impl(context, value)
            evals = len(chunk.canonical_indices) + len(chunk.states)
            span.note(rows=evals, merged=chunk.merged_rows)
            tel.count("executor.evals", evals)
            tel.count("executor.merged_rows", chunk.merged_rows)
            tel.observe("chunk_seconds", chunk.worker_seconds)
            tel.gauge("executor.in_flight", self.pool.num_pending)
            return chunk

    def _merge_landed_impl(self, context: _ChunkContext,
                           value: Tuple) -> GatheredChunk:
        rows, seconds = value
        engine = context.engine
        keyed: List[Tuple[Tuple, float]] = []
        indices: List[int] = []
        states: List[Tuple] = []
        for identity, row in rows:
            if context.kind == "genotype":
                keys = genotype_indicator_keys(identity,
                                               context.proxy_key,
                                               context.macro_key)
                indices.append(identity)
            else:
                keys = supernet_indicator_keys(identity,
                                               context.proxy_key)
                states.append(identity)
            for name, value_ in row.items():
                keyed.append((keys[name], value_))
        merged = engine.merge_indicator_rows(keyed)
        self._pending_keys(engine).difference_update(context.keys)
        self.pool.record_busy(seconds)
        engine.ledger.add("pool_eval", seconds=seconds, count=len(rows))
        self.stats.tasks += len(rows)
        self.stats.merged_rows += merged
        self.stats.worker_seconds += seconds
        return GatheredChunk(
            kind=context.kind,
            canonical_indices=tuple(indices),
            states=tuple(states),
            merged_rows=merged,
            worker_seconds=seconds,
        )

    def _quarantine(self, context: _ChunkContext,
                    error: BaseException) -> GatheredChunk:
        """Quarantine the single candidate of a bisected-down context."""
        identity = chunk_item_identity(context.kind, context.items[0])
        if context.kind == "genotype":
            self.quarantined_genotypes.add(identity)
        else:
            self.quarantined_states.add(identity)
        if self.quarantine_ledger is not None:
            self.quarantine_ledger.add(context.kind, identity,
                                       reason=repr(error),
                                       attempts=context.attempts + 1)
        self._pending_keys(context.engine).difference_update(context.keys)
        self.stats.quarantined += 1
        self.telemetry.count("executor.quarantined")
        return GatheredChunk(
            kind=context.kind,
            quarantined_indices=((identity,)
                                 if context.kind == "genotype" else ()),
            quarantined_states=((identity,)
                                if context.kind == "supernet" else ()),
        )

    def _handle_failure(self, context: _ChunkContext,
                        error: BaseException,
                        failures: List[BaseException],
                        gathered: List[GatheredChunk]) -> int:
        """React to one failed chunk under the fault policy.

        Returns the number of *resolved* chunk events (0 when the chunk
        was retried or bisected and is back in flight).
        """
        policy = self.fault_policy
        label = classify_failure(error)
        if label == TRANSIENT and context.attempts < policy.max_retries:
            self.stats.retries += 1
            self.telemetry.count("executor.retries")
            context.attempts += 1
            delay = policy.backoff_delay(
                (context.kind, context.keys), context.attempts - 1)
            with self.telemetry.span("backoff_wait", CAT_FAULT,
                                     chunk=context.chunk_id,
                                     attempt=context.attempts,
                                     delay_seconds=delay):
                policy.sleep(delay)
            self._resubmit(context)
            return 0
        if label == POISON and policy.quarantine:
            if len(context.items) > 1:
                # One bad candidate mustn't sink its chunk-mates: split
                # and retry the halves (claims follow their items).
                for half in context.split():
                    self._resubmit(half)
                return 0
            gathered.append(self._quarantine(context, error))
            return 1
        # Worker-lost past the respawn budget, transient past the retry
        # budget, or quarantine disabled: surface as a plain failure.
        self._pending_keys(context.engine).difference_update(context.keys)
        failures.append(error)
        return 1

    def gather(self, k: int = 1) -> List[GatheredChunk]:
        """Block until ``k`` chunks land; merge each into its engine's
        cache immediately and return them in completion order.  Gathers
        everything when fewer than ``k`` chunks are pending; returns
        ``[]`` when nothing is.

        Without a fault policy, a chunk whose worker raised surfaces as
        :class:`ChunkGatherError` — but only after the sibling chunks
        gathered in the same call have merged (they ride along on the
        error's ``gathered`` attribute) and the failed chunk's in-flight
        key claims have been released, so the executor stays drainable
        and the candidates can be resubmitted (or computed serially by
        the engine).  With a policy, transient failures retry and poison
        chunks bisect/quarantine first; only unrecoverable failures
        raise.
        """
        tel = self.telemetry
        if not tel.enabled:
            return self._gather_inner(k)
        with tel.span("gather", CAT_GATHER, requested=k,
                      pending=self.pool.num_pending) as span:
            chunks = self._gather_inner(k)
            span.note(chunks=len(chunks))
            return chunks

    def _gather_inner(self, k: int) -> List[GatheredChunk]:
        if self.fault_policy is None:
            return self._gather_legacy(k)
        gathered: List[GatheredChunk] = []
        failures: List[BaseException] = []
        drain_all = k >= self.pool.num_pending
        resolved = 0
        saw_results = False
        while self.pool.num_pending and (drain_all or resolved < k):
            for result in self.pool.gather(1):
                saw_results = True
                context: _ChunkContext = result.tag
                if result.error is None:
                    gathered.append(self._merge_landed(context,
                                                       result.value))
                    resolved += 1
                else:
                    resolved += self._handle_failure(context, result.error,
                                                     failures, gathered)
        return self._finish_gather(gathered, failures, saw_results)

    def _gather_legacy(self, k: int) -> List[GatheredChunk]:
        """Policy-free gather: any worker failure is surfaced as-is."""
        gathered: List[GatheredChunk] = []
        failures: List[BaseException] = []
        results = self.pool.gather(k)
        for result in results:
            context: _ChunkContext = result.tag
            if result.error is not None:
                self._pending_keys(context.engine).difference_update(
                    context.keys
                )
                failures.append(result.error)
                continue
            gathered.append(self._merge_landed(context, result.value))
        return self._finish_gather(gathered, failures, bool(results))

    def _finish_gather(self, gathered: List[GatheredChunk],
                       failures: List[BaseException],
                       saw_results: bool) -> List[GatheredChunk]:
        if saw_results:
            # Count the gather even when every chunk in it failed —
            # the loop still synchronised with the pool, and reports
            # must not understate that.
            self.stats.gathers += 1
        self.stats.idle_fraction = self.pool.idle_fraction()
        self.stats.span_seconds = self.pool.span_seconds()
        self.stats.timeouts = self.pool.timeouts
        self.stats.respawns = self.pool.respawns
        flush_error: Optional[BaseException] = None
        if saw_results and self.on_gather is not None:
            # Flush before surfacing failures: the sibling chunks that
            # landed are already merged and deserve to be persisted.
            self.stats.flushes += 1
            try:
                self.on_gather(gathered)
            except Exception as exc:
                # Never let a store hiccup mask ChunkGatherError — the
                # caller needs the worker failures and landed chunks it
                # carries.  With no worker failures the flush error
                # surfaces itself (and a transient one re-surfaces on
                # the next gather anyway, when the rows are re-flushed).
                flush_error = exc
        if failures:
            error = ChunkGatherError(failures, gathered)
            error.flush_error = flush_error  # don't swallow a store error
            raise error from failures[0]
        if flush_error is not None:
            raise flush_error
        return gathered

    def gather_all(self) -> List[GatheredChunk]:
        """Gather every in-flight chunk (the barrier the sync hooks use)."""
        if self.num_pending == 0:
            return []
        return self.gather(self.num_pending)

    # ------------------------------------------------------------------
    # Synchronous executor hooks (drop-in for PopulationExecutor)
    # ------------------------------------------------------------------
    def warm_population(self, engine, genotypes: Sequence[Genotype],
                        with_latency: bool = False,
                        assume_canonical: bool = True) -> int:
        """Submit + gather-all: the blocking hook the engine duck-types.

        Note the ``assume_canonical`` default matches
        :meth:`~repro.runtime.pool.PopulationExecutor.warm_population`
        (the engine passes already-canonical forms), while
        :meth:`submit_population` defaults to ``False`` because search
        loops submit raw mutants directly.
        """
        self.submit_population(engine, genotypes, with_latency=with_latency,
                               assume_canonical=assume_canonical)
        return sum(chunk.merged_rows for chunk in self.gather_all())

    def warm_supernets(self, engine, spec_lists: Sequence[Sequence]) -> int:
        self.submit_supernets(engine, spec_lists)
        return sum(chunk.merged_rows for chunk in self.gather_all())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the transport down (idempotent; in-flight bookkeeping is
        cleared so a closed executor can be reused serially)."""
        self.pool.close()
        self._in_flight.clear()

    def __enter__(self) -> "AsyncPopulationExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "AsyncPopulationExecutor",
    "AsyncPoolStats",
    "ChunkGatherError",
    "FuturePool",
    "GatheredChunk",
    "TaskResult",
]
