"""Persistent store for indicator caches and device latency LUTs.

Board profiling and proxy evaluation are the two costs every run pays
again from scratch: the in-memory
:class:`~repro.engine.cache.IndicatorCache` dies with the process and each
device re-profiles its LUT.  :class:`RuntimeStore` is a directory-backed
store that makes both survive:

* **Indicator cache — store format 2, a sharded append-only segment
  log with per-shard compacted bases and key indexes.**  Each
  fingerprint (see :func:`cache_fingerprint`) owns one directory::

      cache2__<digest>/
          meta.json                       # fingerprint + shard count
          shard-03.base.jsonl             # compacted rows of shard 3
          shard-03.idx.json               # key index sidecar of shard 3
          shard-03.seg-00000002.4711.jsonl  # one append per save
          base.json                       # pre-index monolithic base
                                          # (legacy; folded away by the
                                          # next compaction)

  ``save_cache`` appends only the cache's **dirty rows** (those written
  since the last load/save — :meth:`~repro.engine.cache.IndicatorCache.
  dirty_items`), hashed by stable key into ``shards`` buckets; each touched
  shard gets one new atomically-renamed JSONL segment per save, numbered
  under the shard's own ``flock``.  Persistence cost is therefore O(rows
  this run computed), independent of how large the store already is — the
  property process fleets sharing one store directory need.  Loading
  replays monolithic ``base.json`` (oldest), then each shard's
  ``.base.jsonl``, then every segment in ``(shard, sequence, pid)``
  order with **last-write-wins** per key; a **compaction** pass
  (:meth:`RuntimeStore.compact_cache`, the ``micronas store compact`` CLI,
  or automatically once accumulated segments rival the bases in bytes,
  past an :attr:`RuntimeStore.auto_compact_segments` file-count floor —
  log-structured amortization) folds everything into the per-shard
  ``.base.jsonl`` files under the base + every shard lock; loads replay
  under the base lock too, so readers and concurrent appenders racing a
  compaction lose nothing.

  **Read paths.**  :meth:`RuntimeStore.load_cache_into` takes
  ``keys=`` + ``read_mode=``:

  * ``"full"`` (default, and always used when ``keys`` is ``None``) —
    replay the whole directory: O(store), the right call when a run
    genuinely wants everything resident;
  * ``"selective"`` — replay only the shards the requested keys hash
    to: O(store ÷ shards × shards touched), a constant-factor win that
    grows with the shard count;
  * ``"index"`` — point lookups through each shard's ``.idx.json``
    sidecar: O(population · log shard), independent of store size.  The
    index maps key digests to ``[file, byte offset, length]`` of the
    key's newest row, LSM-style so neither reads nor writes ever touch
    the whole sidecar: line 1 is a JSON header (``row`` width,
    ``sorted`` record count, ``files`` table, ``covers``), followed by
    ``sorted`` digest-ordered **fixed-width records** that lookups
    binary-search with seeks, followed by one appended JSON tail record
    per flush (``{"e": {digest: slot}, "c": [segment, bytes]}``) —
    compaction rebuilds the whole sidecar atomically with everything
    folded into the sorted region; each flush *appends one tail line
    under the shard flock*, keeping save cost O(delta).  Staleness is
    detected by comparing the merged ``covers`` — the ``[name, bytes]``
    of every shard file the index reflects (header covers plus one per
    tail record) — against the directory: any mismatch (a writer
    without index support, a torn segment or index tail, a hand-edited
    file) falls back to replaying that shard, so indexed reads are
    always bit-identical to replay.  A fresh index is authoritative: a
    digest in neither the tail nor the sorted region is a miss, served
    without touching segment data at all.

  Cache keys are plain nested tuples of strings and integers (the key
  contract in :mod:`repro.engine`), round-tripped through JSON with a
  recursive list↔tuple conversion; values may be ``inf``/``nan``.  The
  fingerprint guards the global assumptions (store format, indicator
  schema, proxy/macro config, proxy compute precision) — a mismatched
  directory loads nothing, so stale entries can never poison results, and
  float32/float64 runs keep separate directories.

  **Format-1 read-compat:** the monolithic ``indicator_cache__*.json``
  files earlier versions wrote still load (validated under their own
  format-1 fingerprint), and the first ``save_cache`` migrates them into
  the format-2 directory, after which the legacy file is removed.

* **Latency LUTs** — one file per ``(device, precision, macro config)``
  key, written under a ``flock`` with :meth:`~repro.hardware.profiler.
  LatencyLUT.save_json` so files interoperate with every other LUT
  consumer, plus a sidecar ``.meta.json`` holding the key fingerprint that
  loading validates.  The digest folds in the *raw* device name (not just
  its filename slug), so names that slug identically (``"jetson nano"`` vs
  ``"jetson-nano"``) key distinct files.  Multi-device Pareto searches and
  CI profile each board once, ever.

Maintenance: :meth:`RuntimeStore.gc` sweeps stale ``.tmp`` staging files
and ``.lock`` sidecars crashed writers left behind, and
:meth:`RuntimeStore.cache_inventory` / :meth:`RuntimeStore.lut_keys` feed
the ``micronas store inventory`` listing.

The store is duck-typed by its consumers: :class:`repro.engine.Engine`
and :class:`~repro.hardware.latency.LatencyEstimator` only call
``lut_get``/``lut_put``, and the harness calls
``load_cache_into``/``save_cache`` — neither imports this module.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import time
from dataclasses import astuple
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # POSIX advisory locks; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

from repro.engine.cache import IndicatorCache
from repro.engine.core import INDICATOR_NAMES
from repro.errors import ReproError
from repro.hardware.profiler import LatencyLUT
from repro.proxies.base import ProxyConfig
from repro.runtime.telemetry import Telemetry
from repro.runtime.tracing import CAT_STORE
from repro.searchspace.network import MacroConfig

#: Bump when the meaning of cached values or the on-disk layout changes;
#: old store files then self-invalidate (LUTs) or are migrated (indicator
#: caches — format 1 has an explicit read path below).  Format 2: sharded
#: append-only indicator segments + device-name-keyed LUT digests.
STORE_FORMAT = 2

#: Shard count for new cache directories (recorded in ``meta.json``).
DEFAULT_SHARDS = 8

#: Segment-count floor for auto-compaction: past this many files the
#: store considers folding, but only actually rewrites the base once the
#: accumulated segment bytes rival it (or the count is 16× the floor) —
#: log-structured amortization that keeps every-gather flushing O(delta)
#: amortized instead of rewriting the whole store every ``shards`` saves.
DEFAULT_AUTO_COMPACT_SEGMENTS = 64

#: Index-tail record bound for auto-compaction: every index-mode lookup
#: linearly merges the tail records appended since the last compaction
#: (the O(appends) part of an otherwise O(log shard) read), so once any
#: shard's tail grows past this many records a save triggers compaction
#: — which rebuilds the sidecars with everything in the sorted region
#: and the tails empty again.  ``None`` disables the tail trigger.
DEFAULT_AUTO_COMPACT_INDEX_TAIL = 128

#: Bits per row in the compaction-built per-shard bloom filter (two
#: probes per digest; ~2.7% theoretical false-positive rate at this
#: sizing, and a false positive just costs the bisect the filter would
#: have skipped).
_BLOOM_BITS_PER_ROW = 8

#: Bloom floor so tiny shards still get a useful filter.
_BLOOM_MIN_BITS = 64

_SEGMENT_RE = re.compile(
    r"^shard-(?P<shard>\d+)\.seg-(?P<seq>\d+)\.(?P<pid>\d+)\.jsonl$"
)

_SHARD_BASE_RE = re.compile(r"^shard-(?P<shard>\d+)\.base\.jsonl$")

#: Atomic-rename staging names embed the writer's pid
#: (see :func:`_atomic_write_text`); ``gc`` parses it back out to spare
#: a *live* writer's staging file regardless of age.
_TMP_PID_RE = re.compile(r"\.(?P<pid>\d+)\.tmp$")

#: Valid ``read_mode`` values for :meth:`RuntimeStore.load_cache_into`.
READ_MODES = ("full", "selective", "index")

#: Fixed byte width of one sorted index record:
#: ``digest(16) + " " + file(6) + " " + offset(12) + " " + length(8) +
#: "\n"`` — fixed width is what lets lookups binary-search the sorted
#: region with seeks instead of parsing the whole file.
_IDX_ROW_WIDTH = 46

#: Upper bound on the index header line (a covers list of base +
#: pending segments — compaction keeps it tiny; a header past this is
#: treated as damage, i.e. stale).
_IDX_HEADER_LIMIT = 1 << 20


def _format_idx_row(digest: str, file_idx: int, offset: int,
                    length: int) -> str:
    return f"{digest} {file_idx:06d} {offset:012d} {length:08d}\n"


class _IndexUnusable(Exception):
    """Internal: the index lied or is damaged — fall back to replay."""


class StoreError(ReproError):
    """Raised for unusable store contents in strict mode."""


def cache_fingerprint(proxy_config: ProxyConfig,
                      macro_config: MacroConfig,
                      cost_axes: Sequence[str] = ()) -> Dict:
    """Identity of everything a cached indicator value depends on.

    Cache *keys* already embed per-entry configuration, so entries can
    never alias each other; the fingerprint guards the remaining global
    assumptions — store format, indicator schema and the engine's own
    proxy/macro configs — under which the file was written.

    Precision is folded in on one scheme across both store halves: the
    indicator-cache fingerprint carries the proxy *compute* precision
    (``ProxyConfig.precision``, also inside the encoded proxy tuple), so
    float32 and float64 runs write separate fingerprint-keyed files and
    coexist in one store directory; latency LUTs are keyed by the
    deployment *kernel* precision (``float32``/``int8``) exactly as
    before — the two axes are independent and never mix.

    ``cost_axes`` names any *extra* registered cost models the run
    scores (beyond the built-in indicator schema) so rows never alias
    across objective sets.  Empty (the default) adds no key, keeping
    legacy fingerprints — and every store written before the cost
    registry existed — bit-compatible.
    """
    fingerprint = {
        "format": STORE_FORMAT,
        "indicators": list(INDICATOR_NAMES),
        "precision": proxy_config.precision,
        "proxy": _encode_key(astuple(proxy_config)),
        "macro": _encode_key(astuple(macro_config)),
    }
    if cost_axes:
        fingerprint["costs"] = sorted(cost_axes)
    return fingerprint


def _legacy_fingerprint(fingerprint: Dict) -> Dict:
    """The same identity as format 1 wrote it (only ``format`` differs
    — indicator values are bit-compatible across the layout change, which
    is what makes read-side migration sound)."""
    return dict(fingerprint, format=1)


def _encode_key(key):
    """Tuples → lists, recursively (JSON has no tuple type)."""
    if isinstance(key, tuple):
        return [_encode_key(part) for part in key]
    return key


def _decode_key(obj):
    """Lists → tuples, recursively (inverse of :func:`_encode_key`)."""
    if isinstance(obj, list):
        return tuple(_decode_key(part) for part in obj)
    return obj


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so concurrent readers (two runs sharing one
    store directory) never observe a torn file.  The staging name is
    per-process so concurrent writers of the same key cannot interleave
    into one tmp file either — last rename wins, both are whole."""
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(text, encoding="utf-8")
    os.replace(tmp_path, path)


@contextlib.contextmanager
def _file_lock(path: Path, shared: bool = False):
    """Advisory lock on a ``.lock`` sidecar of ``path`` (exclusive by
    default; ``shared=True`` takes a read lock).

    Atomic renames alone keep concurrent *readers* safe but let two
    writers race read-merge-write: whoever renames last silently drops
    the other's freshly computed rows.  Serialising writers through
    ``flock`` — per cache shard, per LUT key, per base file — makes
    concurrent saves into one store directory lose nothing; readers take
    the base lock *shared*, so a fleet of warm-starting processes replay
    concurrently while still excluding the compactor's fold-and-unlink.
    Platforms without :mod:`fcntl` degrade to the pre-lock behaviour
    (whole-file atomicity, last writer wins) rather than failing.
    """
    if fcntl is None:  # pragma: no cover - platform dependent
        yield
        return
    lock_path = path.with_name(f"{path.name}.lock")
    with open(lock_path, "w", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _lut_digest(device_name: str, precision: str, config: MacroConfig) -> str:
    # The raw device name is hashed alongside precision+macro: two names
    # that collapse to one filename slug must still key distinct files.
    material = json.dumps([device_name, precision,
                           _encode_key(astuple(config))])
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def _fingerprint_digest(fingerprint: Dict) -> str:
    material = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def _key_material(encoded_key) -> bytes:
    """The canonical bytes both the shard map and the index digest hash —
    one definition, so a key can never index into a shard it does not
    hash to."""
    return json.dumps(encoded_key, sort_keys=True,
                      default=str).encode("utf-8")


def _shard_of(encoded_key, n_shards: int) -> int:
    """Stable shard assignment from the JSON-encoded key (process- and
    run-independent, unlike ``hash()`` under PYTHONHASHSEED)."""
    digest = hashlib.sha1(_key_material(encoded_key)).hexdigest()[:8]
    return int(digest, 16) % n_shards


def _key_digest(encoded_key) -> str:
    """Index digest of one JSON-encoded key (16 hex chars).  Collisions
    are astronomically unlikely, and harmless anyway: indexed reads
    verify the stored key against the requested one and fall back to
    replay on any mismatch."""
    return hashlib.sha1(_key_material(encoded_key)).hexdigest()[:16]


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe; ``EPERM``
    means alive but owned by someone else)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - needs a foreign process
        return True
    except OSError:  # pragma: no cover - platform dependent
        return False
    return True


class RuntimeStore:
    """Directory-backed persistence for indicator caches and latency LUTs.

    ``shards`` sets the bucket count for *new* cache directories (existing
    directories keep the count recorded in their ``meta.json``);
    ``auto_compact_segments`` is the segment-file count past which
    :meth:`save_cache` *considers* folding a directory's segments into
    its base — the fold actually triggers on the byte-amortized rule in
    :meth:`_should_auto_compact` (``None`` disables auto-compaction —
    e.g. for benchmarks isolating append cost — including the
    index-tail trigger below).  ``auto_compact_index_tail`` bounds how
    many tail records any one shard's index may accumulate before a
    save compacts regardless of segment bytes: tail records are the
    O(appends-since-compaction) part of every index-mode lookup, so the
    bound keeps warm-start reads flat under every-gather flushing.
    """

    def __init__(self, root, shards: int = DEFAULT_SHARDS,
                 auto_compact_segments: Optional[int]
                 = DEFAULT_AUTO_COMPACT_SEGMENTS,
                 auto_compact_index_tail: Optional[int]
                 = DEFAULT_AUTO_COMPACT_INDEX_TAIL,
                 telemetry: Optional[Telemetry] = None) -> None:
        if shards < 1:
            raise StoreError("shards must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self.auto_compact_segments = auto_compact_segments
        self.auto_compact_index_tail = auto_compact_index_tail
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        #: Why the last load/get returned nothing (diagnostics/reporting).
        self.last_rejection: Optional[str] = None
        #: How the last :meth:`load_cache_into` call did its reads —
        #: ``{"mode", "requested", "found", "index_hits",
        #: "index_fallback_shards", "index_filtered",
        #: "shards_touched"}`` (``None`` until the first load;
        #: ``requested``/``shards_touched`` are ``None`` for whole-store
        #: loads).  Diagnostics + benchmark surface.
        self.last_load_stats: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Indicator cache — paths and directory plumbing
    # ------------------------------------------------------------------
    def cache_dir(self, fingerprint: Dict) -> Path:
        """Format-2 cache directory for this fingerprint.  Directories are
        fingerprint-keyed so runs under different configurations (seed,
        proxy scale, macro, precision) sharing one store coexist instead
        of overwriting each other's warm-start data."""
        return self.root / f"cache2__{_fingerprint_digest(fingerprint)}"

    def legacy_cache_path(self, fingerprint: Dict) -> Path:
        """Where store format 1 kept this fingerprint's monolithic file
        (still read, and migrated into :meth:`cache_dir` on first save)."""
        digest = _fingerprint_digest(_legacy_fingerprint(fingerprint))
        return self.root / f"indicator_cache__{digest}.json"

    def _base_path(self, directory: Path) -> Path:
        return directory / "base.json"

    def _shard_base_path(self, directory: Path, shard: int) -> Path:
        return directory / f"shard-{shard:02d}.base.jsonl"

    def _index_path(self, directory: Path, shard: int) -> Path:
        return directory / f"shard-{shard:02d}.idx.json"

    def _meta_path(self, directory: Path) -> Path:
        return directory / "meta.json"

    def _shard_lock_target(self, directory: Path, shard: int) -> Path:
        # _file_lock appends ".lock"; the target itself is never created.
        return directory / f"shard-{shard:02d}"

    def _read_meta(self, directory: Path) -> Optional[Dict]:
        try:
            meta = json.loads(self._meta_path(directory)
                              .read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return None
        return meta if isinstance(meta, dict) else None

    def _ensure_dir(self, fingerprint: Dict) -> Tuple[Path, int]:
        """Create the cache directory + ``meta.json`` if missing; returns
        ``(directory, shard_count)`` (the recorded count wins, so every
        writer agrees on the key→shard map).  A *present but unreadable*
        meta is refused rather than rewritten: silently re-recording a
        shard count would re-hash keys across shards and break the
        per-shard ordering last-write-wins rests on."""
        directory = self.cache_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        meta = self._read_meta(directory)
        if meta is None:
            with _file_lock(self._meta_path(directory)):
                meta = self._read_meta(directory)  # raced creation
                if meta is None:
                    if self._meta_path(directory).exists():
                        raise StoreError(
                            f"unreadable store meta: "
                            f"{self._meta_path(directory)} — fix or "
                            "remove the cache directory"
                        )
                    meta = {"format": STORE_FORMAT,
                            "fingerprint": fingerprint,
                            "shards": self.shards}
                    _atomic_write_text(self._meta_path(directory),
                                       json.dumps(meta) + "\n")
        return directory, int(meta.get("shards", self.shards))

    def _segment_files(self, directory: Path,
                       shard: Optional[int] = None) -> List[Path]:
        """Segment files in replay order: ``(shard, sequence, pid)``.
        A key lives in exactly one shard, so cross-shard order is
        irrelevant; within a shard the flock-issued sequence numbers
        order saves, making last-write-wins well defined."""
        found = []
        for path in directory.glob("shard-*.seg-*.jsonl"):
            match = _SEGMENT_RE.match(path.name)
            if match is None:
                continue
            index = int(match.group("shard"))
            if shard is not None and index != shard:
                continue
            found.append((index, int(match.group("seq")),
                          int(match.group("pid")), path))
        return [item[3] for item in sorted(found)]

    def _shard_base_files(self, directory: Path,
                          shard: Optional[int] = None) -> List[Path]:
        """Per-shard compacted base files, in shard order (a key lives in
        exactly one shard, so cross-shard order is irrelevant)."""
        found = []
        for path in directory.glob("shard-*.base.jsonl"):
            match = _SHARD_BASE_RE.match(path.name)
            if match is None:
                continue
            index = int(match.group("shard"))
            if shard is not None and index != shard:
                continue
            found.append((index, path))
        return [item[1] for item in sorted(found)]

    def _next_segment_path(self, directory: Path, shard: int) -> Path:
        """Next sequence number for this shard (call under its lock)."""
        last = 0
        for path in self._segment_files(directory, shard=shard):
            last = max(last, int(_SEGMENT_RE.match(path.name).group("seq")))
        return directory / (f"shard-{shard:02d}.seg-{last + 1:08d}"
                            f".{os.getpid()}.jsonl")

    def _shard_state(self, directory: Path, shard: int) -> List[List]:
        """``[name, bytes]`` of every file holding this shard's rows, in
        replay order (base first, then segments) — the coverage token the
        index's staleness check compares against.  The monolithic
        ``base.json`` is deliberately excluded: no index ever covers it,
        so index-mode readers always merge it separately while it still
        exists."""
        state = []
        for path in self._shard_base_files(directory, shard=shard):
            with contextlib.suppress(OSError):
                state.append([path.name, path.stat().st_size])
        for path in self._segment_files(directory, shard=shard):
            with contextlib.suppress(OSError):
                state.append([path.name, path.stat().st_size])
        return state

    def _read_index_state(self, directory: Path,
                          shard: int) -> Optional[Dict]:
        """This shard's index sidecar decoded *without* parsing its
        sorted region: the JSON header line, where the fixed-width
        records start, and the appended tail records merged into one
        dict (later records win).  The sorted region itself is only ever
        touched by :meth:`_bisect_index` seeks, which is what keeps
        lookups O(log shard) instead of O(shard).  ``None`` means
        absent, unreadable, mis-shaped, or torn mid-append — every
        ``None`` reads as "treat as stale"."""
        path = self._index_path(directory, shard)
        try:
            with open(path, "rb") as handle:
                first = handle.readline(_IDX_HEADER_LIMIT)
                if not first.endswith(b"\n"):
                    return None
                try:
                    header = json.loads(first.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    return None
                if (not isinstance(header, dict)
                        or header.get("row") != _IDX_ROW_WIDTH
                        or not isinstance(header.get("sorted"), int)
                        or isinstance(header.get("sorted"), bool)
                        or header["sorted"] < 0
                        or not isinstance(header.get("files"), list)
                        or not isinstance(header.get("covers"), list)):
                    return None
                handle.seek(len(first) + header["sorted"] * _IDX_ROW_WIDTH)
                tail_blob = handle.read()
        except OSError:
            return None
        covers = [list(item) for item in header["covers"]]
        tail: Dict[str, object] = {}
        tail_records = 0
        for line in tail_blob.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return None  # torn tail from a crashed appender
            if (not isinstance(record, dict)
                    or not isinstance(record.get("e"), dict)
                    or not isinstance(record.get("c"), list)):
                return None
            tail.update(record["e"])
            covers.append(list(record["c"]))
            tail_records += 1
        # Fence and bloom are pure lookup accelerators over the sorted
        # region: validation is lenient — anything mis-shaped reads as
        # "no filter" (None), never as a stale index.
        fence = header.get("fence")
        if not (isinstance(fence, list) and len(fence) == 2
                and all(isinstance(edge, str) for edge in fence)):
            fence = None
        bloom = header.get("bloom")
        if isinstance(bloom, list) and len(bloom) == 2 \
                and isinstance(bloom[0], int) and not isinstance(
                    bloom[0], bool) and bloom[0] > 0 \
                and isinstance(bloom[1], str):
            try:
                bloom = (bloom[0], int(bloom[1], 16))
            except ValueError:
                bloom = None
        else:
            bloom = None
        return {"path": path, "header_len": len(first),
                "sorted": header["sorted"], "files": header["files"],
                "covers": covers, "tail": tail,
                "tail_records": tail_records,
                "fence": fence, "bloom": bloom}

    # ------------------------------------------------------------------
    # Indicator cache — save (O(delta) append)
    # ------------------------------------------------------------------
    def save_cache(self, cache: IndicatorCache, fingerprint: Dict) -> int:
        """Append the cache's dirty rows under ``fingerprint``; returns
        how many rows were appended (the delta — 0 when nothing changed
        since the last load/save).

        Cost is O(rows appended), independent of total store size: each
        touched shard gets one new atomically-renamed segment file,
        numbered under the shard's ``flock``, so concurrent runs sharing
        one store directory each contribute their freshly computed rows
        and none are dropped.  Replay is last-write-wins per key, and the
        determinism contract makes colliding writers bit-identical
        anyway.  A caller without dirty tracking (any mapping exposing
        ``items()``) falls back to appending everything.

        First save against a fingerprint also migrates its format-1
        monolithic file into the directory, and once the directory
        accumulates :attr:`auto_compact_segments` segment files the save
        triggers a compaction.  A zero-delta save with nothing to
        migrate returns without touching the directory at all, so the
        harness's every-gather flush is free on cache-hit-heavy gathers.
        Non-JSON-serialisable values, which the engine never produces,
        are skipped rather than corrupting the store (and stay dirty).

        Note the delta is relative to the last load/save against *any*
        store (dirtiness lives on the cache, not per store root):
        mirroring one cache into several stores needs ``items()``-level
        copying, not repeated ``save_cache`` calls.
        """
        tel = self.telemetry
        if not tel.enabled:
            return self._save_cache_impl(cache, fingerprint)
        with tel.span("store_flush", CAT_STORE) as span:
            appended = self._save_cache_impl(cache, fingerprint)
            span.note(rows=appended)
            tel.count("store.rows_appended", appended)
            tel.count("store.flushes")
            return appended

    def _save_cache_impl(self, cache: IndicatorCache,
                         fingerprint: Dict) -> int:
        rows = list(getattr(cache, "dirty_items", cache.items)())
        if not rows and not self.legacy_cache_path(fingerprint).exists():
            return 0
        directory, n_shards = self._ensure_dir(fingerprint)
        self._migrate_legacy(directory, fingerprint)
        by_shard: Dict[int, List[Tuple[str, str]]] = {}
        appended_keys = []
        for key, value in rows:
            encoded = _encode_key(key)
            try:
                line = json.dumps([encoded, value])
            except (TypeError, ValueError):
                continue
            by_shard.setdefault(_shard_of(encoded, n_shards), []).append(
                (_key_digest(encoded), line))
            appended_keys.append(key)
        max_tail_records = 0
        for shard in sorted(by_shard):
            with _file_lock(self._shard_lock_target(directory, shard)):
                # The shard state *before* this append is what a fresh
                # index must already cover for the append to be able to
                # extend it — captured under the flock, so no other
                # writer can slip a segment in between.
                pre_state = self._shard_state(directory, shard)
                segment_path = self._next_segment_path(directory, shard)
                _atomic_write_text(
                    segment_path,
                    "\n".join(line for _, line in by_shard[shard]) + "\n")
                max_tail_records = max(max_tail_records, self._append_index(
                    directory, shard, segment_path, by_shard[shard],
                    pre_state))
        if hasattr(cache, "mark_clean"):
            cache.mark_clean(appended_keys)
        if self._should_auto_compact(directory,
                                     index_tail_records=max_tail_records):
            self._compact_dir(directory, fingerprint)
        return len(appended_keys)

    def _append_index(self, directory: Path, shard: int,
                      segment_path: Path,
                      rows: List[Tuple[str, str]],
                      pre_state: List[List]) -> int:
        """Extend this shard's index with the rows just appended (call
        under the shard flock, ``pre_state`` captured before the segment
        write), in O(delta): the new rows become one JSON tail record
        *appended* after the sorted region — the sorted region and the
        earlier tail are never rewritten.  A *stale* index — one whose
        merged ``covers`` does not match the pre-append state — is left
        stale for the next compaction to rebuild, never patched:
        patching would claim coverage of shard files this writer never
        read.  A brand-new shard (empty ``pre_state``) starts a fresh
        empty-header index first.  Offsets count bytes; segment lines
        are ASCII (``json.dumps`` default), so ``len(line)`` is exact.
        Returns the shard's tail record count after the append (0 when
        the index was left stale) — the compaction-scheduling signal:
        every lookup merges the tail linearly, so a long tail means the
        index is degrading toward O(appends) reads."""
        index_path = self._index_path(directory, shard)
        state = self._read_index_state(directory, shard)
        tail_records = 0
        if state is None or state["covers"] != pre_state:
            if pre_state:
                return 0  # uncovered pre-existing data: leave stale
            header = {"row": _IDX_ROW_WIDTH, "sorted": 0, "files": [],
                      "covers": []}
            _atomic_write_text(index_path, json.dumps(header) + "\n")
        else:
            tail_records = state["tail_records"]
        entries = {}
        offset = 0
        for digest, line in rows:
            entries[digest] = [segment_path.name, offset, len(line)]
            offset += len(line) + 1  # the "\n" after every line
        try:
            size = segment_path.stat().st_size
        except OSError:  # pragma: no cover - we just wrote it
            return 0
        record = json.dumps({"e": entries,
                             "c": [segment_path.name, size]})
        with open(index_path, "a", encoding="utf-8") as handle:
            handle.write(record + "\n")
        return tail_records + 1

    def _should_auto_compact(self, directory: Path,
                             index_tail_records: int = 0) -> bool:
        """Compact when the segment *bytes* have grown to rival the base
        (a rewrite then costs at most ~2× what appending those rows
        cost — classic log-structured amortization, keeping save cost
        O(delta) amortized even with every-gather flushing), or when the
        file count alone gets excessive (glob/replay overhead), or when
        some shard's index tail has grown past
        :attr:`auto_compact_index_tail` records (every index-mode
        lookup merges the tail linearly, so an unbounded tail would
        quietly turn O(log shard) reads into O(appends) reads — the
        caller reports the longest tail it touched, so the check adds
        no extra shard scans).  A bare file-count trigger would fire
        every ``shards`` saves and rewrite the whole store on the hot
        path."""
        threshold = self.auto_compact_segments
        if threshold is None:
            return False  # auto-compaction disabled entirely
        if (self.auto_compact_index_tail is not None
                and index_tail_records > self.auto_compact_index_tail):
            return True
        segments = self._segment_files(directory)
        if len(segments) <= threshold:
            return False
        if len(segments) > threshold * 16:
            return True
        base_bytes = 0
        for path in ([self._base_path(directory)]
                     + self._shard_base_files(directory)):
            with contextlib.suppress(OSError):
                base_bytes += path.stat().st_size
        if base_bytes == 0:
            return True  # no base yet: first fold is cheap by definition
        segment_bytes = 0
        for segment in segments:
            with contextlib.suppress(OSError):
                segment_bytes += segment.stat().st_size
        return segment_bytes >= base_bytes

    def _migrate_legacy(self, directory: Path, fingerprint: Dict) -> int:
        """Fold a format-1 monolithic file into ``base.json`` and remove
        it; returns rows migrated (0 when there is nothing to migrate).
        Rows already in the format-2 base win — they are newer."""
        legacy_path = self.legacy_cache_path(fingerprint)
        if not legacy_path.exists():
            return 0
        with _file_lock(legacy_path):
            if not legacy_path.exists():  # another process migrated first
                return 0
            entries = self._read_legacy(legacy_path, fingerprint)
            if entries is None:
                return 0  # unreadable/foreign: leave it for diagnosis
            base_path = self._base_path(directory)
            with _file_lock(base_path):
                merged = dict(entries)
                merged.update(self._read_base(directory, fingerprint) or {})
                self._write_base(directory, fingerprint, merged)
            legacy_path.unlink()
            return len(entries)

    def _read_entries(self, path: Path, expected_fingerprint: Dict
                      ) -> Tuple[Optional[Dict[Tuple, object]],
                                 Optional[str]]:
        """Parse one monolithic payload file (legacy or base): returns
        ``(entries, problem)`` with exactly one of them ``None`` — the
        single parse/validate path every reader shares."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            return None, f"unreadable cache file: {exc}"
        if (not isinstance(payload, dict)
                or payload.get("fingerprint") != expected_fingerprint):
            return None, (
                "fingerprint mismatch: persisted cache was written under a "
                "different proxy/macro configuration or store format"
            )
        try:
            return ({_decode_key(encoded): value
                     for encoded, value in payload.get("entries", [])},
                    None)
        except (TypeError, ValueError):
            return None, f"malformed cache payload: {path.name}"

    def _read_legacy(self, path: Path,
                     fingerprint: Dict) -> Optional[Dict[Tuple, object]]:
        return self._read_entries(path, _legacy_fingerprint(fingerprint))[0]

    def _read_base(self, directory: Path,
                   fingerprint: Dict) -> Optional[Dict[Tuple, object]]:
        """Base entries, or ``None`` when absent/unreadable/mismatched."""
        base_path = self._base_path(directory)
        if not base_path.exists():
            return None
        return self._read_entries(base_path, fingerprint)[0]

    def _write_base(self, directory: Path, fingerprint: Dict,
                    entries: Dict[Tuple, object]) -> None:
        ordered = sorted(entries.items(), key=lambda kv: repr(kv[0]))
        payload = {
            "fingerprint": fingerprint,
            "entries": [[_encode_key(key), value] for key, value in ordered],
        }
        _atomic_write_text(self._base_path(directory),
                           json.dumps(payload) + "\n")

    # ------------------------------------------------------------------
    # Indicator cache — load (replay with last-write-wins)
    # ------------------------------------------------------------------
    def load_cache_into(self, cache: IndicatorCache, fingerprint: Dict,
                        strict: bool = False,
                        keys: Optional[Iterable] = None,
                        read_mode: str = "full") -> int:
        """Merge persisted entries into ``cache``; returns how many landed.

        With ``keys=None`` (the default) the whole store replays:
        monolithic ``base.json``, per-shard ``.base.jsonl`` files, then
        every segment in order (last write wins per key), plus any
        not-yet-migrated format-1 file (oldest, so format-2 rows override
        it).  With ``keys=`` an iterable of cache keys, only those keys
        are merged, and ``read_mode`` picks the I/O strategy — ``"full"``
        (replay everything, filter), ``"selective"`` (replay only the
        shards the keys hash to) or ``"index"`` (point lookups through
        the per-shard index sidecars, falling back to replaying any shard
        whose index is stale or missing).  All three are bit-identical in
        what they merge; they differ only in read cost (see the module
        docstring).  ``last_load_stats`` records how the load went.

        A missing store, unreadable JSON or a fingerprint mismatch loads
        nothing from the offending part (``last_rejection`` says why);
        with ``strict=True`` a *present but rejected* file raises
        :class:`StoreError` instead, so CI can distinguish "cold" from
        "poisoned".  Entries already in the cache keep their in-memory
        value; loaded rows are marked clean, so the next
        :meth:`save_cache` does not re-append them.
        """
        if read_mode not in READ_MODES:
            raise StoreError(f"unknown read_mode {read_mode!r}: expected "
                             f"one of {READ_MODES}")
        tel = self.telemetry
        if not tel.enabled:
            return self._load_any_impl(cache, fingerprint, strict, keys,
                                       read_mode)
        with tel.span("store_load", CAT_STORE) as span:
            loaded = self._load_any_impl(cache, fingerprint, strict, keys,
                                         read_mode)
            stats = self.last_load_stats or {}
            span.note(rows=loaded, mode=stats.get("mode", read_mode),
                      index_hits=stats.get("index_hits", 0))
            tel.count("store.index_hits", stats.get("index_hits", 0))
            tel.count("store.index_fallbacks",
                      stats.get("index_fallback_shards", 0))
            tel.count("store.index_filtered",
                      stats.get("index_filtered", 0))
            return loaded

    def _load_any_impl(self, cache: IndicatorCache, fingerprint: Dict,
                       strict: bool, keys: Optional[Iterable],
                       read_mode: str) -> int:
        if keys is None:
            return self._load_cache_impl(cache, fingerprint, strict)
        requested = list(dict.fromkeys(keys))  # dedupe, keep order
        if read_mode == "full":
            return self._load_cache_impl(cache, fingerprint, strict,
                                         requested=requested)
        return self._load_selected_impl(cache, fingerprint, strict,
                                        requested, read_mode)

    def _load_cache_impl(self, cache: IndicatorCache, fingerprint: Dict,
                         strict: bool,
                         requested: Optional[List] = None) -> int:
        self.last_rejection = None
        stats = {"mode": "full",
                 "requested": (len(requested) if requested is not None
                               else None),
                 "found": 0, "index_hits": 0, "index_fallback_shards": 0,
                 "index_filtered": 0, "shards_touched": None}
        self.last_load_stats = stats
        directory = self.cache_dir(fingerprint)
        legacy_path = self.legacy_cache_path(fingerprint)
        entries: Dict[Tuple, object] = {}
        problems: List[str] = []
        if legacy_path.exists():
            legacy_entries, problem = self._read_entries(
                legacy_path, _legacy_fingerprint(fingerprint))
            if problem is not None:
                # A concurrent first-save may have migrated the file
                # away between exists() and the read: that is a healthy
                # store (the rows are in the format-2 directory read
                # below), not a poisoned one.
                if legacy_path.exists():
                    problems.append(problem)
            else:
                entries.update(legacy_entries)
        if directory.exists():
            # Under the base lock, *shared*: concurrent warm-starting
            # readers replay side by side, while the compactor (which
            # holds it exclusively across fold-and-unlink) cannot swap
            # the base and delete segments between our base read and
            # segment glob — the reader half of the "racing a compaction
            # loses nothing" guarantee.
            with _file_lock(self._base_path(directory), shared=True):
                entries.update(self._replay(directory, fingerprint,
                                            problems))
        elif not legacy_path.exists():
            self.last_rejection = "no persisted cache"
            return 0
        if requested is not None:
            entries = {key: entries[key] for key in requested
                       if key in entries}
        stats["found"] = len(entries)
        return self._finish_load(cache, entries, problems, strict)

    def _load_selected_impl(self, cache: IndicatorCache, fingerprint: Dict,
                            strict: bool, requested: List,
                            read_mode: str) -> int:
        """The ``keys=`` fast path: touch only the shards the requested
        keys hash to (``selective``), or just their index slots
        (``index``)."""
        self.last_rejection = None
        stats = {"mode": read_mode, "requested": len(requested),
                 "found": 0, "index_hits": 0, "index_fallback_shards": 0,
                 "index_filtered": 0, "shards_touched": 0}
        self.last_load_stats = stats
        directory = self.cache_dir(fingerprint)
        legacy_path = self.legacy_cache_path(fingerprint)
        entries: Dict[Tuple, object] = {}
        problems: List[str] = []
        if legacy_path.exists():
            legacy_entries, problem = self._read_entries(
                legacy_path, _legacy_fingerprint(fingerprint))
            if problem is not None:
                if legacy_path.exists():  # not a concurrent migration
                    problems.append(problem)
            else:
                for key in requested:
                    if key in legacy_entries:
                        entries[key] = legacy_entries[key]
        if not directory.exists():
            if not legacy_path.exists():
                self.last_rejection = "no persisted cache"
                return 0
        else:
            meta = self._read_meta(directory)
            if meta is None:
                # Damaged meta: the key→shard map is unknowable, so
                # degrade to a full replay filtered to the requested
                # keys — still correct, just O(store) for this load.
                stats["shards_touched"] = None
                with _file_lock(self._base_path(directory), shared=True):
                    replayed = self._replay(directory, fingerprint,
                                            problems)
                for key in requested:
                    if key in replayed:
                        entries[key] = replayed[key]
            elif ("fingerprint" in meta
                    and meta["fingerprint"] != fingerprint):
                problems.append(
                    "fingerprint mismatch: persisted cache was written "
                    "under a different proxy/macro configuration or "
                    "store format"
                )
            else:
                n_shards = int(meta.get("shards", self.shards))
                by_shard: Dict[int, List[Tuple]] = {}
                for key in requested:
                    encoded = _encode_key(key)
                    by_shard.setdefault(_shard_of(encoded, n_shards),
                                        []).append((key, encoded))
                stats["shards_touched"] = len(by_shard)
                with _file_lock(self._base_path(directory), shared=True):
                    # The monolithic base.json (pre-index layout) is
                    # outside every shard's coverage: merge it first
                    # whenever present — shard files replay after it,
                    # so their rows win, preserving last-write-wins.
                    base_path = self._base_path(directory)
                    if base_path.exists():
                        base_entries, problem = self._read_entries(
                            base_path, fingerprint)
                        if problem is not None:
                            problems.append(problem)
                        else:
                            for key in requested:
                                if key in base_entries:
                                    entries[key] = base_entries[key]
                    for shard in sorted(by_shard):
                        entries.update(self._load_shard_keys(
                            directory, shard, by_shard[shard],
                            read_mode, stats))
        stats["found"] = len(entries)
        return self._finish_load(cache, entries, problems, strict)

    def _load_shard_keys(self, directory: Path, shard: int,
                         pairs: List[Tuple], read_mode: str,
                         stats: Dict) -> Dict[Tuple, object]:
        """Rows for the requested ``(key, encoded)`` pairs of one shard
        (call under the shared base lock).  ``index`` mode consults the
        sidecar first; a stale/missing/lying index falls back to
        replaying the whole shard, so the result never depends on index
        health."""
        if read_mode == "index":
            rows = self._index_lookup(directory, shard, pairs, stats)
            if rows is not None:
                return rows
            stats["index_fallback_shards"] += 1
        replayed = self._replay_shard(directory, shard)
        return {key: replayed[key] for key, _ in pairs if key in replayed}

    def _index_lookup(self, directory: Path, shard: int,
                      pairs: List[Tuple],
                      stats: Dict) -> Optional[Dict[Tuple, object]]:
        """Point lookups through one shard's index, or ``None`` when the
        index cannot be trusted (absent, mis-shaped, ``covers`` out of
        date, or a slice that fails to parse back to the requested key).
        A trusted index is authoritative: a digest in neither the tail
        records nor the sorted region is a miss, served without reading
        any row data.  Cost is O(keys · log shard): tail probes are a
        dict lookup, the sorted region is binary-searched with seeks —
        it is never parsed wholesale, so warm-start latency stays flat
        as the store grows.  When the header carries a compaction-built
        fence/bloom filter, misses it can prove (digest outside the
        sorted region's range, or bloom bits unset) skip the bisect
        entirely — counted in ``stats["index_filtered"]``."""
        state = self._read_index_state(directory, shard)
        if (state is None
                or state["covers"] != self._shard_state(directory, shard)):
            return None
        rows: Dict[Tuple, object] = {}
        hits = 0
        handles = {}
        try:
            with open(state["path"], "rb") as index_handle:
                for key, encoded in pairs:
                    digest = _key_digest(encoded)
                    slot = state["tail"].get(digest)
                    if slot is None and state["sorted"]:
                        if self._index_filtered(state, digest):
                            # The filter proves the sorted region does
                            # not hold this digest: authoritative miss
                            # with zero seeks.
                            stats["index_filtered"] += 1
                            continue
                        slot = self._bisect_index(index_handle, state,
                                                  digest)
                    if slot is None:
                        continue  # authoritative miss
                    if not (isinstance(slot, list) and len(slot) == 3):
                        return None
                    name, offset, length = slot
                    handle = handles.get(name)
                    if handle is None:
                        try:
                            handle = open(directory / name, "rb")
                        except (OSError, TypeError):
                            return None
                        handles[name] = handle
                    try:
                        handle.seek(offset)
                        blob = handle.read(length)
                    except (OSError, ValueError, TypeError):
                        return None
                    try:
                        record = json.loads(blob.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        return None
                    if (not isinstance(record, list) or len(record) != 2
                            or _decode_key(record[0]) != key):
                        return None  # digest collision or corrupt slot
                    rows[key] = record[1]
                    hits += 1
        except (OSError, _IndexUnusable):
            return None
        finally:
            for handle in handles.values():
                handle.close()
        stats["index_hits"] += hits
        return rows

    @staticmethod
    def _index_filtered(state: Dict, digest: str) -> bool:
        """Can the fence/bloom prove ``digest`` is not in the sorted
        region?  False negatives are impossible by construction (the
        filters are built from exactly the sorted digests at compaction)
        — so ``True`` is always safe to serve as a miss; ``False`` just
        means "bisect to find out"."""
        fence = state.get("fence")
        if fence is not None and not fence[0] <= digest <= fence[1]:
            return True
        bloom = state.get("bloom")
        if bloom is not None:
            m_bits, bits = bloom
            if not (bits >> (int(digest[:8], 16) % m_bits)) & 1:
                return True
            if not (bits >> (int(digest[8:16], 16) % m_bits)) & 1:
                return True
        return False

    def _bisect_index(self, handle, state: Dict,
                      digest: str) -> Optional[List]:
        """Binary-search the sorted fixed-width region for ``digest``
        via seeks — O(log rows) reads of one record each, never a full
        parse.  A record that does not decode as expected means the
        sidecar is damaged: raises :class:`_IndexUnusable` so the
        caller falls back to shard replay."""
        lo, hi = 0, state["sorted"]
        base = state["header_len"]
        files = state["files"]
        while lo < hi:
            mid = (lo + hi) // 2
            handle.seek(base + mid * _IDX_ROW_WIDTH)
            row = handle.read(_IDX_ROW_WIDTH)
            if len(row) != _IDX_ROW_WIDTH:
                raise _IndexUnusable(f"short index record at slot {mid}")
            row_digest = row[:16].decode("ascii", "replace")
            if row_digest == digest:
                try:
                    file_idx = int(row[17:23])
                    offset = int(row[24:36])
                    length = int(row[37:45])
                except ValueError:
                    raise _IndexUnusable(
                        f"unparseable index record at slot {mid}")
                if not 0 <= file_idx < len(files):
                    raise _IndexUnusable(
                        f"file ordinal {file_idx} out of range")
                return [files[file_idx], offset, length]
            if row_digest < digest:
                lo = mid + 1
            else:
                hi = mid
        return None

    def _finish_load(self, cache: IndicatorCache,
                     entries: Dict[Tuple, object], problems: List[str],
                     strict: bool) -> int:
        if problems:
            self.last_rejection = "; ".join(problems)
            if strict:
                raise StoreError(self.last_rejection)
        merged_keys = []
        for key, value in entries.items():
            if key not in cache:
                cache.put(key, value)
                merged_keys.append(key)
        if hasattr(cache, "mark_clean"):
            cache.mark_clean(merged_keys)
        return len(merged_keys)

    def _read_jsonl_rows(self, path: Path,
                         entries: Dict[Tuple, object]) -> None:
        """Merge one JSONL file's rows into ``entries`` (later lines
        win), tolerating a torn tail or malformed lines — a writer crash
        must not poison its shard."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return  # compacted away between glob and read
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a crashed writer
            if isinstance(record, list) and len(record) == 2:
                entries[_decode_key(record[0])] = record[1]

    def _replay(self, directory: Path, fingerprint: Dict,
                problems: List[str]) -> Dict[Tuple, object]:
        """Bases + segments, later writes winning; unreadable parts are
        reported into ``problems`` and skipped (readable rows still
        load).  Replay order: monolithic ``base.json`` (oldest — the
        pre-index layout), per-shard ``.base.jsonl`` files, then
        segments.  Callers racing a compactor must hold the base lock
        (``load_cache_into`` does; ``_compact_dir`` already holds it), or
        the base-swap-then-unlink sequence could hide segment-only rows
        from them."""
        meta = self._read_meta(directory)
        if (isinstance(meta, dict) and "fingerprint" in meta
                and meta["fingerprint"] != fingerprint):
            problems.append(
                "fingerprint mismatch: persisted cache was written under a "
                "different proxy/macro configuration or store format"
            )
            return {}
        entries: Dict[Tuple, object] = {}
        base_path = self._base_path(directory)
        if base_path.exists():
            base_entries, problem = self._read_entries(base_path,
                                                       fingerprint)
            if problem is not None:
                problems.append(problem)
            else:
                entries.update(base_entries)
        for path in self._shard_base_files(directory):
            self._read_jsonl_rows(path, entries)
        for segment in self._segment_files(directory):
            self._read_jsonl_rows(segment, entries)
        return entries

    def _replay_shard(self, directory: Path,
                      shard: int) -> Dict[Tuple, object]:
        """One shard's base + segments, later writes winning (call under
        the shared base lock).  The monolithic ``base.json`` is *not*
        included — selective callers merge it separately, before shard
        rows."""
        entries: Dict[Tuple, object] = {}
        for path in self._shard_base_files(directory, shard=shard):
            self._read_jsonl_rows(path, entries)
        for segment in self._segment_files(directory, shard=shard):
            self._read_jsonl_rows(segment, entries)
        return entries

    # ------------------------------------------------------------------
    # Indicator cache — compaction and maintenance
    # ------------------------------------------------------------------
    def compact_cache(self, fingerprint: Dict) -> Dict:
        """Fold this fingerprint's segments (and any monolithic
        ``base.json``) into per-shard ``.base.jsonl`` files with freshly
        rebuilt ``.idx.json`` sidecars; returns ``{"segments_folded",
        "entries", "migrated"}``.  Idempotent: with no segments pending
        the bases are rewritten unchanged.  Also migrates a lingering
        format-1 file and sweeps stale staging files."""
        directory, _ = self._ensure_dir(fingerprint)
        migrated = self._migrate_legacy(directory, fingerprint)
        stats = self._compact_dir(directory, fingerprint)
        stats["migrated"] = migrated
        return stats

    def _compact_dir(self, directory: Path, fingerprint: Dict) -> Dict:
        """Segments → per-shard bases under the base lock plus *every*
        shard lock (base first, shards in index order — appenders only
        ever hold a single shard lock, so the ordering cannot deadlock).
        Holding the shard locks across read-fold-unlink is what
        guarantees no append lands between reading a segment and
        deleting it.  The lock span covers the recorded shard count
        *and* every shard index actually present in segment/base
        filenames, so a damaged/missing meta can never leave a live
        appender's shard unlocked while its segments are swept.  Each
        surviving shard gets its index rebuilt atomically alongside its
        base; the monolithic ``base.json`` (pre-index layout) is folded
        in and removed."""
        tel = self.telemetry
        with tel.span("compaction", CAT_STORE) as span:
            meta = self._read_meta(directory)
            n_shards = (int(meta.get("shards", self.shards))
                        if isinstance(meta, dict) else self.shards)
            for path in directory.glob("shard-*.*.jsonl"):
                match = (_SEGMENT_RE.match(path.name)
                         or _SHARD_BASE_RE.match(path.name))
                if match is not None:
                    n_shards = max(n_shards, int(match.group("shard")) + 1)
            with contextlib.ExitStack() as stack:
                stack.enter_context(_file_lock(self._base_path(directory)))
                for shard in range(n_shards):
                    stack.enter_context(
                        _file_lock(self._shard_lock_target(directory, shard))
                    )
                segments = self._segment_files(directory)
                problems: List[str] = []
                entries = self._replay(directory, fingerprint, problems)
                by_shard: Dict[int, List[Tuple[str, str]]] = {}
                for key, value in sorted(entries.items(),
                                         key=lambda kv: repr(kv[0])):
                    encoded = _encode_key(key)
                    try:
                        line = json.dumps([encoded, value])
                    except (TypeError, ValueError):
                        continue
                    by_shard.setdefault(_shard_of(encoded, n_shards),
                                        []).append(
                        (_key_digest(encoded), line))
                for shard in range(n_shards):
                    self._write_shard_base(directory, shard,
                                           by_shard.get(shard, []))
                for segment in segments:
                    with contextlib.suppress(OSError):
                        segment.unlink()
                with contextlib.suppress(OSError):
                    self._base_path(directory).unlink()
            self._sweep_sidecars(directory)
            span.note(segments_folded=len(segments), entries=len(entries))
            tel.count("store.compactions")
        return {"segments_folded": len(segments), "entries": len(entries)}

    def _write_shard_base(self, directory: Path, shard: int,
                          rows: List[Tuple[str, str]]) -> None:
        """One shard's compacted base + rebuilt index (call under the
        compaction locks).  An empty shard loses both files — absence is
        the compact representation, and a fresh index over zero files
        would be pointless."""
        base_path = self._shard_base_path(directory, shard)
        index_path = self._index_path(directory, shard)
        if not rows:
            with contextlib.suppress(OSError):
                base_path.unlink()
            with contextlib.suppress(OSError):
                index_path.unlink()
            return
        text = "\n".join(line for _, line in rows) + "\n"
        _atomic_write_text(base_path, text)
        records = []
        offset = 0
        for digest, line in rows:
            records.append((digest, offset, len(line)))
            offset += len(line) + 1
        records.sort()
        body = [_format_idx_row(digest, 0, start, length)
                for digest, start, length in records]
        if any(len(row) != _IDX_ROW_WIDTH for row in body):
            # A pathological offset/length overflowed the fixed width:
            # no index beats a lying one (absence just means replay).
            with contextlib.suppress(OSError):
                index_path.unlink()
            return
        # Fence + bloom over the sorted region: index-mode misses that
        # fall outside the digest range, or whose bloom bits are unset,
        # skip the bisect entirely (miss-heavy cold populations against
        # huge shards pay O(1) per miss instead of O(log shard) seeks).
        # Tail appends are not covered — readers probe the tail dict
        # before consulting the filter, so correctness never depends on
        # it.  Filters only exist compaction-fresh; an append-created
        # index has no sorted region to guard anyway.
        digests = [digest for digest, _, _ in records]
        m_bits = max(_BLOOM_MIN_BITS, _BLOOM_BITS_PER_ROW * len(digests))
        bits = 0
        for digest in digests:
            bits |= 1 << (int(digest[:8], 16) % m_bits)
            bits |= 1 << (int(digest[8:16], 16) % m_bits)
        header = {"row": _IDX_ROW_WIDTH, "sorted": len(body),
                  "files": [base_path.name],
                  "covers": [[base_path.name, len(text)]],
                  "fence": [digests[0], digests[-1]],
                  "bloom": [m_bits, format(bits, "x")]}
        _atomic_write_text(index_path,
                           json.dumps(header) + "\n" + "".join(body))

    def compact_all(self) -> List[Dict]:
        """Compact every indicator cache in the store; returns one stats
        dict per cache.  Format-1 monoliths are migrated first (each
        embeds the fingerprint it was written under, which maps it to
        its format-2 directory), then every format-2 directory — keyed
        by its ``meta.json`` fingerprint — has its segments folded."""
        results = []
        done = set()
        for path in sorted(self.root.glob("indicator_cache__*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                continue
            legacy = (payload.get("fingerprint")
                      if isinstance(payload, dict) else None)
            if not isinstance(legacy, dict) or legacy.get("format") != 1:
                continue
            fingerprint = dict(legacy, format=STORE_FORMAT)
            if self.legacy_cache_path(fingerprint) != path:
                continue  # hand-copied under a foreign digest: leave it
            stats = self.compact_cache(fingerprint)
            directory = self.cache_dir(fingerprint)
            stats["digest"] = directory.name.split("__", 1)[1]
            results.append(stats)
            done.add(directory.name)
        for directory in sorted(self.root.glob("cache2__*")):
            if directory.name in done:
                continue
            meta = self._read_meta(directory)
            if not isinstance(meta, dict) or "fingerprint" not in meta:
                continue
            stats = self._compact_dir(directory, meta["fingerprint"])
            stats["digest"] = directory.name.split("__", 1)[1]
            stats["migrated"] = 0
            results.append(stats)
        return results

    def gc(self, max_age_seconds: float = 3600.0) -> Dict:
        """Sweep stale ``.tmp`` staging files and ``.lock`` sidecars.

        Crashed writers leave both behind forever (atomic-rename staging
        files are normally renamed away; lock sidecars are recreated per
        use, so their mtime tracks last use).  Age alone is not proof of
        death, so liveness is consulted too: a ``.tmp`` whose embedded
        writer pid is still alive survives any age (a paused/slow writer
        mid-rename must not have its staging file pulled out from under
        it), and a lock is only unlinked while this process *holds* it
        (see :meth:`_unlink_free_lock` — a live holder's flock makes the
        acquire fail).  Returns removal counts per kind.
        """
        return self._sweep(self.root.rglob("*"), ("tmp", "lock"),
                           time.time() - max_age_seconds)

    def _sweep_sidecars(self, directory: Path,
                        max_age_seconds: float = 3600.0) -> int:
        """Compaction's narrower sweep: stale staging files only, in one
        cache directory (locks there are in active use by definition)."""
        return self._sweep(directory.glob("*"), ("tmp",),
                           time.time() - max_age_seconds)["tmp"]

    def _sweep(self, paths: Iterable[Path], kinds: Tuple[str, ...],
               cutoff: float) -> Dict:
        removed = {kind: 0 for kind in kinds}
        for path in paths:
            kind = next((k for k in kinds
                         if path.name.endswith(f".{k}")), None)
            if kind is None:
                continue
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                if kind == "lock":
                    removed[kind] += self._unlink_free_lock(path, cutoff)
                else:
                    match = _TMP_PID_RE.search(path.name)
                    if (match is not None
                            and _pid_alive(int(match.group("pid")))):
                        continue  # live writer mid-rename: not stale
                    path.unlink()
                    removed[kind] += 1
            except OSError:  # vanished mid-sweep
                continue
        return removed

    def _unlink_free_lock(self, path: Path, cutoff: float) -> int:
        """Unlink a lock sidecar only while *holding* it (non-blocking
        acquire, mtime re-checked under the lock), so an active holder's
        lock is never pulled out from under it.  A waiter already
        blocked on the old inode could in principle still split-brain
        with a later writer, but waiting implies recent use, which the
        mtime cutoff already filters out.  Platforms without
        :mod:`fcntl` cannot make that check and skip lock sweeping."""
        if fcntl is None:  # pragma: no cover - platform dependent
            return 0
        try:
            with open(path, "r+", encoding="utf-8") as handle:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                try:
                    if path.stat().st_mtime > cutoff:
                        return 0
                    path.unlink()
                    return 1
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:  # held elsewhere, or vanished mid-check
            return 0

    # ------------------------------------------------------------------
    # Quarantine ledger (fault tolerance)
    # ------------------------------------------------------------------
    def quarantine_path(self, fingerprint: Dict) -> Path:
        """Where this fingerprint's quarantine ledger lives.

        It sits inside the format-2 cache directory: quarantine is a
        property of the candidate *under this configuration* (a genotype
        poisoning the float32 proxies may be fine under float64), and it
        shares the directory's lifecycle (``gc`` of the cache dir drops
        its quarantine decisions with it).
        """
        return self.cache_dir(fingerprint) / "quarantine.jsonl"

    def quarantine_ledger(self, fingerprint: Dict):
        """The shared :class:`~repro.runtime.faults.QuarantineLedger` for
        this fingerprint (creating the cache directory if needed, so the
        ledger can be written before the first indicator row lands)."""
        from repro.runtime.faults import QuarantineLedger

        self._ensure_dir(fingerprint)
        return QuarantineLedger(self.quarantine_path(fingerprint))

    def quarantine_entries(self) -> List[Dict]:
        """Every quarantine entry across all cache directories, with the
        owning digest attached (the ``micronas store quarantine`` view)."""
        from repro.runtime.faults import QuarantineLedger

        entries = []
        for path in sorted(self.root.glob("cache2__*/quarantine.jsonl")):
            digest = path.parent.name.split("__", 1)[1]
            for entry in QuarantineLedger(path).entries():
                entry["digest"] = digest
                entries.append(entry)
        return entries

    def cache_inventory(self) -> List[Dict]:
        """One summary dict per persisted indicator cache (format-2
        directories and any not-yet-migrated format-1 files)."""
        inventory = []
        for directory in sorted(self.root.glob("cache2__*")):
            meta = self._read_meta(directory) or {}  # damaged: still listed
            fingerprint = meta.get("fingerprint")
            if not isinstance(fingerprint, dict):
                fingerprint = None
            base = (self._read_base(directory, fingerprint)
                    if fingerprint else None)
            base_rows: Dict[Tuple, object] = dict(base or {})
            for path in self._shard_base_files(directory):
                self._read_jsonl_rows(path, base_rows)
            segments = self._segment_files(directory)
            size = 0
            for path in directory.glob("*"):
                # Tolerate files a concurrent compaction/gc removes
                # between glob and stat — this is the diagnostic
                # surface; it must never traceback on a live store.
                with contextlib.suppress(OSError):
                    if path.is_file():
                        size += path.stat().st_size
            quarantined = 0
            quarantine = directory / "quarantine.jsonl"
            if quarantine.exists():
                from repro.runtime.faults import QuarantineLedger

                quarantined = len(QuarantineLedger(quarantine))
            inventory.append({
                "digest": directory.name.split("__", 1)[1],
                "format": 2,
                "precision": (fingerprint or {}).get("precision"),
                "shards": meta.get("shards"),
                "base_rows": len(base_rows),
                "segments": len(segments),
                "quarantined": quarantined,
                "bytes": size,
            })
        for path in sorted(self.root.glob("indicator_cache__*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                payload = {}
            if not isinstance(payload, dict):  # damaged: still listed
                payload = {}
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, dict):
                fingerprint = {}
            entries = payload.get("entries")
            size = 0
            with contextlib.suppress(OSError):  # migrated away mid-listing
                size = path.stat().st_size
            inventory.append({
                "digest": path.stem.split("__", 1)[1],
                "format": fingerprint.get("format", 1),
                "precision": fingerprint.get("precision"),
                "shards": None,
                "base_rows": len(entries) if isinstance(entries, list)
                             else 0,
                "segments": 0,
                "quarantined": 0,
                "bytes": size,
            })
        return inventory

    # ------------------------------------------------------------------
    # Device-keyed latency LUT store
    # ------------------------------------------------------------------
    def _lut_paths(self, device_name: str, precision: str,
                   config: MacroConfig) -> Tuple[Path, Path]:
        digest = _lut_digest(device_name, precision, config)
        stem = f"lut__{_slug(device_name)}__{digest}"
        return self.root / f"{stem}.json", self.root / f"{stem}.meta.json"

    def _lut_meta(self, device_name: str, precision: str,
                  config: MacroConfig) -> Dict:
        return {
            "format": STORE_FORMAT,
            "device": device_name,
            "precision": precision,
            "macro": _encode_key(astuple(config)),
        }

    def lut_put(self, lut: LatencyLUT, precision: str,
                config: MacroConfig) -> Path:
        """Persist a profiled LUT under its ``(device, precision, macro)``
        key; the LUT payload itself is plain ``LatencyLUT.save_json``
        output, interoperable with every other consumer.  The write holds
        the key's ``flock`` (the same discipline ``save_cache`` uses), so
        two processes profiling the same board serialise instead of
        racing payload against sidecar."""
        lut_path, meta_path = self._lut_paths(lut.device_name, precision,
                                              config)
        with _file_lock(lut_path):
            tmp_path = lut_path.with_name(
                f"{lut_path.name}.{os.getpid()}.tmp"
            )
            lut.save_json(str(tmp_path))
            os.replace(tmp_path, lut_path)
            _atomic_write_text(
                meta_path,
                json.dumps(self._lut_meta(lut.device_name, precision,
                                          config), indent=2) + "\n",
            )
        return lut_path

    def lut_get(self, device_name: str, precision: str,
                config: MacroConfig) -> Optional[LatencyLUT]:
        """The persisted LUT for this exact key, or ``None``.

        Both the sidecar metadata and the payload's own ``device_name``
        must match the request — a file copied between device directories
        or written under a different macro config is rejected, never
        silently served.
        """
        self.last_rejection = None
        lut_path, meta_path = self._lut_paths(device_name, precision, config)
        if not (lut_path.exists() and meta_path.exists()):
            self.last_rejection = f"no persisted LUT for {device_name!r}"
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            lut = LatencyLUT.load_json(str(lut_path))
        except (ValueError, OSError, KeyError) as exc:
            self.last_rejection = f"unreadable LUT file: {exc}"
            return None
        expected = self._lut_meta(device_name, precision, config)
        if meta != expected or lut.device_name != device_name:
            self.last_rejection = (
                f"LUT fingerprint mismatch for {device_name!r}: persisted "
                "under a different device/precision/macro configuration"
            )
            return None
        return lut

    def lut_keys(self) -> List[Dict]:
        """Metadata of every persisted LUT (device-keyed inventory)."""
        keys = []
        for meta_path in sorted(self.root.glob("lut__*.meta.json")):
            try:
                keys.append(json.loads(meta_path.read_text(encoding="utf-8")))
            except (ValueError, OSError):
                continue
        return keys


__all__ = [
    "RuntimeStore",
    "StoreError",
    "cache_fingerprint",
    "STORE_FORMAT",
    "DEFAULT_SHARDS",
    "DEFAULT_AUTO_COMPACT_SEGMENTS",
    "READ_MODES",
]
