"""Persistent store for indicator caches and device latency LUTs.

Board profiling and proxy evaluation are the two costs every run pays
again from scratch: the in-memory
:class:`~repro.engine.cache.IndicatorCache` dies with the process and each
device re-profiles its LUT.  :class:`RuntimeStore` is a directory-backed
store that makes both survive:

* **Indicator cache — store format 2, a sharded append-only segment
  log.**  Each fingerprint (see :func:`cache_fingerprint`) owns one
  directory::

      cache2__<digest>/
          meta.json                       # fingerprint + shard count
          base.json                       # compacted rows (optional)
          shard-03.seg-00000002.4711.jsonl  # one append per save

  ``save_cache`` appends only the cache's **dirty rows** (those written
  since the last load/save — :meth:`~repro.engine.cache.IndicatorCache.
  dirty_items`), hashed by stable key into ``shards`` buckets; each touched
  shard gets one new atomically-renamed JSONL segment per save, numbered
  under the shard's own ``flock``.  Persistence cost is therefore O(rows
  this run computed), independent of how large the store already is — the
  property process fleets sharing one store directory need.  Loading
  replays ``base.json`` then every segment in ``(shard, sequence, pid)``
  order with **last-write-wins** per key; a **compaction** pass
  (:meth:`RuntimeStore.compact_cache`, the ``micronas store compact`` CLI,
  or automatically once accumulated segments rival the base in bytes,
  past an :attr:`RuntimeStore.auto_compact_segments` file-count floor —
  log-structured amortization) folds all segments back into ``base.json``
  under the base + every shard lock; loads replay under the base lock
  too, so readers and concurrent appenders racing a compaction lose
  nothing.

  Cache keys are plain nested tuples of strings and integers (the key
  contract in :mod:`repro.engine`), round-tripped through JSON with a
  recursive list↔tuple conversion; values may be ``inf``/``nan``.  The
  fingerprint guards the global assumptions (store format, indicator
  schema, proxy/macro config, proxy compute precision) — a mismatched
  directory loads nothing, so stale entries can never poison results, and
  float32/float64 runs keep separate directories.

  **Format-1 read-compat:** the monolithic ``indicator_cache__*.json``
  files earlier versions wrote still load (validated under their own
  format-1 fingerprint), and the first ``save_cache`` migrates them into
  the format-2 directory, after which the legacy file is removed.

* **Latency LUTs** — one file per ``(device, precision, macro config)``
  key, written under a ``flock`` with :meth:`~repro.hardware.profiler.
  LatencyLUT.save_json` so files interoperate with every other LUT
  consumer, plus a sidecar ``.meta.json`` holding the key fingerprint that
  loading validates.  The digest folds in the *raw* device name (not just
  its filename slug), so names that slug identically (``"jetson nano"`` vs
  ``"jetson-nano"``) key distinct files.  Multi-device Pareto searches and
  CI profile each board once, ever.

Maintenance: :meth:`RuntimeStore.gc` sweeps stale ``.tmp`` staging files
and ``.lock`` sidecars crashed writers left behind, and
:meth:`RuntimeStore.cache_inventory` / :meth:`RuntimeStore.lut_keys` feed
the ``micronas store inventory`` listing.

The store is duck-typed by its consumers: :class:`repro.engine.Engine`
and :class:`~repro.hardware.latency.LatencyEstimator` only call
``lut_get``/``lut_put``, and the harness calls
``load_cache_into``/``save_cache`` — neither imports this module.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import time
from dataclasses import astuple
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

try:  # POSIX advisory locks; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

from repro.engine.cache import IndicatorCache
from repro.engine.core import INDICATOR_NAMES
from repro.errors import ReproError
from repro.hardware.profiler import LatencyLUT
from repro.proxies.base import ProxyConfig
from repro.runtime.telemetry import Telemetry
from repro.runtime.tracing import CAT_STORE
from repro.searchspace.network import MacroConfig

#: Bump when the meaning of cached values or the on-disk layout changes;
#: old store files then self-invalidate (LUTs) or are migrated (indicator
#: caches — format 1 has an explicit read path below).  Format 2: sharded
#: append-only indicator segments + device-name-keyed LUT digests.
STORE_FORMAT = 2

#: Shard count for new cache directories (recorded in ``meta.json``).
DEFAULT_SHARDS = 8

#: Segment-count floor for auto-compaction: past this many files the
#: store considers folding, but only actually rewrites the base once the
#: accumulated segment bytes rival it (or the count is 16× the floor) —
#: log-structured amortization that keeps every-gather flushing O(delta)
#: amortized instead of rewriting the whole store every ``shards`` saves.
DEFAULT_AUTO_COMPACT_SEGMENTS = 64

_SEGMENT_RE = re.compile(
    r"^shard-(?P<shard>\d+)\.seg-(?P<seq>\d+)\.(?P<pid>\d+)\.jsonl$"
)


class StoreError(ReproError):
    """Raised for unusable store contents in strict mode."""


def cache_fingerprint(proxy_config: ProxyConfig,
                      macro_config: MacroConfig) -> Dict:
    """Identity of everything a cached indicator value depends on.

    Cache *keys* already embed per-entry configuration, so entries can
    never alias each other; the fingerprint guards the remaining global
    assumptions — store format, indicator schema and the engine's own
    proxy/macro configs — under which the file was written.

    Precision is folded in on one scheme across both store halves: the
    indicator-cache fingerprint carries the proxy *compute* precision
    (``ProxyConfig.precision``, also inside the encoded proxy tuple), so
    float32 and float64 runs write separate fingerprint-keyed files and
    coexist in one store directory; latency LUTs are keyed by the
    deployment *kernel* precision (``float32``/``int8``) exactly as
    before — the two axes are independent and never mix.
    """
    return {
        "format": STORE_FORMAT,
        "indicators": list(INDICATOR_NAMES),
        "precision": proxy_config.precision,
        "proxy": _encode_key(astuple(proxy_config)),
        "macro": _encode_key(astuple(macro_config)),
    }


def _legacy_fingerprint(fingerprint: Dict) -> Dict:
    """The same identity as format 1 wrote it (only ``format`` differs
    — indicator values are bit-compatible across the layout change, which
    is what makes read-side migration sound)."""
    return dict(fingerprint, format=1)


def _encode_key(key):
    """Tuples → lists, recursively (JSON has no tuple type)."""
    if isinstance(key, tuple):
        return [_encode_key(part) for part in key]
    return key


def _decode_key(obj):
    """Lists → tuples, recursively (inverse of :func:`_encode_key`)."""
    if isinstance(obj, list):
        return tuple(_decode_key(part) for part in obj)
    return obj


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so concurrent readers (two runs sharing one
    store directory) never observe a torn file.  The staging name is
    per-process so concurrent writers of the same key cannot interleave
    into one tmp file either — last rename wins, both are whole."""
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(text, encoding="utf-8")
    os.replace(tmp_path, path)


@contextlib.contextmanager
def _file_lock(path: Path, shared: bool = False):
    """Advisory lock on a ``.lock`` sidecar of ``path`` (exclusive by
    default; ``shared=True`` takes a read lock).

    Atomic renames alone keep concurrent *readers* safe but let two
    writers race read-merge-write: whoever renames last silently drops
    the other's freshly computed rows.  Serialising writers through
    ``flock`` — per cache shard, per LUT key, per base file — makes
    concurrent saves into one store directory lose nothing; readers take
    the base lock *shared*, so a fleet of warm-starting processes replay
    concurrently while still excluding the compactor's fold-and-unlink.
    Platforms without :mod:`fcntl` degrade to the pre-lock behaviour
    (whole-file atomicity, last writer wins) rather than failing.
    """
    if fcntl is None:  # pragma: no cover - platform dependent
        yield
        return
    lock_path = path.with_name(f"{path.name}.lock")
    with open(lock_path, "w", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _lut_digest(device_name: str, precision: str, config: MacroConfig) -> str:
    # The raw device name is hashed alongside precision+macro: two names
    # that collapse to one filename slug must still key distinct files.
    material = json.dumps([device_name, precision,
                           _encode_key(astuple(config))])
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def _fingerprint_digest(fingerprint: Dict) -> str:
    material = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def _shard_of(encoded_key, n_shards: int) -> int:
    """Stable shard assignment from the JSON-encoded key (process- and
    run-independent, unlike ``hash()`` under PYTHONHASHSEED)."""
    material = json.dumps(encoded_key, sort_keys=True, default=str)
    digest = hashlib.sha1(material.encode("utf-8")).hexdigest()[:8]
    return int(digest, 16) % n_shards


class RuntimeStore:
    """Directory-backed persistence for indicator caches and latency LUTs.

    ``shards`` sets the bucket count for *new* cache directories (existing
    directories keep the count recorded in their ``meta.json``);
    ``auto_compact_segments`` is the segment-file count past which
    :meth:`save_cache` *considers* folding a directory's segments into
    its base — the fold actually triggers on the byte-amortized rule in
    :meth:`_should_auto_compact` (``None`` disables auto-compaction —
    e.g. for benchmarks isolating append cost).
    """

    def __init__(self, root, shards: int = DEFAULT_SHARDS,
                 auto_compact_segments: Optional[int]
                 = DEFAULT_AUTO_COMPACT_SEGMENTS,
                 telemetry: Optional[Telemetry] = None) -> None:
        if shards < 1:
            raise StoreError("shards must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self.auto_compact_segments = auto_compact_segments
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry.disabled())
        #: Why the last load/get returned nothing (diagnostics/reporting).
        self.last_rejection: Optional[str] = None

    # ------------------------------------------------------------------
    # Indicator cache — paths and directory plumbing
    # ------------------------------------------------------------------
    def cache_dir(self, fingerprint: Dict) -> Path:
        """Format-2 cache directory for this fingerprint.  Directories are
        fingerprint-keyed so runs under different configurations (seed,
        proxy scale, macro, precision) sharing one store coexist instead
        of overwriting each other's warm-start data."""
        return self.root / f"cache2__{_fingerprint_digest(fingerprint)}"

    def legacy_cache_path(self, fingerprint: Dict) -> Path:
        """Where store format 1 kept this fingerprint's monolithic file
        (still read, and migrated into :meth:`cache_dir` on first save)."""
        digest = _fingerprint_digest(_legacy_fingerprint(fingerprint))
        return self.root / f"indicator_cache__{digest}.json"

    def _base_path(self, directory: Path) -> Path:
        return directory / "base.json"

    def _meta_path(self, directory: Path) -> Path:
        return directory / "meta.json"

    def _shard_lock_target(self, directory: Path, shard: int) -> Path:
        # _file_lock appends ".lock"; the target itself is never created.
        return directory / f"shard-{shard:02d}"

    def _read_meta(self, directory: Path) -> Optional[Dict]:
        try:
            meta = json.loads(self._meta_path(directory)
                              .read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return None
        return meta if isinstance(meta, dict) else None

    def _ensure_dir(self, fingerprint: Dict) -> Tuple[Path, int]:
        """Create the cache directory + ``meta.json`` if missing; returns
        ``(directory, shard_count)`` (the recorded count wins, so every
        writer agrees on the key→shard map).  A *present but unreadable*
        meta is refused rather than rewritten: silently re-recording a
        shard count would re-hash keys across shards and break the
        per-shard ordering last-write-wins rests on."""
        directory = self.cache_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        meta = self._read_meta(directory)
        if meta is None:
            with _file_lock(self._meta_path(directory)):
                meta = self._read_meta(directory)  # raced creation
                if meta is None:
                    if self._meta_path(directory).exists():
                        raise StoreError(
                            f"unreadable store meta: "
                            f"{self._meta_path(directory)} — fix or "
                            "remove the cache directory"
                        )
                    meta = {"format": STORE_FORMAT,
                            "fingerprint": fingerprint,
                            "shards": self.shards}
                    _atomic_write_text(self._meta_path(directory),
                                       json.dumps(meta) + "\n")
        return directory, int(meta.get("shards", self.shards))

    def _segment_files(self, directory: Path,
                       shard: Optional[int] = None) -> List[Path]:
        """Segment files in replay order: ``(shard, sequence, pid)``.
        A key lives in exactly one shard, so cross-shard order is
        irrelevant; within a shard the flock-issued sequence numbers
        order saves, making last-write-wins well defined."""
        found = []
        for path in directory.glob("shard-*.seg-*.jsonl"):
            match = _SEGMENT_RE.match(path.name)
            if match is None:
                continue
            index = int(match.group("shard"))
            if shard is not None and index != shard:
                continue
            found.append((index, int(match.group("seq")),
                          int(match.group("pid")), path))
        return [item[3] for item in sorted(found)]

    def _next_segment_path(self, directory: Path, shard: int) -> Path:
        """Next sequence number for this shard (call under its lock)."""
        last = 0
        for path in self._segment_files(directory, shard=shard):
            last = max(last, int(_SEGMENT_RE.match(path.name).group("seq")))
        return directory / (f"shard-{shard:02d}.seg-{last + 1:08d}"
                            f".{os.getpid()}.jsonl")

    # ------------------------------------------------------------------
    # Indicator cache — save (O(delta) append)
    # ------------------------------------------------------------------
    def save_cache(self, cache: IndicatorCache, fingerprint: Dict) -> int:
        """Append the cache's dirty rows under ``fingerprint``; returns
        how many rows were appended (the delta — 0 when nothing changed
        since the last load/save).

        Cost is O(rows appended), independent of total store size: each
        touched shard gets one new atomically-renamed segment file,
        numbered under the shard's ``flock``, so concurrent runs sharing
        one store directory each contribute their freshly computed rows
        and none are dropped.  Replay is last-write-wins per key, and the
        determinism contract makes colliding writers bit-identical
        anyway.  A caller without dirty tracking (any mapping exposing
        ``items()``) falls back to appending everything.

        First save against a fingerprint also migrates its format-1
        monolithic file into the directory, and once the directory
        accumulates :attr:`auto_compact_segments` segment files the save
        triggers a compaction.  A zero-delta save with nothing to
        migrate returns without touching the directory at all, so the
        harness's every-gather flush is free on cache-hit-heavy gathers.
        Non-JSON-serialisable values, which the engine never produces,
        are skipped rather than corrupting the store (and stay dirty).

        Note the delta is relative to the last load/save against *any*
        store (dirtiness lives on the cache, not per store root):
        mirroring one cache into several stores needs ``items()``-level
        copying, not repeated ``save_cache`` calls.
        """
        tel = self.telemetry
        if not tel.enabled:
            return self._save_cache_impl(cache, fingerprint)
        with tel.span("store_flush", CAT_STORE) as span:
            appended = self._save_cache_impl(cache, fingerprint)
            span.note(rows=appended)
            tel.count("store.rows_appended", appended)
            tel.count("store.flushes")
            return appended

    def _save_cache_impl(self, cache: IndicatorCache,
                         fingerprint: Dict) -> int:
        rows = list(getattr(cache, "dirty_items", cache.items)())
        if not rows and not self.legacy_cache_path(fingerprint).exists():
            return 0
        directory, n_shards = self._ensure_dir(fingerprint)
        self._migrate_legacy(directory, fingerprint)
        by_shard: Dict[int, List[str]] = {}
        appended_keys = []
        for key, value in rows:
            encoded = _encode_key(key)
            try:
                line = json.dumps([encoded, value])
            except (TypeError, ValueError):
                continue
            by_shard.setdefault(_shard_of(encoded, n_shards), []).append(line)
            appended_keys.append(key)
        for shard in sorted(by_shard):
            with _file_lock(self._shard_lock_target(directory, shard)):
                _atomic_write_text(self._next_segment_path(directory, shard),
                                   "\n".join(by_shard[shard]) + "\n")
        if hasattr(cache, "mark_clean"):
            cache.mark_clean(appended_keys)
        if self._should_auto_compact(directory):
            self._compact_dir(directory, fingerprint)
        return len(appended_keys)

    def _should_auto_compact(self, directory: Path) -> bool:
        """Compact when the segment *bytes* have grown to rival the base
        (a rewrite then costs at most ~2× what appending those rows
        cost — classic log-structured amortization, keeping save cost
        O(delta) amortized even with every-gather flushing), or when the
        file count alone gets excessive (glob/replay overhead).  A bare
        file-count trigger would fire every ``shards`` saves and rewrite
        the whole store on the hot path."""
        threshold = self.auto_compact_segments
        if threshold is None:
            return False
        segments = self._segment_files(directory)
        if len(segments) <= threshold:
            return False
        if len(segments) > threshold * 16:
            return True
        try:
            base_bytes = self._base_path(directory).stat().st_size
        except OSError:
            return True  # no base yet: first fold is cheap by definition
        segment_bytes = 0
        for segment in segments:
            with contextlib.suppress(OSError):
                segment_bytes += segment.stat().st_size
        return segment_bytes >= base_bytes

    def _migrate_legacy(self, directory: Path, fingerprint: Dict) -> int:
        """Fold a format-1 monolithic file into ``base.json`` and remove
        it; returns rows migrated (0 when there is nothing to migrate).
        Rows already in the format-2 base win — they are newer."""
        legacy_path = self.legacy_cache_path(fingerprint)
        if not legacy_path.exists():
            return 0
        with _file_lock(legacy_path):
            if not legacy_path.exists():  # another process migrated first
                return 0
            entries = self._read_legacy(legacy_path, fingerprint)
            if entries is None:
                return 0  # unreadable/foreign: leave it for diagnosis
            base_path = self._base_path(directory)
            with _file_lock(base_path):
                merged = dict(entries)
                merged.update(self._read_base(directory, fingerprint) or {})
                self._write_base(directory, fingerprint, merged)
            legacy_path.unlink()
            return len(entries)

    def _read_entries(self, path: Path, expected_fingerprint: Dict
                      ) -> Tuple[Optional[Dict[Tuple, object]],
                                 Optional[str]]:
        """Parse one monolithic payload file (legacy or base): returns
        ``(entries, problem)`` with exactly one of them ``None`` — the
        single parse/validate path every reader shares."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            return None, f"unreadable cache file: {exc}"
        if (not isinstance(payload, dict)
                or payload.get("fingerprint") != expected_fingerprint):
            return None, (
                "fingerprint mismatch: persisted cache was written under a "
                "different proxy/macro configuration or store format"
            )
        try:
            return ({_decode_key(encoded): value
                     for encoded, value in payload.get("entries", [])},
                    None)
        except (TypeError, ValueError):
            return None, f"malformed cache payload: {path.name}"

    def _read_legacy(self, path: Path,
                     fingerprint: Dict) -> Optional[Dict[Tuple, object]]:
        return self._read_entries(path, _legacy_fingerprint(fingerprint))[0]

    def _read_base(self, directory: Path,
                   fingerprint: Dict) -> Optional[Dict[Tuple, object]]:
        """Base entries, or ``None`` when absent/unreadable/mismatched."""
        base_path = self._base_path(directory)
        if not base_path.exists():
            return None
        return self._read_entries(base_path, fingerprint)[0]

    def _write_base(self, directory: Path, fingerprint: Dict,
                    entries: Dict[Tuple, object]) -> None:
        ordered = sorted(entries.items(), key=lambda kv: repr(kv[0]))
        payload = {
            "fingerprint": fingerprint,
            "entries": [[_encode_key(key), value] for key, value in ordered],
        }
        _atomic_write_text(self._base_path(directory),
                           json.dumps(payload) + "\n")

    # ------------------------------------------------------------------
    # Indicator cache — load (replay with last-write-wins)
    # ------------------------------------------------------------------
    def load_cache_into(self, cache: IndicatorCache, fingerprint: Dict,
                        strict: bool = False) -> int:
        """Merge persisted entries into ``cache``; returns how many landed.

        Replays ``base.json`` then every segment in order (last write
        wins per key), plus any not-yet-migrated format-1 file (oldest,
        so format-2 rows override it).  A missing store, unreadable JSON
        or a fingerprint mismatch loads nothing from the offending part
        (``last_rejection`` says why); with ``strict=True`` a *present
        but rejected* file raises :class:`StoreError` instead, so CI can
        distinguish "cold" from "poisoned".  Entries already in the cache
        keep their in-memory value; loaded rows are marked clean, so the
        next :meth:`save_cache` does not re-append them.
        """
        tel = self.telemetry
        if not tel.enabled:
            return self._load_cache_impl(cache, fingerprint, strict)
        with tel.span("store_load", CAT_STORE) as span:
            loaded = self._load_cache_impl(cache, fingerprint, strict)
            span.note(rows=loaded)
            return loaded

    def _load_cache_impl(self, cache: IndicatorCache, fingerprint: Dict,
                         strict: bool) -> int:
        self.last_rejection = None
        directory = self.cache_dir(fingerprint)
        legacy_path = self.legacy_cache_path(fingerprint)
        entries: Dict[Tuple, object] = {}
        problems: List[str] = []
        if legacy_path.exists():
            legacy_entries, problem = self._read_entries(
                legacy_path, _legacy_fingerprint(fingerprint))
            if problem is not None:
                # A concurrent first-save may have migrated the file
                # away between exists() and the read: that is a healthy
                # store (the rows are in the format-2 directory read
                # below), not a poisoned one.
                if legacy_path.exists():
                    problems.append(problem)
            else:
                entries.update(legacy_entries)
        if directory.exists():
            # Under the base lock, *shared*: concurrent warm-starting
            # readers replay side by side, while the compactor (which
            # holds it exclusively across fold-and-unlink) cannot swap
            # the base and delete segments between our base read and
            # segment glob — the reader half of the "racing a compaction
            # loses nothing" guarantee.
            with _file_lock(self._base_path(directory), shared=True):
                entries.update(self._replay(directory, fingerprint,
                                            problems))
        elif not legacy_path.exists():
            self.last_rejection = "no persisted cache"
            return 0
        if problems:
            self.last_rejection = "; ".join(problems)
            if strict:
                raise StoreError(self.last_rejection)
        merged_keys = []
        for key, value in entries.items():
            if key not in cache:
                cache.put(key, value)
                merged_keys.append(key)
        if hasattr(cache, "mark_clean"):
            cache.mark_clean(merged_keys)
        return len(merged_keys)

    def _replay(self, directory: Path, fingerprint: Dict,
                problems: List[str]) -> Dict[Tuple, object]:
        """Base + segments, later writes winning; unreadable parts are
        reported into ``problems`` and skipped (readable rows still
        load).  Malformed individual segment lines are tolerated — a
        writer crash must not poison its shard.  Callers racing a
        compactor must hold the base lock (``load_cache_into`` does;
        ``_compact_dir`` already holds it), or the base-swap-then-unlink
        sequence could hide segment-only rows from them."""
        meta = self._read_meta(directory)
        if (isinstance(meta, dict) and "fingerprint" in meta
                and meta["fingerprint"] != fingerprint):
            problems.append(
                "fingerprint mismatch: persisted cache was written under a "
                "different proxy/macro configuration or store format"
            )
            return {}
        entries: Dict[Tuple, object] = {}
        base_path = self._base_path(directory)
        if base_path.exists():
            base_entries, problem = self._read_entries(base_path,
                                                       fingerprint)
            if problem is not None:
                problems.append(problem)
            else:
                entries.update(base_entries)
        for segment in self._segment_files(directory):
            try:
                text = segment.read_text(encoding="utf-8")
            except OSError:
                continue  # compacted away between glob and read
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a crashed writer
                if isinstance(record, list) and len(record) == 2:
                    entries[_decode_key(record[0])] = record[1]
        return entries

    # ------------------------------------------------------------------
    # Indicator cache — compaction and maintenance
    # ------------------------------------------------------------------
    def compact_cache(self, fingerprint: Dict) -> Dict:
        """Fold this fingerprint's segments into ``base.json``; returns
        ``{"segments_folded", "entries", "migrated"}``.  Idempotent: with
        no segments pending the base is rewritten unchanged.  Also
        migrates a lingering format-1 file and sweeps stale staging
        files."""
        directory, _ = self._ensure_dir(fingerprint)
        migrated = self._migrate_legacy(directory, fingerprint)
        stats = self._compact_dir(directory, fingerprint)
        stats["migrated"] = migrated
        return stats

    def _compact_dir(self, directory: Path, fingerprint: Dict) -> Dict:
        """Segments → base under the base lock plus *every* shard lock
        (base first, shards in index order — appenders only ever hold a
        single shard lock, so the ordering cannot deadlock).  Holding the
        shard locks across read-fold-unlink is what guarantees no append
        lands between reading a segment and deleting it.  The lock span
        covers the recorded shard count *and* every shard index actually
        present in segment filenames, so a damaged/missing meta can never
        leave a live appender's shard unlocked while its segments are
        swept."""
        tel = self.telemetry
        with tel.span("compaction", CAT_STORE) as span:
            meta = self._read_meta(directory)
            n_shards = (int(meta.get("shards", self.shards))
                        if isinstance(meta, dict) else self.shards)
            for path in directory.glob("shard-*.seg-*.jsonl"):
                match = _SEGMENT_RE.match(path.name)
                if match is not None:
                    n_shards = max(n_shards, int(match.group("shard")) + 1)
            with contextlib.ExitStack() as stack:
                stack.enter_context(_file_lock(self._base_path(directory)))
                for shard in range(n_shards):
                    stack.enter_context(
                        _file_lock(self._shard_lock_target(directory, shard))
                    )
                segments = self._segment_files(directory)
                problems: List[str] = []
                entries = self._replay(directory, fingerprint, problems)
                self._write_base(directory, fingerprint, entries)
                for segment in segments:
                    with contextlib.suppress(OSError):
                        segment.unlink()
            self._sweep_sidecars(directory)
            span.note(segments_folded=len(segments), entries=len(entries))
            tel.count("store.compactions")
        return {"segments_folded": len(segments), "entries": len(entries)}

    def compact_all(self) -> List[Dict]:
        """Compact every indicator cache in the store; returns one stats
        dict per cache.  Format-1 monoliths are migrated first (each
        embeds the fingerprint it was written under, which maps it to
        its format-2 directory), then every format-2 directory — keyed
        by its ``meta.json`` fingerprint — has its segments folded."""
        results = []
        done = set()
        for path in sorted(self.root.glob("indicator_cache__*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                continue
            legacy = (payload.get("fingerprint")
                      if isinstance(payload, dict) else None)
            if not isinstance(legacy, dict) or legacy.get("format") != 1:
                continue
            fingerprint = dict(legacy, format=STORE_FORMAT)
            if self.legacy_cache_path(fingerprint) != path:
                continue  # hand-copied under a foreign digest: leave it
            stats = self.compact_cache(fingerprint)
            directory = self.cache_dir(fingerprint)
            stats["digest"] = directory.name.split("__", 1)[1]
            results.append(stats)
            done.add(directory.name)
        for directory in sorted(self.root.glob("cache2__*")):
            if directory.name in done:
                continue
            meta = self._read_meta(directory)
            if not isinstance(meta, dict) or "fingerprint" not in meta:
                continue
            stats = self._compact_dir(directory, meta["fingerprint"])
            stats["digest"] = directory.name.split("__", 1)[1]
            stats["migrated"] = 0
            results.append(stats)
        return results

    def gc(self, max_age_seconds: float = 3600.0) -> Dict:
        """Sweep stale ``.tmp`` staging files and ``.lock`` sidecars.

        Crashed writers leave both behind forever (atomic-rename staging
        files are normally renamed away; lock sidecars are recreated per
        use, so their mtime tracks last use).  Only files untouched for
        ``max_age_seconds`` go — a live writer's staging file or held
        lock is always fresher than any sane threshold — and a lock is
        only unlinked while this process *holds* it (see
        :meth:`_unlink_free_lock`).  Returns removal counts per kind.
        """
        return self._sweep(self.root.rglob("*"), ("tmp", "lock"),
                           time.time() - max_age_seconds)

    def _sweep_sidecars(self, directory: Path,
                        max_age_seconds: float = 3600.0) -> int:
        """Compaction's narrower sweep: stale staging files only, in one
        cache directory (locks there are in active use by definition)."""
        return self._sweep(directory.glob("*"), ("tmp",),
                           time.time() - max_age_seconds)["tmp"]

    def _sweep(self, paths: Iterable[Path], kinds: Tuple[str, ...],
               cutoff: float) -> Dict:
        removed = {kind: 0 for kind in kinds}
        for path in paths:
            kind = next((k for k in kinds
                         if path.name.endswith(f".{k}")), None)
            if kind is None:
                continue
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                if kind == "lock":
                    removed[kind] += self._unlink_free_lock(path, cutoff)
                else:
                    path.unlink()
                    removed[kind] += 1
            except OSError:  # vanished mid-sweep
                continue
        return removed

    def _unlink_free_lock(self, path: Path, cutoff: float) -> int:
        """Unlink a lock sidecar only while *holding* it (non-blocking
        acquire, mtime re-checked under the lock), so an active holder's
        lock is never pulled out from under it.  A waiter already
        blocked on the old inode could in principle still split-brain
        with a later writer, but waiting implies recent use, which the
        mtime cutoff already filters out.  Platforms without
        :mod:`fcntl` cannot make that check and skip lock sweeping."""
        if fcntl is None:  # pragma: no cover - platform dependent
            return 0
        try:
            with open(path, "r+", encoding="utf-8") as handle:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                try:
                    if path.stat().st_mtime > cutoff:
                        return 0
                    path.unlink()
                    return 1
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:  # held elsewhere, or vanished mid-check
            return 0

    # ------------------------------------------------------------------
    # Quarantine ledger (fault tolerance)
    # ------------------------------------------------------------------
    def quarantine_path(self, fingerprint: Dict) -> Path:
        """Where this fingerprint's quarantine ledger lives.

        It sits inside the format-2 cache directory: quarantine is a
        property of the candidate *under this configuration* (a genotype
        poisoning the float32 proxies may be fine under float64), and it
        shares the directory's lifecycle (``gc`` of the cache dir drops
        its quarantine decisions with it).
        """
        return self.cache_dir(fingerprint) / "quarantine.jsonl"

    def quarantine_ledger(self, fingerprint: Dict):
        """The shared :class:`~repro.runtime.faults.QuarantineLedger` for
        this fingerprint (creating the cache directory if needed, so the
        ledger can be written before the first indicator row lands)."""
        from repro.runtime.faults import QuarantineLedger

        self._ensure_dir(fingerprint)
        return QuarantineLedger(self.quarantine_path(fingerprint))

    def quarantine_entries(self) -> List[Dict]:
        """Every quarantine entry across all cache directories, with the
        owning digest attached (the ``micronas store quarantine`` view)."""
        from repro.runtime.faults import QuarantineLedger

        entries = []
        for path in sorted(self.root.glob("cache2__*/quarantine.jsonl")):
            digest = path.parent.name.split("__", 1)[1]
            for entry in QuarantineLedger(path).entries():
                entry["digest"] = digest
                entries.append(entry)
        return entries

    def cache_inventory(self) -> List[Dict]:
        """One summary dict per persisted indicator cache (format-2
        directories and any not-yet-migrated format-1 files)."""
        inventory = []
        for directory in sorted(self.root.glob("cache2__*")):
            meta = self._read_meta(directory) or {}  # damaged: still listed
            fingerprint = meta.get("fingerprint")
            if not isinstance(fingerprint, dict):
                fingerprint = None
            base = (self._read_base(directory, fingerprint)
                    if fingerprint else None)
            segments = self._segment_files(directory)
            size = 0
            for path in directory.glob("*"):
                # Tolerate files a concurrent compaction/gc removes
                # between glob and stat — this is the diagnostic
                # surface; it must never traceback on a live store.
                with contextlib.suppress(OSError):
                    if path.is_file():
                        size += path.stat().st_size
            quarantined = 0
            quarantine = directory / "quarantine.jsonl"
            if quarantine.exists():
                from repro.runtime.faults import QuarantineLedger

                quarantined = len(QuarantineLedger(quarantine))
            inventory.append({
                "digest": directory.name.split("__", 1)[1],
                "format": 2,
                "precision": (fingerprint or {}).get("precision"),
                "shards": meta.get("shards"),
                "base_rows": len(base) if base is not None else 0,
                "segments": len(segments),
                "quarantined": quarantined,
                "bytes": size,
            })
        for path in sorted(self.root.glob("indicator_cache__*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                payload = {}
            if not isinstance(payload, dict):  # damaged: still listed
                payload = {}
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, dict):
                fingerprint = {}
            entries = payload.get("entries")
            size = 0
            with contextlib.suppress(OSError):  # migrated away mid-listing
                size = path.stat().st_size
            inventory.append({
                "digest": path.stem.split("__", 1)[1],
                "format": fingerprint.get("format", 1),
                "precision": fingerprint.get("precision"),
                "shards": None,
                "base_rows": len(entries) if isinstance(entries, list)
                             else 0,
                "segments": 0,
                "quarantined": 0,
                "bytes": size,
            })
        return inventory

    # ------------------------------------------------------------------
    # Device-keyed latency LUT store
    # ------------------------------------------------------------------
    def _lut_paths(self, device_name: str, precision: str,
                   config: MacroConfig) -> Tuple[Path, Path]:
        digest = _lut_digest(device_name, precision, config)
        stem = f"lut__{_slug(device_name)}__{digest}"
        return self.root / f"{stem}.json", self.root / f"{stem}.meta.json"

    def _lut_meta(self, device_name: str, precision: str,
                  config: MacroConfig) -> Dict:
        return {
            "format": STORE_FORMAT,
            "device": device_name,
            "precision": precision,
            "macro": _encode_key(astuple(config)),
        }

    def lut_put(self, lut: LatencyLUT, precision: str,
                config: MacroConfig) -> Path:
        """Persist a profiled LUT under its ``(device, precision, macro)``
        key; the LUT payload itself is plain ``LatencyLUT.save_json``
        output, interoperable with every other consumer.  The write holds
        the key's ``flock`` (the same discipline ``save_cache`` uses), so
        two processes profiling the same board serialise instead of
        racing payload against sidecar."""
        lut_path, meta_path = self._lut_paths(lut.device_name, precision,
                                              config)
        with _file_lock(lut_path):
            tmp_path = lut_path.with_name(
                f"{lut_path.name}.{os.getpid()}.tmp"
            )
            lut.save_json(str(tmp_path))
            os.replace(tmp_path, lut_path)
            _atomic_write_text(
                meta_path,
                json.dumps(self._lut_meta(lut.device_name, precision,
                                          config), indent=2) + "\n",
            )
        return lut_path

    def lut_get(self, device_name: str, precision: str,
                config: MacroConfig) -> Optional[LatencyLUT]:
        """The persisted LUT for this exact key, or ``None``.

        Both the sidecar metadata and the payload's own ``device_name``
        must match the request — a file copied between device directories
        or written under a different macro config is rejected, never
        silently served.
        """
        self.last_rejection = None
        lut_path, meta_path = self._lut_paths(device_name, precision, config)
        if not (lut_path.exists() and meta_path.exists()):
            self.last_rejection = f"no persisted LUT for {device_name!r}"
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            lut = LatencyLUT.load_json(str(lut_path))
        except (ValueError, OSError, KeyError) as exc:
            self.last_rejection = f"unreadable LUT file: {exc}"
            return None
        expected = self._lut_meta(device_name, precision, config)
        if meta != expected or lut.device_name != device_name:
            self.last_rejection = (
                f"LUT fingerprint mismatch for {device_name!r}: persisted "
                "under a different device/precision/macro configuration"
            )
            return None
        return lut

    def lut_keys(self) -> List[Dict]:
        """Metadata of every persisted LUT (device-keyed inventory)."""
        keys = []
        for meta_path in sorted(self.root.glob("lut__*.meta.json")):
            try:
                keys.append(json.loads(meta_path.read_text(encoding="utf-8")))
            except (ValueError, OSError):
                continue
        return keys


__all__ = [
    "RuntimeStore",
    "StoreError",
    "cache_fingerprint",
    "STORE_FORMAT",
    "DEFAULT_SHARDS",
    "DEFAULT_AUTO_COMPACT_SEGMENTS",
]
