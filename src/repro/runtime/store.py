"""Persistent store for indicator caches and device latency LUTs.

Board profiling and proxy evaluation are the two costs every run pays
again from scratch: the in-memory
:class:`~repro.engine.cache.IndicatorCache` dies with the process and each
device re-profiles its LUT.  :class:`RuntimeStore` is a directory-backed
store that makes both survive:

* **Indicator cache** — cache keys are plain nested tuples of strings and
  integers (see the key contract in :mod:`repro.engine`), so they
  round-trip through JSON losslessly with a recursive list↔tuple
  conversion.  The file carries a **fingerprint** of the proxy/macro
  configuration (plus a format version and the indicator schema); loading
  under a different configuration rejects the whole file, so stale
  entries can never poison results.  Values may be ``inf``/``nan``
  (serialised with Python's JSON extensions).  Saves are *locked
  read-merge-writes* (``flock`` sidecar): concurrent runs sharing one
  store directory union their rows, neither corrupting nor dropping the
  other's work.  The fingerprint includes the proxy compute precision
  (:func:`cache_fingerprint`), so float32 and float64 runs keep separate
  files — warm-starts never serve rows computed under another policy.
* **Latency LUTs** — one file per ``(device, precision, macro config)``
  key, written with :meth:`~repro.hardware.profiler.LatencyLUT.save_json`
  so files interoperate with every other LUT consumer, plus a sidecar
  ``.meta.json`` holding the key fingerprint that loading validates.
  Multi-device Pareto searches and CI profile each board once, ever.

The store is duck-typed by its consumers: :class:`repro.engine.Engine`
and :class:`~repro.hardware.latency.LatencyEstimator` only call
``lut_get``/``lut_put``, and the harness calls
``load_cache_into``/``save_cache`` — neither imports this module.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
from dataclasses import astuple
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # POSIX advisory locks; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

from repro.engine.cache import IndicatorCache
from repro.engine.core import INDICATOR_NAMES
from repro.errors import ReproError
from repro.hardware.profiler import LatencyLUT
from repro.proxies.base import ProxyConfig
from repro.searchspace.network import MacroConfig

#: Bump when the meaning of cached values changes (e.g. a kernel rewrite
#: that is not bit-compatible); old store files then self-invalidate.
STORE_FORMAT = 1


class StoreError(ReproError):
    """Raised for unusable store contents in strict mode."""


def cache_fingerprint(proxy_config: ProxyConfig,
                      macro_config: MacroConfig) -> Dict:
    """Identity of everything a cached indicator value depends on.

    Cache *keys* already embed per-entry configuration, so entries can
    never alias each other; the fingerprint guards the remaining global
    assumptions — store format, indicator schema and the engine's own
    proxy/macro configs — under which the file was written.

    Precision is folded in on one scheme across both store halves: the
    indicator-cache fingerprint carries the proxy *compute* precision
    (``ProxyConfig.precision``, also inside the encoded proxy tuple), so
    float32 and float64 runs write separate fingerprint-keyed files and
    coexist in one store directory; latency LUTs are keyed by the
    deployment *kernel* precision (``float32``/``int8``) exactly as
    before — the two axes are independent and never mix.
    """
    return {
        "format": STORE_FORMAT,
        "indicators": list(INDICATOR_NAMES),
        "precision": proxy_config.precision,
        "proxy": _encode_key(astuple(proxy_config)),
        "macro": _encode_key(astuple(macro_config)),
    }


def _encode_key(key):
    """Tuples → lists, recursively (JSON has no tuple type)."""
    if isinstance(key, tuple):
        return [_encode_key(part) for part in key]
    return key


def _decode_key(obj):
    """Lists → tuples, recursively (inverse of :func:`_encode_key`)."""
    if isinstance(obj, list):
        return tuple(_decode_key(part) for part in obj)
    return obj


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so concurrent readers (two runs sharing one
    store directory) never observe a torn file.  The staging name is
    per-process so concurrent writers of the same key cannot interleave
    into one tmp file either — last rename wins, both are whole."""
    tmp_path = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp_path.write_text(text, encoding="utf-8")
    os.replace(tmp_path, path)


@contextlib.contextmanager
def _file_lock(path: Path):
    """Exclusive advisory lock on a ``.lock`` sidecar of ``path``.

    Atomic renames alone keep concurrent *readers* safe but let two
    writers race read-merge-write: whoever renames last silently drops
    the other's freshly computed rows.  Serialising the whole
    read-merge-write through ``flock`` makes concurrent saves into one
    store directory lose nothing.  Platforms without :mod:`fcntl`
    degrade to the pre-lock behaviour (whole-file atomicity, last
    writer wins) rather than failing.
    """
    if fcntl is None:  # pragma: no cover - platform dependent
        yield
        return
    lock_path = path.with_name(f"{path.name}.lock")
    with open(lock_path, "w", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _lut_digest(precision: str, config: MacroConfig) -> str:
    material = json.dumps([precision, _encode_key(astuple(config))])
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def _fingerprint_digest(fingerprint: Dict) -> str:
    material = json.dumps(fingerprint, sort_keys=True, default=str)
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


class RuntimeStore:
    """Directory-backed persistence for indicator caches and latency LUTs."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Why the last load/get returned nothing (diagnostics/reporting).
        self.last_rejection: Optional[str] = None

    # ------------------------------------------------------------------
    # Indicator cache
    # ------------------------------------------------------------------
    def cache_path(self, fingerprint: Dict) -> Path:
        """Cache file for this fingerprint.  Files are fingerprint-keyed
        so runs under different configurations (seed, proxy scale, macro)
        sharing one store directory coexist instead of overwriting each
        other's warm-start data."""
        return self.root / (
            f"indicator_cache__{_fingerprint_digest(fingerprint)}.json"
        )

    def save_cache(self, cache: IndicatorCache, fingerprint: Dict) -> int:
        """Merge-save every cache entry under ``fingerprint``; returns the
        number of entries the file holds afterwards.

        The save is a locked read-merge-write: rows another process
        persisted since this cache was loaded are folded in rather than
        clobbered, so concurrent runs sharing one store directory each
        contribute their freshly computed rows and none are dropped.
        In-memory values win on key collisions (both writers computed
        them bit-identically anyway — see the determinism contract).
        Non-JSON-serialisable values, which the engine never produces,
        are skipped rather than corrupting the file.
        """
        path = self.cache_path(fingerprint)
        with _file_lock(path):
            entries: Dict[Tuple, object] = {}
            if path.exists():
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (ValueError, OSError):
                    payload = None  # unreadable: rebuild from memory
                if payload and payload.get("fingerprint") == fingerprint:
                    for encoded_key, value in payload.get("entries", []):
                        entries[_decode_key(encoded_key)] = value
            for key, value in cache.items():
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    continue
                entries[key] = value
            ordered = sorted(entries.items(), key=lambda kv: repr(kv[0]))
            payload = {
                "fingerprint": fingerprint,
                "entries": [[_encode_key(key), value]
                            for key, value in ordered],
            }
            _atomic_write_text(path, json.dumps(payload) + "\n")
            return len(ordered)

    def load_cache_into(self, cache: IndicatorCache, fingerprint: Dict,
                        strict: bool = False) -> int:
        """Merge persisted entries into ``cache``; returns how many landed.

        A missing file, unreadable JSON or a fingerprint mismatch loads
        nothing (``last_rejection`` says why); with ``strict=True`` a
        *present but rejected* file raises :class:`StoreError` instead, so
        CI can distinguish "cold" from "poisoned".  Entries already in the
        cache keep their in-memory value.
        """
        self.last_rejection = None
        path = self.cache_path(fingerprint)
        if not path.exists():
            self.last_rejection = "no persisted cache"
            return 0
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            self.last_rejection = f"unreadable cache file: {exc}"
            if strict:
                raise StoreError(self.last_rejection) from exc
            return 0
        if payload.get("fingerprint") != fingerprint:
            self.last_rejection = (
                "fingerprint mismatch: persisted cache was written under a "
                "different proxy/macro configuration or store format"
            )
            if strict:
                raise StoreError(self.last_rejection)
            return 0
        merged = 0
        for encoded_key, value in payload.get("entries", []):
            key = _decode_key(encoded_key)
            if key not in cache:
                cache.put(key, value)
                merged += 1
        return merged

    # ------------------------------------------------------------------
    # Device-keyed latency LUT store
    # ------------------------------------------------------------------
    def _lut_paths(self, device_name: str, precision: str,
                   config: MacroConfig) -> Tuple[Path, Path]:
        stem = f"lut__{_slug(device_name)}__{_lut_digest(precision, config)}"
        return self.root / f"{stem}.json", self.root / f"{stem}.meta.json"

    def _lut_meta(self, device_name: str, precision: str,
                  config: MacroConfig) -> Dict:
        return {
            "format": STORE_FORMAT,
            "device": device_name,
            "precision": precision,
            "macro": _encode_key(astuple(config)),
        }

    def lut_put(self, lut: LatencyLUT, precision: str,
                config: MacroConfig) -> Path:
        """Persist a profiled LUT under its ``(device, precision, macro)``
        key; the LUT payload itself is plain ``LatencyLUT.save_json``
        output, interoperable with every other consumer."""
        lut_path, meta_path = self._lut_paths(lut.device_name, precision,
                                              config)
        tmp_path = lut_path.with_name(
            f"{lut_path.name}.{os.getpid()}.tmp"
        )
        lut.save_json(str(tmp_path))
        os.replace(tmp_path, lut_path)
        _atomic_write_text(
            meta_path,
            json.dumps(self._lut_meta(lut.device_name, precision, config),
                       indent=2) + "\n",
        )
        return lut_path

    def lut_get(self, device_name: str, precision: str,
                config: MacroConfig) -> Optional[LatencyLUT]:
        """The persisted LUT for this exact key, or ``None``.

        Both the sidecar metadata and the payload's own ``device_name``
        must match the request — a file copied between device directories
        or written under a different macro config is rejected, never
        silently served.
        """
        self.last_rejection = None
        lut_path, meta_path = self._lut_paths(device_name, precision, config)
        if not (lut_path.exists() and meta_path.exists()):
            self.last_rejection = f"no persisted LUT for {device_name!r}"
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            lut = LatencyLUT.load_json(str(lut_path))
        except (ValueError, OSError, KeyError) as exc:
            self.last_rejection = f"unreadable LUT file: {exc}"
            return None
        expected = self._lut_meta(device_name, precision, config)
        if meta != expected or lut.device_name != device_name:
            self.last_rejection = (
                f"LUT fingerprint mismatch for {device_name!r}: persisted "
                "under a different device/precision/macro configuration"
            )
            return None
        return lut

    def lut_keys(self) -> List[Dict]:
        """Metadata of every persisted LUT (device-keyed inventory)."""
        keys = []
        for meta_path in sorted(self.root.glob("lut__*.meta.json")):
            try:
                keys.append(json.loads(meta_path.read_text(encoding="utf-8")))
            except (ValueError, OSError):
                continue
        return keys


__all__ = ["RuntimeStore", "StoreError", "cache_fingerprint", "STORE_FORMAT"]
