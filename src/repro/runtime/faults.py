"""Fault tolerance for the asynchronous evaluation runtime.

A single-host run can pretend workers never die; a fleet cannot.  This
module holds the failure *policy* the async runtime executes — the
mechanisms live in :mod:`repro.runtime.async_pool` (per-chunk deadlines,
pool respawn) and the policy objects here decide what happens next:

* :func:`classify_failure` — the taxonomy.  A chunk failure is either
  **transient** (timeouts, I/O hiccups, lost workers: retrying may
  succeed) or **poison** (a deterministic exception from the worker's own
  compute: retrying the same candidate will fail forever).  The split
  drives two different recoveries: transient failures are retried with
  exponential backoff, poison chunks are *bisected* so one bad genotype
  cannot sink its chunk-mates, and the lone offender left at the bottom
  of the bisection is quarantined.
* :class:`FaultPolicy` — the knobs: per-chunk deadline, retry budget,
  backoff schedule with **deterministic jitter** (derived from the chunk
  identity + attempt number, never from wall clock or a global RNG, so
  fault-injection tests replay exactly), pool-respawn budget.
* :class:`QuarantineLedger` — a ``flock``'d append-only JSONL file of
  quarantined candidate identities, living inside the format-2 store
  directory so quarantine decisions survive restarts and are shared by
  every process using the store.  The executor consults it at submit
  time: a quarantined key is never shipped again.
* :class:`FaultPlan` — the deterministic fault-injection harness the
  tests and ``benchmarks/bench_fault_tolerance.py`` drive: a picklable
  worker wrapper that crashes (``os._exit``), hangs (sleeps past the
  chunk deadline), flakes (one transient raise) or poisons (raises
  forever) on *scripted candidate identities*, with cross-process
  attempt counting through a ``flock``'d state file — no wall-clock
  randomness anywhere, so every failure mode is replayable.

Everything here is transport-agnostic: the same classification, ledger
and plan drive the single-host fork pool today and are the failure
semantics the distributed fleet (ROADMAP item 1) inherits.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # POSIX advisory locks; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

from repro.errors import SearchError
from repro.searchspace.genotype import Genotype


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
class ChunkTimeoutError(SearchError):
    """A chunk future outlived its per-chunk deadline and was abandoned."""


class TransientWorkerError(SearchError):
    """A worker failure that is explicitly safe to retry.

    Remote transports (and the fault-injection plan) raise this to mark
    a failure as environmental — network blip, preempted host — rather
    than a property of the candidate being evaluated.
    """


class ScriptedPoisonError(SearchError):
    """The deterministic 'poison candidate' failure a FaultPlan injects."""

    def __init__(self, identity: object) -> None:
        super().__init__(f"scripted poison candidate {identity!r}")
        self.identity = identity


#: Classification outcomes (plain strings: they travel through stats
#: dicts and ledger rows, where an enum would just be noise).
TRANSIENT = "transient"
POISON = "poison"
WORKER_LOST = "worker-lost"


def classify_failure(error: BaseException) -> str:
    """Sort one chunk failure into the retry taxonomy.

    * :data:`WORKER_LOST` — the pool itself died (``BrokenExecutor``).
      The transport already respawned and resubmitted once per death
      within its budget; seeing this here means that budget is spent.
    * :data:`TRANSIENT` — deadline expiry, explicit transient markers,
      and the I/O-shaped exceptions (``OSError``/``EOFError``/
      ``TimeoutError``) infrastructure produces: retry with backoff.
    * :data:`POISON` — everything else.  A deterministic exception from
      the worker's own compute re-raises on every retry by the runtime's
      determinism contract, so it is bisected down to the offending
      candidate and quarantined instead of retried forever.
    """
    if isinstance(error, BrokenExecutor):
        return WORKER_LOST
    if isinstance(error, (ChunkTimeoutError, TransientWorkerError,
                          OSError, EOFError, TimeoutError)):
        return TRANSIENT
    return POISON


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass
class FaultPolicy:
    """Retry/timeout/quarantine knobs for one async executor.

    ``backoff_delay`` is a pure function of ``(material, attempt)`` —
    exponential in the attempt with a ±``backoff_jitter`` fraction of
    deterministic jitter hashed from the chunk identity, so colliding
    retries de-synchronise without any wall-clock randomness (the
    property that keeps fault-injection tests bit-replayable).
    ``sleep`` is injectable so tests can record delays instead of
    paying them.
    """

    chunk_timeout: Optional[float] = None  # seconds; None = no deadline
    max_retries: int = 2                   # transient retries per chunk
    backoff_base: float = 0.05             # first-retry delay, seconds
    backoff_factor: float = 2.0            # exponential growth per retry
    backoff_jitter: float = 0.25           # ± fraction of the delay
    max_respawns: int = 3                  # pool-death recoveries per run
    quarantine: bool = True                # False: poison raises instead
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SearchError("max_retries must be >= 0")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise SearchError("chunk_timeout must be positive (or None)")

    def backoff_delay(self, material: object, attempt: int) -> float:
        """Deterministic exponential backoff with hashed jitter.

        ``attempt`` counts completed attempts (the first retry passes 0).
        """
        delay = self.backoff_base * (self.backoff_factor ** attempt)
        digest = hashlib.sha1(
            repr((material, attempt)).encode("utf-8")
        ).hexdigest()[:8]
        unit = int(digest, 16) / float(0xFFFFFFFF)  # [0, 1], deterministic
        return delay * (1.0 + self.backoff_jitter * (2.0 * unit - 1.0))


# ----------------------------------------------------------------------
# Quarantine ledger
# ----------------------------------------------------------------------
def _encode_identity(identity):
    """Tuples → lists, recursively (mirrors the store's key encoding)."""
    if isinstance(identity, tuple):
        return [_encode_identity(part) for part in identity]
    return identity


def _decode_identity(obj):
    if isinstance(obj, list):
        return tuple(_decode_identity(part) for part in obj)
    return obj


class _LockedFile:
    """Tiny flock wrapper (kept local: the store's lock helper guards
    sibling paths; the ledger and fault-plan state lock *their own*
    file handle, which also lets them read+append atomically)."""

    def __init__(self, path: Path, mode: str) -> None:
        self.path = Path(path)
        self.mode = mode

    def __enter__(self):
        self.handle = open(self.path, self.mode, encoding="utf-8")
        if fcntl is not None:
            fcntl.flock(self.handle, fcntl.LOCK_EX)
        return self.handle

    def __exit__(self, *exc: object) -> None:
        try:
            if fcntl is not None:
                fcntl.flock(self.handle, fcntl.LOCK_UN)
        finally:
            self.handle.close()


class QuarantineLedger:
    """Append-only JSONL record of quarantined candidate identities.

    One line per quarantined candidate::

        {"kind": "genotype", "identity": 1462,
         "reason": "ValueError('...')", "attempts": 3}

    Appends hold the file's own ``flock`` and re-read before writing, so
    concurrent executors sharing a store directory union their
    quarantine decisions instead of duplicating or clobbering them.
    Reads are crash-tolerant (torn tail lines are skipped) — the same
    discipline as the store's segment replay.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[Tuple[str, object], Dict] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def _parse_lines(self, text: str) -> None:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a crashed writer
            if not isinstance(record, dict) or "identity" not in record:
                continue
            kind = record.get("kind", "genotype")
            identity = _decode_identity(record["identity"])
            self._entries.setdefault((kind, identity), {
                "kind": kind,
                "identity": identity,
                "reason": record.get("reason", ""),
                "attempts": record.get("attempts", 1),
            })

    def load(self) -> int:
        """(Re)read the ledger; returns the number of distinct entries."""
        self._entries = {}
        self._loaded = True
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return 0
        self._parse_lines(text)
        return len(self._entries)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    def add(self, kind: str, identity: object, reason: str,
            attempts: int = 1) -> bool:
        """Record one quarantined identity; returns ``False`` when it was
        already present (locally or, after the under-lock re-read, from a
        concurrent writer)."""
        self._ensure_loaded()
        if (kind, identity) in self._entries:
            return False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _LockedFile(self.path, "a+") as handle:
            handle.seek(0)
            self._parse_lines(handle.read())
            if (kind, identity) in self._entries:
                return False
            record = {
                "kind": kind,
                "identity": _encode_identity(identity),
                "reason": reason[:300],
                "attempts": attempts,
            }
            handle.write(json.dumps(record) + "\n")
            handle.flush()
        self._entries[(kind, identity)] = {
            "kind": kind, "identity": identity,
            "reason": reason[:300], "attempts": attempts,
        }
        return True

    def identities(self, kind: str) -> set:
        self._ensure_loaded()
        return {identity for k, identity in self._entries if k == kind}

    def entries(self) -> List[Dict]:
        self._ensure_loaded()
        return [dict(entry) for entry in self._entries.values()]

    def __contains__(self, key: Tuple[str, object]) -> bool:
        self._ensure_loaded()
        return key in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------
def chunk_item_identity(kind: str, item: Tuple) -> object:
    """The candidate identity of one chunk item, as quarantine keys it.

    Genotype chunk items carry ``(ops, needs)`` — the identity is the
    *canonical index* (the ops are already canonical at submit time);
    supernet items carry ``(state, needs)`` — the state tuple is its own
    identity.
    """
    head = item[0]
    if kind == "genotype":
        return Genotype(tuple(head)).to_index()
    return head


def _payload_kind(payload: Tuple) -> str:
    # Genotype payloads are (items, proxy_config, macro_config);
    # supernet payloads are (items, proxy_config).
    return "genotype" if len(payload) == 3 else "supernet"


#: FaultPlan actions.
OK = "ok"
POISON_ACTION = "poison"   # raise ScriptedPoisonError, every attempt
FLAKE = "flake"            # raise TransientWorkerError, then heal
CRASH = "crash"            # os._exit: kills the worker process
HANG = "hang"              # sleep past any sane chunk deadline

_ACTIONS = (OK, POISON_ACTION, FLAKE, CRASH, HANG)


@dataclass
class FaultPlan:
    """A deterministic, cross-process schedule of injected worker faults.

    Faults are keyed by **candidate identity** (canonical genotype index
    or supernet state), never by call count alone, so the schedule is
    stable under chunking, bisection, retries and pool respawns.  Two
    selection mechanisms compose:

    * ``script`` — an explicit ``{identity: (action, action, ...)}``
      map; attempt *n* on that identity consumes the *n*-th action
      (exhausted scripts act ``"ok"``, except a trailing ``"poison"``,
      which repeats forever — deterministic errors do not heal).
    * ``hash_rate`` — fleet-scale fuzzing: an identity is faulted when
      ``sha1(identity) % 10000 < hash_rate * 10000``, with the action
      drawn (deterministically, from the same digest) out of
      ``hash_actions``.  Non-poison hash faults fire once and heal.

    Attempt counts persist in a ``flock``'d append-only state file, so
    fork workers — including workers of a *respawned* pool — share one
    counter; :meth:`wrap` returns a picklable worker wrapper.
    """

    state_path: str
    script: Dict[object, Tuple[str, ...]] = field(default_factory=dict)
    hash_rate: float = 0.0
    hash_actions: Tuple[str, ...] = (POISON_ACTION,)
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for actions in self.script.values():
            for action in actions:
                if action not in _ACTIONS:
                    raise SearchError(f"unknown fault action {action!r}")
        for action in self.hash_actions:
            if action not in _ACTIONS:
                raise SearchError(f"unknown fault action {action!r}")

    # ------------------------------------------------------------------
    def _consume_attempt(self, identity: object) -> int:
        """Next attempt number (1-based) for this identity, shared across
        processes through the flock'd state file."""
        marker = json.dumps(_encode_identity(identity), sort_keys=True)
        with _LockedFile(Path(self.state_path), "a+") as handle:
            handle.seek(0)
            attempts = sum(1 for line in handle.read().splitlines()
                           if line == marker)
            handle.write(marker + "\n")
            handle.flush()
        return attempts + 1

    @staticmethod
    def _digest(identity: object) -> int:
        material = json.dumps(_encode_identity(identity), sort_keys=True)
        return int(hashlib.sha1(material.encode("utf-8")).hexdigest()[:12],
                   16)

    def action_for(self, identity: object) -> str:
        """The action this attempt on ``identity`` should suffer."""
        scripted = self.script.get(identity)
        hashed = None
        if scripted is None and self.hash_rate > 0.0:
            digest = self._digest(identity)
            if digest % 10000 < int(self.hash_rate * 10000):
                hashed = self.hash_actions[
                    (digest // 10000) % len(self.hash_actions)
                ]
                if hashed == OK:
                    hashed = None
        if scripted is None and hashed is None:
            return OK  # clean identity: no state-file traffic
        attempt = self._consume_attempt(identity)
        if scripted is not None:
            if attempt <= len(scripted):
                return scripted[attempt - 1]
            return (POISON_ACTION if scripted and scripted[-1] == POISON_ACTION
                    else OK)
        if hashed == POISON_ACTION:
            return POISON_ACTION  # poison never heals
        return hashed if attempt == 1 else OK

    def wrap(self, worker: Callable) -> "PlannedWorker":
        """A picklable worker executing this plan around ``worker``."""
        return PlannedWorker(self, worker)


class PlannedWorker:
    """Worker wrapper executing a :class:`FaultPlan` (picklable: both the
    plan and the wrapped worker ship to fork workers by value/reference).

    The *first* scripted item in a chunk decides the whole chunk's fate
    — exactly the failure shape bisection exists to unpick."""

    def __init__(self, plan: FaultPlan, inner: Callable) -> None:
        self.plan = plan
        self.inner = inner

    def __call__(self, payload: Tuple):
        kind = _payload_kind(payload)
        for item in payload[0]:
            identity = chunk_item_identity(kind, item)
            action = self.plan.action_for(identity)
            if action == OK:
                continue
            if action == POISON_ACTION:
                raise ScriptedPoisonError(identity)
            if action == FLAKE:
                raise TransientWorkerError(
                    f"scripted transient failure for {identity!r}"
                )
            if action == CRASH:
                os._exit(23)
            if action == HANG:
                time.sleep(self.plan.hang_seconds)
        return self.inner(payload)


__all__ = [
    "ChunkTimeoutError",
    "FaultPlan",
    "FaultPolicy",
    "PlannedWorker",
    "QuarantineLedger",
    "ScriptedPoisonError",
    "TransientWorkerError",
    "TRANSIENT",
    "POISON",
    "WORKER_LOST",
    "classify_failure",
    "chunk_item_identity",
]
