"""Shared utilities: seeded RNG handling, timing, and table formatting."""

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.tabulate import format_table

__all__ = ["RngMixin", "new_rng", "spawn_rng", "Timer", "format_table"]
