"""Wall-clock timing helpers used by the search-cost accounting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class CostLedger:
    """Accumulates named cost entries (seconds, evaluation counts).

    Search algorithms record every proxy evaluation and every simulated
    training here so benchmarks can report total search cost in a uniform
    way.
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, key: str, seconds: float = 0.0, count: int = 1) -> None:
        self.seconds[key] = self.seconds.get(key, 0.0) + seconds
        self.counts[key] = self.counts.get(key, 0) + count

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def total_count(self) -> int:
        return sum(self.counts.values())

    def merged(self, other: "CostLedger") -> "CostLedger":
        out = CostLedger(dict(self.seconds), dict(self.counts))
        for key, sec in other.seconds.items():
            out.seconds[key] = out.seconds.get(key, 0.0) + sec
        for key, cnt in other.counts.items():
            out.counts[key] = out.counts.get(key, 0) + cnt
        return out


def format_duration(seconds: float) -> str:
    """Render seconds as a short human-readable duration string."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}min"
    return f"{seconds / 3600.0:.2f}h"


def collect_durations(timers: List[Timer]) -> float:
    """Sum elapsed time across a list of finished timers."""
    return sum(t.elapsed for t in timers)
