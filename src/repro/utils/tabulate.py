"""Minimal dependency-free table formatting for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _render_cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Iterable[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
    floatfmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Format rows into an aligned ASCII table.

    Floats are rendered with ``floatfmt``; everything else with ``str``.
    Used by every benchmark harness so the paper tables print uniformly.
    """
    rendered: List[List[str]] = [
        [_render_cell(cell, floatfmt) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers] if headers else None
    all_rows = ([header_row] if header_row else []) + rendered
    if not all_rows:
        return title or ""
    n_cols = max(len(row) for row in all_rows)
    widths = [0] * n_cols
    for row in all_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        cells = [cell.ljust(widths[idx]) for idx, cell in enumerate(row)]
        return "| " + " | ".join(cells) + " |"

    lines: List[str] = []
    if title:
        lines.append(title)
    if header_row:
        lines.append(fmt_row(header_row))
        lines.append("|-" + "-|-".join("-" * w for w in widths) + "-|")
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
