"""Deterministic random-number-generator helpers.

Every stochastic component in the library takes an explicit seed or
:class:`numpy.random.Generator`.  These helpers centralise construction so
experiments are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Passing an existing generator returns it unchanged, which lets call
    chains share one RNG stream when desired.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, *keys: object) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and hashable keys.

    The child stream is a deterministic function of the parent seed sequence
    and the keys, so e.g. per-architecture noise is stable regardless of
    evaluation order.
    """
    material = [abs(hash(k)) % (2**32) for k in keys]
    seeds = rng.integers(0, 2**32, size=4).tolist()
    return np.random.default_rng(seeds + material)


def stable_seed(*keys: object) -> int:
    """Hash arbitrary keys into a stable 63-bit integer seed.

    Unlike :func:`hash`, this does not depend on ``PYTHONHASHSEED`` for
    strings: it uses a simple FNV-1a over the ``repr`` of each key.
    """
    acc = 0xCBF29CE484222325
    for key in keys:
        for byte in repr(key).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) % (2**64)
    return acc % (2**63)


class RngMixin:
    """Mixin providing a lazily-created, seeded ``self.rng`` attribute."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator to a fresh stream from ``seed``."""
        self._seed = seed
        self._rng = new_rng(seed)
