"""Additional zero-cost proxies from the literature.

MicroNAS's hybrid objective uses the NTK condition number and the
linear-region count.  The zero-shot NAS literature the paper builds on
(TE-NAS, Zen-NAS, NASWOT, zero-cost-proxies) offers several alternatives;
we implement the standard suite so the objective ablation can compare
against them:

* :func:`grad_norm_score` — L2 norm of the loss gradient (Abdelfattah et
  al., 2021),
* :func:`snip_score` — connection sensitivity Σ|w · ∂L/∂w| (Lee et al.,
  2019),
* :func:`synflow_score` — synaptic flow Σ w · ∂R/∂w with all-positive
  weights and an all-ones input (Tanaka et al., 2020),
* :func:`fisher_score` — empirical Fisher information Σ(∂L/∂w)²,
* :func:`jacob_cov_score` — per-sample input-Jacobian correlation score
  (Mellor et al., 2021 variant),
* :func:`naswot_score` — log-determinant of the ReLU activation-pattern
  Hamming kernel (NASWOT).

All are **higher-is-better** except where noted in :data:`PROXY_REGISTRY`.
Each proxy builds the same reduced network the NTK proxy uses, so scores
are directly comparable in ablations.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional

import numpy as np

from repro.autograd import Tensor, cross_entropy, no_grad
from repro.autograd.precision import precision
from repro.errors import ProxyError
from repro.nn.layers.activation import ReLU
from repro.nn.module import Module
from repro.proxies.base import ProxyConfig
from repro.proxies.linear_regions import count_line_regions
from repro.proxies.ntk import ntk_condition_number
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import build_network
from repro.utils.rng import SeedLike, new_rng, stable_seed


def _build(genotype: Genotype, config: ProxyConfig, seed_tag: str,
           rng: SeedLike = None, record_patterns: bool = False):
    generator = new_rng(
        rng if rng is not None
        else stable_seed(seed_tag, config.seed, genotype.to_index())
    )
    network = build_network(genotype, config.macro_config(), rng=generator,
                            record_patterns=record_patterns)
    images = generator.normal(
        size=(config.ntk_batch_size, 3, config.input_size, config.input_size)
    )
    labels = np.arange(config.ntk_batch_size) % config.num_classes
    return network, images, labels


def _loss_gradients(network: Module, images: np.ndarray,
                    labels: np.ndarray) -> None:
    """Populate parameter gradients of the cross-entropy loss."""
    network.train(True)
    network.zero_grad()
    logits = network(Tensor(images))
    loss = cross_entropy(logits, labels)
    loss.backward()


def grad_norm_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
                    rng: SeedLike = None) -> float:
    """L2 norm of the loss gradient at initialisation (higher = better)."""
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, images, labels = _build(genotype, config, "gradnorm", rng)
        _loss_gradients(network, images, labels)
        total = 0.0
        for p in network.parameters():
            if p.grad is not None:
                total += float((p.grad**2).sum())
    return total**0.5


def snip_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
               rng: SeedLike = None) -> float:
    """Connection sensitivity Σ|w · ∂L/∂w| (higher = better)."""
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, images, labels = _build(genotype, config, "snip", rng)
        _loss_gradients(network, images, labels)
        total = 0.0
        for p in network.parameters():
            if p.grad is not None:
                total += float(np.abs(p.data * p.grad).sum())
    return total


def fisher_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
                 rng: SeedLike = None) -> float:
    """Diagonal empirical Fisher information Σ(∂L/∂w)² (higher = better)."""
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, images, labels = _build(genotype, config, "fisher", rng)
        _loss_gradients(network, images, labels)
        total = 0.0
        for p in network.parameters():
            if p.grad is not None:
                total += float((p.grad**2).sum())
    return total


def synflow_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
                  rng: SeedLike = None) -> float:
    """Synaptic flow: Σ w · ∂R/∂w with |w| weights and an all-ones input.

    BatchNorm is put in eval mode with unit statistics so the network is a
    positive linear map, as the SynFlow construction requires.
    """
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, _, _ = _build(genotype, config, "synflow", rng)
        # Linearise: absolute weights, neutral BatchNorm.
        from repro.nn.layers.norm import BatchNorm2d

        saved = []
        for p in network.parameters():
            saved.append(p.data.copy())
            p.data = np.abs(p.data)
        for m in network.modules():
            if isinstance(m, BatchNorm2d):
                m.running_mean[...] = 0.0
                m.running_var[...] = 1.0
        network.train(False)
        network.zero_grad()
        ones = np.ones((1, 3, config.input_size, config.input_size))
        output = network(Tensor(ones))
        output.sum().backward()
        total = 0.0
        for p, original in zip(network.parameters(), saved):
            if p.grad is not None:
                total += float(np.abs(p.data * p.grad).sum())
            p.data = original
    return total


def jacob_cov_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
                    rng: SeedLike = None) -> float:
    """Input-Jacobian correlation score (higher = better).

    Per-sample gradients of the summed logits w.r.t. the *input* are
    correlated across the batch; diverse responses (correlation matrix
    close to identity) indicate expressive networks.
    """
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, images, _ = _build(genotype, config, "jacobcov", rng)
        network.train(True)
        x = Tensor(images, requires_grad=True)
        output = network(x)
        output.sum().backward()
        if x.grad is None:
            raise ProxyError("input gradient missing")
        jac = x.grad.reshape(images.shape[0], -1)
    stds = jac.std(axis=1)
    if np.any(stds < 1e-12):
        return -1e9  # degenerate (disconnected) network
    corr = np.corrcoef(jac)
    eigenvalues = np.linalg.eigvalsh(corr)
    k = 1e-5
    return float(-np.sum(np.log(eigenvalues + k) + 1.0 / (eigenvalues + k)))


def naswot_score(genotype: Genotype, config: Optional[ProxyConfig] = None,
                 rng: SeedLike = None) -> float:
    """NASWOT: log|K_H| of the ReLU-pattern Hamming kernel (higher = better)."""
    config = config or ProxyConfig()
    with precision(config.precision_policy()):
        network, images, _ = _build(genotype, config, "naswot", rng,
                                    record_patterns=True)
        relus = [m for m in network.modules() if isinstance(m, ReLU)]
        for relu in relus:
            relu.record_pattern = True
            relu.last_pattern = None
        network.train(True)
        with no_grad():
            network(Tensor(images))
    batch = images.shape[0]
    parts = [r.last_pattern.reshape(batch, -1) for r in relus
             if r.last_pattern is not None]
    if not parts:
        raise ProxyError("network has no ReLU units")
    patterns = np.concatenate(parts, axis=1).astype(np.float64)
    num_units = patterns.shape[1]
    agreement = patterns @ patterns.T + (1 - patterns) @ (1 - patterns).T
    sign, logdet = np.linalg.slogdet(agreement / num_units + 1e-6 * np.eye(batch))
    return float(logdet) if sign > 0 else -1e9


class ProxySpec(NamedTuple):
    """A registered proxy: callable + rank direction."""

    fn: Callable[..., float]
    higher_is_better: bool


#: Registry of every zero-cost proxy, including the paper's two.
PROXY_REGISTRY: Dict[str, ProxySpec] = {
    "ntk": ProxySpec(ntk_condition_number, higher_is_better=False),
    "linear_regions": ProxySpec(count_line_regions, higher_is_better=True),
    "grad_norm": ProxySpec(grad_norm_score, higher_is_better=True),
    "snip": ProxySpec(snip_score, higher_is_better=True),
    "fisher": ProxySpec(fisher_score, higher_is_better=True),
    "synflow": ProxySpec(synflow_score, higher_is_better=True),
    "jacob_cov": ProxySpec(jacob_cov_score, higher_is_better=True),
    "naswot": ProxySpec(naswot_score, higher_is_better=True),
}


def evaluate_proxy(name: str, genotype: Genotype,
                   config: Optional[ProxyConfig] = None,
                   rng: SeedLike = None) -> float:
    """Evaluate a registered proxy by name."""
    if name not in PROXY_REGISTRY:
        raise ProxyError(
            f"unknown proxy {name!r}; registered: {sorted(PROXY_REGISTRY)}"
        )
    return PROXY_REGISTRY[name].fn(genotype, config, rng=rng)
