"""Linear-region count proxy (Section II-A-2).

The paper assesses expressivity on "a simple CNN with each layer containing
a single convolutional operator followed by the ReLU activation function":
the cell DAG is re-materialised with BN-free conv+ReLU edges (skip and pool
unchanged), so the network is exactly piecewise linear.

Two estimators are provided:

* :func:`count_line_regions` (default) — the number of distinct activation
  patterns crossed while walking straight line segments through input
  space.  Each ReLU unit whose decision boundary intersects the segment
  splits it; expressive cells cut the segment into many pieces.  This is
  the 1-D restriction studied by Xiong et al. (2020) and it does not
  saturate with sample count.
* :func:`count_sample_regions` — distinct patterns over i.i.d. random
  inputs (the TE-NAS estimator); kept for comparison and ablations.

Higher is better.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd.precision import precision
from repro.errors import ProxyError
from repro.nn import AvgPool2d, Conv2d, Module, ModuleList, ReLU, Sequential
from repro.nn.layers.activation import ReLU as ReLULayer
from repro.proxies.base import ProxyConfig
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CONV_KERNEL, EDGES, NUM_NODES
from repro.utils.rng import SeedLike, new_rng, stable_seed


def _build_lr_op(op_name: str, channels: int, rng) -> Module:
    """Edge operator of the piecewise-linear expressivity network."""
    if op_name == "none":
        return _Zero()
    if op_name == "skip_connect":
        return _Identity()
    if op_name == "avg_pool_3x3":
        return AvgPool2d(3, stride=1, padding=1)
    if op_name in CONV_KERNEL:
        kernel = CONV_KERNEL[op_name]
        return Sequential(
            Conv2d(channels, channels, kernel, stride=1, padding=kernel // 2,
                   bias=True, rng=rng),
            ReLU(record_pattern=True),
        )
    raise ProxyError(f"unknown operation {op_name!r}")


class _Zero(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x * 0.0


class _Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class LinearRegionNetwork(Module):
    """BN-free conv+ReLU realisation of a cell for region counting.

    ``edge_op_sets`` holds one tuple of alive operation names per edge: a
    concrete genotype has singleton tuples, the pruning supernet may have
    several alive ops per edge (their outputs are averaged, matching
    :class:`~repro.searchspace.cell.SuperCell` semantics).
    """

    def __init__(self, edge_op_sets, channels: int, num_cells: int,
                 rng: SeedLike = None) -> None:
        super().__init__()
        generator = new_rng(rng)
        self.edge_op_sets = [tuple(ops) for ops in edge_op_sets]
        if len(self.edge_op_sets) != len(EDGES):
            raise ProxyError(
                f"need {len(EDGES)} edge op sets, got {len(self.edge_op_sets)}"
            )
        self.stem = Sequential(
            Conv2d(3, channels, 3, stride=1, padding=1, bias=True, rng=generator),
            ReLU(record_pattern=True),
        )
        # Weight sharing across prunings: seed each (cell, edge, op) module
        # independently of the other alive ops (see SuperCell).
        base = int(generator.integers(2**31))
        cells = []
        for cell_idx in range(num_cells):
            edge_modules = ModuleList()
            for edge_idx, ops in enumerate(self.edge_op_sets):
                edge_modules.append(ModuleList(
                    _build_lr_op(
                        op, channels,
                        new_rng(stable_seed("lr-op", base, cell_idx, edge_idx, op)),
                    )
                    for op in ops
                ))
            cells.append(edge_modules)
        self.cells = ModuleList(cells)

    @classmethod
    def from_genotype(cls, genotype: Genotype, channels: int, num_cells: int,
                      rng: SeedLike = None) -> "LinearRegionNetwork":
        return cls([(op,) for op in genotype.ops], channels, num_cells, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for cell in self.cells:
            nodes: List[Tensor] = [out]
            for dst in range(1, NUM_NODES):
                total = None
                for edge_idx, (src, edge_dst) in enumerate(EDGES):
                    if edge_dst != dst:
                        continue
                    ops = cell[edge_idx]
                    if len(ops) == 0:
                        continue
                    edge_out = None
                    for op in ops:
                        contribution = op(nodes[src])
                        edge_out = (contribution if edge_out is None
                                    else edge_out + contribution)
                    edge_out = edge_out * (1.0 / len(ops))
                    total = edge_out if total is None else total + edge_out
                nodes.append(total if total is not None else nodes[0] * 0.0)
            out = nodes[-1]
        return out


def _forward_patterns(network: Module, images: np.ndarray) -> np.ndarray:
    """Concatenated binary ReLU patterns, one row per input."""
    relus = [m for m in network.modules() if isinstance(m, ReLULayer)]
    if not relus:
        raise ProxyError("network has no ReLU units; linear regions undefined")
    for relu in relus:
        relu.record_pattern = True
        relu.last_pattern = None
    network.train(True)
    with no_grad():
        network(Tensor(images))
    batch = images.shape[0]
    parts = [
        relu.last_pattern.reshape(batch, -1)
        for relu in relus
        if relu.last_pattern is not None
    ]
    return np.concatenate(parts, axis=1)


def count_distinct_patterns(patterns: np.ndarray) -> int:
    """Number of unique rows in a binary pattern matrix."""
    packed = np.packbits(patterns.astype(np.uint8), axis=1)
    return int(np.unique(packed, axis=0).shape[0])


def _regions_along_line(network: Module, start: np.ndarray, stop: np.ndarray,
                        num_points: int) -> int:
    """Distinct activation patterns along the segment start→stop."""
    ts = np.linspace(0.0, 1.0, num_points).reshape(-1, 1, 1, 1)
    line = start[None] * (1.0 - ts) + stop[None] * ts
    patterns = _forward_patterns(network, line)
    # Count boundary crossings: consecutive points with different patterns.
    changed = (patterns[1:] != patterns[:-1]).any(axis=1)
    return int(changed.sum()) + 1


def _draw_lines(generator, shape, num_lines: int):
    """Random segment endpoints, drawn in the per-line reference order."""
    starts = np.empty((num_lines, *shape))
    stops = np.empty((num_lines, *shape))
    for line in range(num_lines):
        starts[line] = generator.normal(size=shape) * 2.0
        stops[line] = generator.normal(size=shape) * 2.0
    return starts, stops


def _count_lines(network: Module, generator, shape, num_lines: int,
                 num_points: int, mode: str) -> List[int]:
    """Region counts for ``num_lines`` random segments in the given mode.

    ``"batched"`` stacks every line's sample points into one forward pass
    (bit-identical per-sample arithmetic, ~1/L the Python overhead);
    ``"reference"`` runs the original one-forward-per-line loop.
    """
    if mode == "batched":
        # Deferred import: the engine package imports this module.
        from repro.engine.kernels import batched_count_line_regions

        starts, stops = _draw_lines(generator, shape, num_lines)
        return [int(c) for c in
                batched_count_line_regions(network, starts, stops, num_points)]
    if mode != "reference":
        raise ProxyError(f"unknown linear-region mode {mode!r}")
    counts = []
    for _ in range(num_lines):
        start = generator.normal(size=shape) * 2.0
        stop = generator.normal(size=shape) * 2.0
        counts.append(_regions_along_line(network, start, stop, num_points))
    return counts


def count_line_regions(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    rng: SeedLike = None,
    num_lines: int = 4,
    mode: Optional[str] = None,
) -> float:
    """Mean number of linear regions crossed by random input segments."""
    config = config or ProxyConfig()
    mode = mode or config.lr_mode
    counts = []
    with precision(config.precision_policy()):
        for repeat in range(config.repeats):
            generator = new_rng(
                stable_seed("lr", config.seed, repeat, genotype.to_index())
                if rng is None
                else rng
            )
            network = LinearRegionNetwork.from_genotype(
                genotype,
                channels=config.lr_channels,
                num_cells=config.lr_num_cells,
                rng=generator,
            )
            shape = (3, config.lr_input_size, config.lr_input_size)
            counts.extend(_count_lines(network, generator, shape, num_lines,
                                       config.lr_num_samples, mode))
    return float(np.mean(counts))


def count_sample_regions(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    rng: SeedLike = None,
) -> float:
    """Distinct patterns over i.i.d. inputs (TE-NAS estimator; saturates)."""
    config = config or ProxyConfig()
    counts = []
    with precision(config.precision_policy()):
        for repeat in range(config.repeats):
            generator = new_rng(
                stable_seed("lr-sample", config.seed, repeat, genotype.to_index())
                if rng is None
                else rng
            )
            network = LinearRegionNetwork.from_genotype(
                genotype,
                channels=config.lr_channels,
                num_cells=config.lr_num_cells,
                rng=generator,
            )
            images = generator.uniform(
                -1.0, 1.0,
                size=(config.lr_num_samples, 3,
                      config.lr_input_size, config.lr_input_size),
            )
            counts.append(
                count_distinct_patterns(_forward_patterns(network, images))
            )
    return float(np.mean(counts))


def count_linear_regions(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    rng: SeedLike = None,
) -> float:
    """The paper's expressivity indicator (line-restriction estimator)."""
    return count_line_regions(genotype, config, rng=rng)


def supernet_line_regions(
    edge_op_sets,
    config: Optional[ProxyConfig] = None,
    rng: SeedLike = None,
    num_lines: int = 4,
    mode: Optional[str] = None,
) -> float:
    """Line-region count of a pruning-supernet state (alive-op sets)."""
    config = config or ProxyConfig()
    mode = mode or config.lr_mode
    counts = []
    with precision(config.precision_policy()):
        for repeat in range(config.repeats):
            # Config-only seed: candidate prunings share weights and test
            # lines (see supernet_ntk_condition_number).
            generator = new_rng(
                stable_seed("lr-super", config.seed, repeat)
                if rng is None
                else rng
            )
            network = LinearRegionNetwork(
                edge_op_sets,
                channels=config.lr_channels,
                num_cells=config.lr_num_cells,
                rng=generator,
            )
            shape = (3, config.lr_input_size, config.lr_input_size)
            counts.extend(_count_lines(network, generator, shape, num_lines,
                                       config.lr_num_samples, mode))
    return float(np.mean(counts))
