"""The paper's Fig. 2 analyses as a reusable library API.

Figure 2 of the paper justifies two design choices empirically:

* **Fig. 2a** — which NTK condition-number definition ``K_i = λ_1/λ_i``
  correlates best with accuracy (per dataset),
* **Fig. 2b** — which NTK batch size to pay for (Kendall-τ rises to a
  knee at 16–32, then flattens while cost keeps growing).

The benchmarks regenerate the figures; this module exposes the same
sweeps programmatically so downstream users can re-run them on their own
architecture samples, datasets or proxy scales, and query the
recommendations (best eigen-index, smallest near-optimal batch size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.benchdata.surrogate import SurrogateModel
from repro.errors import ProxyError
from repro.eval.correlation import kendall_tau
from repro.proxies.base import ProxyConfig
from repro.proxies.ntk import ntk_spectrum
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space


def _sample_spectra(
    genotypes: Sequence[Genotype],
    config: ProxyConfig,
) -> np.ndarray:
    """NTK eigenvalue matrix: one descending spectrum row per genotype."""
    spectra = []
    for genotype in genotypes:
        result = ntk_spectrum(genotype, config)
        spectra.append(result.eigenvalues)
    return np.array(spectra)


@dataclass(frozen=True)
class ConditionNumberSweep:
    """Fig. 2a data: Kendall-τ of ``K_i`` vs accuracy, per dataset."""

    indices: Tuple[int, ...]
    taus: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def best_index(self, dataset: str) -> int:
        """The eigen-index whose condition number ranks accuracy best."""
        values = self.taus[dataset]
        return self.indices[int(np.argmax(values))]

    def tau(self, dataset: str, index: int) -> float:
        return self.taus[dataset][self.indices.index(index)]


def condition_number_sweep(
    config: ProxyConfig,
    num_archs: int = 24,
    datasets: Sequence[str] = ("cifar10", "cifar100", "imagenet16-120"),
    max_index: Optional[int] = None,
    seed: int = 0,
    space: Optional[NasBench201Space] = None,
) -> ConditionNumberSweep:
    """Regenerate Fig. 2a on a fresh architecture sample.

    ``K_i = λ_1 / λ_i`` is computed from each architecture's NTK spectrum
    (one spectrum per arch, shared across datasets — the NTK input batch
    is label-free); accuracy comes from the surrogate benchmark per
    dataset.  Lower κ means more trainable, so τ is computed against
    ``-K_i``.
    """
    if num_archs < 3:
        raise ProxyError("need at least three architectures for a sweep")
    surrogate = SurrogateModel()
    genotypes = (space or NasBench201Space()).sample(num_archs, rng=seed)
    spectra = _sample_spectra(genotypes, config)
    limit = max_index or spectra.shape[1]
    limit = min(limit, spectra.shape[1])
    indices = tuple(range(1, limit + 1))
    taus: Dict[str, Tuple[float, ...]] = {}
    for dataset in datasets:
        accuracies = np.array(
            [surrogate.mean_accuracy(g, dataset) for g in genotypes]
        )
        row = []
        for i in indices:
            with np.errstate(divide="ignore", invalid="ignore"):
                k_i = spectra[:, 0] / spectra[:, i - 1]
            k_i[~np.isfinite(k_i)] = 1e30
            row.append(kendall_tau(-k_i, accuracies))
        taus[dataset] = tuple(row)
    return ConditionNumberSweep(indices=indices, taus=taus)


@dataclass(frozen=True)
class BatchSizeSweep:
    """Fig. 2b data: Kendall-τ of κ vs accuracy per NTK batch size."""

    batch_sizes: Tuple[int, ...]
    taus_per_trial: Tuple[Tuple[float, ...], ...]  # [trial][batch index]

    @property
    def average(self) -> Tuple[float, ...]:
        return tuple(np.mean(self.taus_per_trial, axis=0))

    def recommended_batch_size(self, tolerance: float = 0.05) -> int:
        """Smallest batch whose average τ is within ``tolerance`` of the best.

        This is the paper's cost argument: beyond the knee, bigger batches
        "significantly escalate search costs" without buying correlation.
        """
        avg = np.array(self.average)
        best = avg.max()
        for batch, tau in zip(self.batch_sizes, avg):
            if tau >= best - tolerance:
                return batch
        return self.batch_sizes[-1]


def batch_size_sweep(
    config: ProxyConfig,
    batch_sizes: Sequence[int] = (4, 8, 16, 32, 64),
    num_archs: int = 24,
    num_trials: int = 3,
    dataset: str = "cifar10",
    seed: int = 0,
    space: Optional[NasBench201Space] = None,
) -> BatchSizeSweep:
    """Regenerate Fig. 2b: τ vs batch size over ``num_trials`` seeds."""
    if not batch_sizes:
        raise ProxyError("need at least one batch size")
    if num_trials < 1:
        raise ProxyError("need at least one trial")
    surrogate = SurrogateModel()
    genotypes = (space or NasBench201Space()).sample(num_archs, rng=seed)
    accuracies = np.array(
        [surrogate.mean_accuracy(g, dataset) for g in genotypes]
    )
    trials: List[Tuple[float, ...]] = []
    for trial in range(num_trials):
        row = []
        for batch in batch_sizes:
            trial_config = config.with_batch_size(batch).with_seed(
                config.seed + 1000 * trial)
            kappas = []
            for genotype in genotypes:
                spectrum = ntk_spectrum(genotype, trial_config).eigenvalues
                with np.errstate(divide="ignore", invalid="ignore"):
                    kappa = spectrum[0] / spectrum[-1]
                kappas.append(kappa if np.isfinite(kappa) else 1e30)
            row.append(kendall_tau(-np.array(kappas), accuracies))
        trials.append(tuple(row))
    return BatchSizeSweep(batch_sizes=tuple(batch_sizes),
                          taus_per_trial=tuple(trials))
