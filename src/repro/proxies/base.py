"""Shared configuration for proxy evaluation."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.autograd.precision import PrecisionPolicy, resolve_policy
from repro.searchspace.network import MacroConfig


@dataclass(frozen=True)
class ProxyConfig:
    """How zero-cost indicators are measured.

    The paper (following TE-NAS) evaluates indicators on a *reduced* network:
    fewer cells per stage and narrower channels than the deployment network,
    with a small input resolution.  ``ntk_batch_size=32`` is the paper's
    recommended operating point (Fig. 2b).

    ``ntk_mode``/``lr_mode`` select the proxy kernels: ``"batched"`` (the
    vectorized single-pass kernels in :mod:`repro.engine.kernels`) or
    ``"reference"`` (the original per-sample / per-line loops, kept for
    validating the batched paths).  Both fields are part of the engine's
    cache key, so switching modes never aliases cached values.

    ``precision`` names the :class:`~repro.autograd.precision.\
    PrecisionPolicy` every proxy evaluation under this config runs in
    (``"float64"``, the bit-identical historical default, or
    ``"float32"`` for ~2× kernel throughput at rank-preserving accuracy —
    see ``BENCH_precision.json``).  Like the mode fields it travels in
    ``astuple(config)``, so it is part of every cache key and store
    fingerprint: float32 and float64 rows coexist without aliasing.
    """

    init_channels: int = 8
    cells_per_stage: int = 1
    input_size: int = 16
    num_classes: int = 10
    ntk_batch_size: int = 32
    lr_num_samples: int = 96
    lr_input_size: int = 6
    lr_channels: int = 4
    lr_num_cells: int = 1
    repeats: int = 1
    seed: int = 0
    ntk_mode: str = "batched"
    lr_mode: str = "batched"
    precision: str = "float64"

    def precision_policy(self) -> PrecisionPolicy:
        """The resolved policy proxy evaluations scope themselves under."""
        return resolve_policy(self.precision)

    def with_precision(self, precision: str) -> "ProxyConfig":
        """Copy running under a different precision policy."""
        return replace(self, precision=precision)

    def macro_config(self, num_classes: int = None) -> MacroConfig:
        """The reduced macro skeleton proxies are measured on."""
        return MacroConfig(
            init_channels=self.init_channels,
            cells_per_stage=self.cells_per_stage,
            num_classes=num_classes if num_classes is not None else self.num_classes,
            input_channels=3,
            image_size=self.input_size,
        )

    def with_batch_size(self, batch_size: int) -> "ProxyConfig":
        return replace(self, ntk_batch_size=batch_size)

    def with_seed(self, seed: int) -> "ProxyConfig":
        return replace(self, seed=seed)

    def with_modes(self, ntk_mode: str = None, lr_mode: str = None) -> "ProxyConfig":
        """Copy with different proxy kernel modes (None keeps the current)."""
        return replace(
            self,
            ntk_mode=ntk_mode if ntk_mode is not None else self.ntk_mode,
            lr_mode=lr_mode if lr_mode is not None else self.lr_mode,
        )

    def reference(self) -> "ProxyConfig":
        """Copy running both proxies on the pre-vectorization paths."""
        return self.with_modes(ntk_mode="reference", lr_mode="reference")


def resize_batch(images: np.ndarray, target_size: int) -> np.ndarray:
    """Nearest-neighbour resize of an NCHW batch to ``target_size``.

    Proxy networks use small inputs; dataset batches may come at the native
    resolution (e.g. 32×32 CIFAR), so we subsample/replicate as needed.
    """
    size = images.shape[-1]
    if size == target_size:
        return images
    idx = (np.arange(target_size) * size) // target_size
    return images[:, :, idx][:, :, :, idx]
