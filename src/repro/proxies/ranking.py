"""Rank aggregation for combining heterogeneous indicators.

The hybrid objective compares candidates by *relative rank* per indicator
(as in TE-NAS), which sidesteps scale differences between condition
numbers, region counts, FLOPs and milliseconds.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ProxyError


def rank_array(values: Sequence[float], higher_is_better: bool) -> np.ndarray:
    """Dense competition ranks (0 = best).

    Infinities are legal and rank worst/best as appropriate; NaNs are
    rejected.  Ties share a rank (mean rank of the tied block).
    """
    arr = np.asarray(values, dtype=float)
    if np.isnan(arr).any():
        raise ProxyError("cannot rank NaN values")
    signed = -arr if higher_is_better else arr
    order = np.argsort(signed, kind="stable")
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = np.arange(arr.size, dtype=float)
    # Average ranks within tied groups for stability.
    sorted_vals = signed[order]
    start = 0
    for end in range(1, arr.size + 1):
        if end == arr.size or sorted_vals[end] != sorted_vals[start]:
            mean_rank = (start + end - 1) / 2.0
            ranks[order[start:end]] = mean_rank
            start = end
    return ranks


def combine_ranks(
    indicator_values: Dict[str, Sequence[float]],
    directions: Dict[str, bool],
    weights: Dict[str, float] = None,
) -> np.ndarray:
    """Weighted sum of per-indicator ranks (lower combined rank = better).

    ``directions[name]`` is True when larger raw values are better.
    Missing weights default to 1.0.
    """
    if not indicator_values:
        raise ProxyError("no indicators to combine")
    weights = weights or {}
    lengths = {len(v) for v in indicator_values.values()}
    if len(lengths) != 1:
        raise ProxyError(f"indicator lengths differ: {lengths}")
    combined = np.zeros(lengths.pop(), dtype=float)
    for name, values in indicator_values.items():
        if name not in directions:
            raise ProxyError(f"missing direction for indicator {name!r}")
        weight = float(weights.get(name, 1.0))
        if weight == 0.0:
            continue
        combined += weight * rank_array(values, higher_is_better=directions[name])
    return combined
