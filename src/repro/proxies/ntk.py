"""Neural tangent kernel spectrum proxy (Section II-A-1).

The empirical NTK of a network ``f`` with parameters ``θ`` over a batch
``x_1..x_B`` is the Gram matrix::

    Θ[i, j] = < ∂ f(x_i)/∂θ , ∂ f(x_j)/∂θ >

where ``f(x_i)`` is the summed logit of sample ``i`` (TE-NAS convention).
The paper's trainability indicator is the condition number of Θ, and
Fig. 2a studies the family ``K_i = λ_max / λ_(i-th smallest)``; ``K_1`` is
the classic condition number.  Lower is better (more trainable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd.precision import get_precision, precision
from repro.errors import ProxyError
from repro.nn.module import Module
from repro.proxies.base import ProxyConfig, resize_batch
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import build_network
from repro.utils.rng import SeedLike, new_rng, stable_seed

#: Eigenvalues below this threshold are treated as numerically zero.
_EIG_EPS = 1e-9


def _eigvalsh_desc(gram: np.ndarray) -> np.ndarray:
    """Descending eigenvalues, accumulated in the policy's safe dtype.

    Gram construction runs in the compute dtype, but the eigensolve is
    promoted to ``accumulate_dtype`` (float64 under both built-in
    policies): condition numbers magnify spectral rounding error, and the
    B×B solve costs nothing next to the Jacobian.  A float64 Gram passes
    through untouched (``astype`` with a matching dtype is a no-op view),
    keeping the default path bit-identical.
    """
    promoted = gram.astype(get_precision().accumulate_dtype, copy=False)
    return np.linalg.eigvalsh(promoted)[::-1].copy()


@dataclass(frozen=True)
class NtkResult:
    """Spectrum of one empirical NTK evaluation."""

    eigenvalues: np.ndarray  # descending order
    batch_size: int

    @property
    def condition_number(self) -> float:
        """Classic κ = λ_max / λ_min (``K_1``); ∞ for singular kernels."""
        return self.k(1)

    def k(self, index: int) -> float:
        """``K_i = λ_max / λ_(i-th smallest)`` for ``index`` in 1..B."""
        if not 1 <= index <= self.eigenvalues.size:
            raise ProxyError(
                f"K index {index} outside [1, {self.eigenvalues.size}]"
            )
        lam_max = float(self.eigenvalues[0])
        lam_i = float(self.eigenvalues[-index])
        if lam_max <= _EIG_EPS:
            return float("inf")
        if lam_i <= _EIG_EPS:
            return float("inf")
        return lam_max / lam_i


def _freeze_batch_stats(network: Module, images: np.ndarray) -> None:
    """Set every BatchNorm's running statistics to this batch's statistics.

    One forward pass with momentum temporarily forced to 1.0 makes the
    running estimates equal the batch estimates; the network is then put in
    eval mode so subsequent per-sample passes normalise consistently.
    """
    from repro.autograd import no_grad
    from repro.nn.layers.norm import BatchNorm2d

    bns = [m for m in network.modules() if isinstance(m, BatchNorm2d)]
    saved = [bn.momentum for bn in bns]
    for bn in bns:
        bn.momentum = 1.0
    network.train(True)
    with no_grad():
        network(Tensor(images))
    for bn, momentum in zip(bns, saved):
        bn.momentum = momentum
    network.train(False)


def _collect_param_grads(params) -> np.ndarray:
    return np.concatenate(
        [
            (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
            for p in params
        ]
    )


def compute_ntk_gram(
    network: Module,
    images: np.ndarray,
    coupled: bool = False,
    mode: Optional[str] = None,
) -> np.ndarray:
    """Compute the empirical NTK Gram matrix over an NCHW batch.

    Three modes (``coupled=True`` forces ``"coupled"`` for backward
    compatibility; otherwise ``mode`` defaults to ``"batched"``):

    * ``"batched"`` (default, fastest): BatchNorm statistics are frozen to
      this batch's statistics, then ONE batched forward + ONE backward
      reconstructs the full per-sample Jacobian layer-locally (see
      :func:`repro.engine.kernels.batched_ntk_jacobian`).  Exact frozen-BN
      NTK, identical to ``"reference"`` up to float summation order.
    * ``"reference"``: frozen BatchNorm statistics, one batch-size-1
      forward/backward per sample.  The pre-vectorization path, kept for
      validating the batched kernel.
    * ``"coupled"`` (exact TE-NAS semantics): one batched forward in
      training mode, then one backward per sample with a one-hot output
      seed, so gradients include the cross-sample BatchNorm coupling.
      ~B× slower; kept for validation.

    All modes return the (B, B) Gram of per-sample summed-logit gradients.
    """
    if coupled:
        mode = "coupled"
    elif mode is None:
        mode = "batched"
    if mode not in ("batched", "reference", "coupled"):
        raise ProxyError(f"unknown NTK mode {mode!r}")
    batch_size = images.shape[0]
    params = network.parameters()
    if not params:
        raise ProxyError("network has no parameters; NTK undefined")

    # Per-sample Jacobians inherit the network's compute dtype, so the
    # Gram matmul below runs at the policy precision in every mode.
    jac_dtype = params[0].data.dtype

    if mode == "coupled":
        network.train(True)
        output = network(Tensor(images))
        if output.ndim != 2:
            raise ProxyError(f"expected (batch, classes) logits, got {output.shape}")
        jacobian = np.empty((batch_size, sum(p.size for p in params)),
                            dtype=jac_dtype)
        seed = np.zeros_like(output.data)
        for i in range(batch_size):
            output.clear_tape_grads()
            seed[...] = 0.0
            seed[i, :] = 1.0
            output.backward(seed)
            jacobian[i] = _collect_param_grads(params)
        output.clear_tape_grads()
        return jacobian @ jacobian.T

    if mode == "batched":
        # Deferred import: the engine package imports this module at load
        # time, so the kernel layer is resolved lazily at first use.  The
        # kernel freezes BatchNorm statistics inside its single forward,
        # so the separate freeze pass is skipped entirely.
        from repro.engine.kernels import batched_ntk_jacobian

        network.train(False)
        jacobian = batched_ntk_jacobian(network, images, freeze_stats=True)
        return jacobian @ jacobian.T
    _freeze_batch_stats(network, images)
    jacobian = np.empty((batch_size, sum(p.size for p in params)),
                        dtype=jac_dtype)
    for i in range(batch_size):
        for p in params:
            p.zero_grad()
        output = network(Tensor(images[i : i + 1]))
        if output.ndim != 2:
            raise ProxyError(f"expected (batch, classes) logits, got {output.shape}")
        output.backward(np.ones_like(output.data))
        jacobian[i] = _collect_param_grads(params)
        output.clear_tape_grads()
    return jacobian @ jacobian.T


def ntk_spectrum(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    images: Optional[np.ndarray] = None,
    rng: SeedLike = None,
    network: Optional[Module] = None,
) -> NtkResult:
    """Build the reduced proxy network for ``genotype`` and measure its NTK.

    ``images`` may be supplied (e.g. from a dataset); otherwise a standard
    normal batch is drawn.  Network initialisation is seeded from the
    config seed and the genotype so results are deterministic.  A pre-built
    ``network`` may be passed to skip construction (its BatchNorm running
    statistics are re-frozen to the new batch inside the Gram computation).
    """
    config = config or ProxyConfig()
    generator = new_rng(
        rng if rng is not None else stable_seed("ntk", config.seed, genotype.to_index())
    )
    with precision(config.precision_policy()):
        if images is None:
            images = generator.normal(
                size=(config.ntk_batch_size, 3, config.input_size, config.input_size)
            )
        else:
            images = resize_batch(images, config.input_size)
        if network is None:
            network = build_network(genotype, config.macro_config(), rng=generator)
        gram = compute_ntk_gram(network, images, mode=config.ntk_mode)
        eigenvalues = _eigvalsh_desc(gram)
    return NtkResult(eigenvalues=eigenvalues, batch_size=images.shape[0])


def ntk_grams(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    images: Optional[np.ndarray] = None,
    rng: SeedLike = None,
) -> List[np.ndarray]:
    """One ``(B, B)`` NTK Gram matrix per configured repeat.

    Reproduces :func:`ntk_condition_number`'s seed stream exactly: when
    batches are drawn internally the proxy network is built once and shared
    across repeats — each repeat draws a fresh input batch and re-freezes
    the BatchNorm statistics to it, rather than paying a full rebuild.
    With user-supplied ``images`` the batch is fixed, so each repeat keeps
    its own independently seeded network (otherwise repeats would average
    identical evaluations).

    Returning the Grams *before* eigendecomposition lets population-level
    callers stack them and run one batched ``eigvalsh`` over the whole
    population (see :func:`repro.engine.kernels.batched_condition_numbers`).
    """
    config = config or ProxyConfig()
    grams: List[np.ndarray] = []
    network: Optional[Module] = None
    with precision(config.precision_policy()):
        for repeat in range(config.repeats):
            rep_rng = new_rng(
                stable_seed("ntk", config.seed, repeat, genotype.to_index())
                if rng is None
                else rng
            )
            if images is not None:
                batch = resize_batch(images, config.input_size)
                network = build_network(genotype, config.macro_config(),
                                        rng=rep_rng)
            elif network is None:
                # First repeat also builds the shared network (drawing images
                # first matches the historical seed stream exactly).
                batch = rep_rng.normal(
                    size=(config.ntk_batch_size, 3,
                          config.input_size, config.input_size)
                )
                network = build_network(genotype, config.macro_config(),
                                        rng=rep_rng)
            else:
                batch = rep_rng.normal(
                    size=(config.ntk_batch_size, 3,
                          config.input_size, config.input_size)
                )
            grams.append(compute_ntk_gram(network, batch, mode=config.ntk_mode))
    return grams


def ntk_condition_number(
    genotype: Genotype,
    config: Optional[ProxyConfig] = None,
    images: Optional[np.ndarray] = None,
    rng: SeedLike = None,
    k_index: int = 1,
) -> float:
    """Condition number ``K_{k_index}`` of the genotype's proxy NTK.

    Averages over ``config.repeats`` evaluations when ``repeats > 1``
    (infinite values propagate: an untrainable repeat marks the
    architecture untrainable).  Gram construction is shared with
    :func:`ntk_grams`; this per-candidate path eigendecomposes each Gram
    individually.
    """
    config = config or ProxyConfig()
    values = []
    with precision(config.precision_policy()):
        for gram in ntk_grams(genotype, config, images=images, rng=rng):
            eigenvalues = _eigvalsh_desc(gram)
            values.append(NtkResult(eigenvalues, gram.shape[0]).k(k_index))
    return float(np.mean(values))


def condition_numbers(gram: np.ndarray, max_index: int) -> np.ndarray:
    """``K_1..K_max_index`` from a Gram matrix (see :meth:`NtkResult.k`)."""
    eigenvalues = np.linalg.eigvalsh(gram)[::-1]
    result = NtkResult(eigenvalues=eigenvalues, batch_size=gram.shape[0])
    return np.array([result.k(i) for i in range(1, max_index + 1)])


def supernet_ntk_condition_number(
    edge_specs,
    config: Optional[ProxyConfig] = None,
    rng: SeedLike = None,
    k_index: int = 1,
) -> float:
    """NTK condition number of a pruning-supernet state.

    Builds the reduced supernet for the given alive-op sets and measures
    ``K_{k_index}`` exactly as for concrete genotypes.
    """
    from repro.searchspace.network import build_supernet

    config = config or ProxyConfig()
    values = []
    with precision(config.precision_policy()):
        for repeat in range(config.repeats):
            # Seed from the config only (NOT the alive-op sets): every
            # candidate pruning evaluated under one seed shares supernet
            # weights and the input batch, so score differences isolate the
            # removed op.
            generator = new_rng(
                stable_seed("ntk-super", config.seed, repeat)
                if rng is None
                else rng
            )
            images = generator.normal(
                size=(config.ntk_batch_size, 3,
                      config.input_size, config.input_size)
            )
            network = build_supernet(edge_specs, config.macro_config(),
                                     rng=generator)
            gram = compute_ntk_gram(network, images, mode=config.ntk_mode)
            eigenvalues = _eigvalsh_desc(gram)
            values.append(NtkResult(eigenvalues, images.shape[0]).k(k_index))
    return float(np.mean(values))
