"""Zero-cost performance indicators (Section II of the paper).

* :mod:`repro.proxies.ntk` — neural tangent kernel spectrum / condition
  numbers ``K_i`` (trainability),
* :mod:`repro.proxies.linear_regions` — ReLU linear-region count
  (expressivity),
* :mod:`repro.proxies.flops` — analytic FLOPs and parameter counts
  (hardware indicator ``F``),
* :mod:`repro.proxies.ranking` — rank aggregation used to combine
  indicators into the hybrid objective.
"""

from repro.proxies.base import ProxyConfig
from repro.proxies.ntk import NtkResult, compute_ntk_gram, condition_numbers, ntk_condition_number
from repro.proxies.linear_regions import count_linear_regions
from repro.proxies.flops import count_flops, count_params
from repro.proxies.ranking import rank_array, combine_ranks
from repro.proxies.analysis import (
    BatchSizeSweep,
    ConditionNumberSweep,
    batch_size_sweep,
    condition_number_sweep,
)

__all__ = [
    "ProxyConfig",
    "BatchSizeSweep",
    "ConditionNumberSweep",
    "batch_size_sweep",
    "condition_number_sweep",
    "NtkResult",
    "compute_ntk_gram",
    "condition_numbers",
    "ntk_condition_number",
    "count_linear_regions",
    "count_flops",
    "count_params",
    "rank_array",
    "combine_ranks",
]
