"""Analytic FLOPs and parameter counting (hardware indicator ``F``).

Counts follow the NAS-Bench-201 convention (1 multiply-add = 1 FLOP), so
values are comparable with the paper's Table I (e.g. the all-3×3 cell at
the full 16-channel / 5-cell configuration lands near 190 MFLOPs and
1.3 M parameters).
"""

from __future__ import annotations

from typing import Optional

from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import op_flops, op_params


def _reduction_flops(c_in: int, c_out: int, out_size: int) -> int:
    """FLOPs of the inter-stage residual block at its *output* resolution."""
    area = out_size * out_size
    conv1 = c_in * c_out * 9 * area
    conv2 = c_out * c_out * 9 * area
    shortcut_pool = 4 * c_in * area
    shortcut_conv = c_in * c_out * area
    return conv1 + conv2 + shortcut_pool + shortcut_conv


def _reduction_params(c_in: int, c_out: int) -> int:
    conv1 = c_in * c_out * 9 + 2 * c_out
    conv2 = c_out * c_out * 9 + 2 * c_out
    shortcut = c_in * c_out
    return conv1 + conv2 + shortcut


def count_flops(genotype: Genotype, config: Optional[MacroConfig] = None) -> int:
    """Total network FLOPs for a genotype at a macro configuration."""
    config = config or MacroConfig.full()
    channels = config.stage_channels
    sizes = config.stage_sizes
    total = 0
    # Stem: 3x3 conv input_channels -> C at full resolution.
    total += config.input_channels * channels[0] * 9 * config.image_size**2
    cell_flops_per_stage = []
    for c, s in zip(channels, sizes):
        per_cell = sum(op_flops(op, c, s, s) for op in genotype.ops)
        cell_flops_per_stage.append(per_cell)
        total += config.cells_per_stage * per_cell
    for stage in (1, 2):
        total += _reduction_flops(channels[stage - 1], channels[stage], sizes[stage])
    # Classifier (global pooling cost negligible; linear = C3 * classes MACs).
    total += channels[2] * config.num_classes
    return total


def count_params(genotype: Genotype, config: Optional[MacroConfig] = None) -> int:
    """Learnable parameter count for a genotype at a macro configuration.

    Matches ``build_network(...).num_parameters()`` exactly (validated by
    tests), so the analytic count can stand in for building the network.
    """
    config = config or MacroConfig.full()
    channels = config.stage_channels
    total = 0
    # Stem conv + BN.
    total += config.input_channels * channels[0] * 9 + 2 * channels[0]
    for c in channels:
        per_cell = sum(op_params(op, c) for op in genotype.ops)
        total += config.cells_per_stage * per_cell
    for stage in (1, 2):
        total += _reduction_params(channels[stage - 1], channels[stage])
    # Final BN + classifier (weights + bias).
    total += 2 * channels[2]
    total += channels[2] * config.num_classes + config.num_classes
    return total
