"""Differentiable operations on :class:`~repro.autograd.tensor.Tensor`.

Each function computes the forward result eagerly with NumPy and attaches a
backward closure to the output.  Convolution and pooling use im2col/col2im
so that the NTK proxy's many backward passes stay fast.

Every op is dtype-preserving: forwards compute with NumPy (which keeps the
operand dtype), outputs are wrapped by :class:`Tensor` (which allocates in
the active precision policy's compute dtype — a no-op when operands already
match it), and backward closures accumulate into each parent's own dtype.
Under ``precision("float32")`` the whole tape — im2col buffers, BLAS
matmuls, gradient accumulation — therefore runs in float32; the float64
default is bit-identical to the historical hard-coded behaviour.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, _as_tensor
from repro.errors import ShapeError

Axis = Union[None, int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data + b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad)
        if b.requires_grad:
            b._accumulate(grad)

    return out._attach((a, b), backward)


def neg(a: Tensor) -> Tensor:
    out = Tensor(-a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(-grad)

    return out._attach((a,), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data * b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * b.data)
        if b.requires_grad:
            b._accumulate(grad * a.data)

    return out._attach((a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data / b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / b.data)
        if b.requires_grad:
            b._accumulate(-grad * a.data / (b.data**2))

    return out._attach((a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out = Tensor(a.data**exponent)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * exponent * a.data ** (exponent - 1.0))

    return out._attach((a,), backward)


def exp(a: Tensor) -> Tensor:
    value = np.exp(a.data)
    out = Tensor(value)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * value)

    return out._attach((a,), backward)


def log(a: Tensor) -> Tensor:
    out = Tensor(np.log(a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / a.data)

    return out._attach((a,), backward)


def sqrt(a: Tensor) -> Tensor:
    return power(a, 0.5)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; ties send the full gradient to ``a``."""
    mask = a.data >= b.data
    out = Tensor(np.where(mask, a.data, b.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask)
        if b.requires_grad:
            b._accumulate(grad * ~mask)

    return out._attach((a, b), backward)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    mask = a.data > 0.0
    out = Tensor(a.data * mask)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * mask)

    return out._attach((a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-a.data))
    out = Tensor(value)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * value * (1.0 - value))

    return out._attach((a,), backward)


def tanh(a: Tensor) -> Tensor:
    value = np.tanh(a.data)
    out = Tensor(value)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - value**2))

    return out._attach((a,), backward)


# ----------------------------------------------------------------------
# Reductions and shape ops
# ----------------------------------------------------------------------
def sum(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out = Tensor(a.data.sum(axis=axis, keepdims=keepdims))

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            axes = tuple(ax % a.data.ndim for ax in axes)
            g = np.expand_dims(g, axis=tuple(sorted(axes)))
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return out._attach((a,), backward)


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    if axis is None:
        denom = a.data.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        denom = 1
        for ax in axes:
            denom *= a.data.shape[ax % a.data.ndim]
    return sum(a, axis=axis, keepdims=keepdims) * (1.0 / denom)


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    out = Tensor(a.data.reshape(shape))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(a.data.shape))

    return out._attach((a,), backward)


def transpose(a: Tensor, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    out = Tensor(a.data.transpose(axes))

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        if axes is None:
            a._accumulate(grad.transpose())
        else:
            inverse = np.argsort(axes)
            a._accumulate(grad.transpose(tuple(inverse)))

    return out._attach((a,), backward)


def getitem(a: Tensor, index) -> Tensor:
    out = Tensor(a.data[index])

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a._accumulate(full)

    return out._attach((a,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_as_tensor(t) for t in tensors]
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis))
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return out._attach(tuple(tensors), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data @ b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad @ np.swapaxes(b.data, -1, -2))
        if b.requires_grad:
            b._accumulate(np.swapaxes(a.data, -1, -2) @ grad)

    return out._attach((a, b), backward)


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    pad_spec = [(0, 0)] * (a.data.ndim - 2) + [(padding, padding)] * 2
    out = Tensor(np.pad(a.data, pad_spec))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            slicer = (
                (slice(None),) * (a.data.ndim - 2)
                + (slice(padding, -padding), slice(padding, -padding))
            )
            a._accumulate(grad[slicer])

    return out._attach((a,), backward)


# ----------------------------------------------------------------------
# im2col-based convolution and pooling
# ----------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NCHW ``x`` into columns of shape (N, C*K*K, OH*OW)."""
    n, c, h, w = x.shape
    oh = _conv_out_size(h, kernel, stride, padding)
    ow = _conv_out_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for ki in range(kernel):
        i_end = ki + stride * oh
        for kj in range(kernel):
            j_end = kj + stride * ow
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_end:stride, kj:j_end:stride]
    return cols.reshape(n, c * kernel * kernel, oh * ow), (oh, ow)


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back onto the (padded) input, summing overlaps."""
    n, c, h, w = x_shape
    oh = _conv_out_size(h, kernel, stride, padding)
    ow = _conv_out_size(w, kernel, stride, padding)
    cols = cols.reshape(n, c, kernel, kernel, oh, ow)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ki in range(kernel):
        i_end = ki + stride * oh
        for kj in range(kernel):
            j_end = kj + stride * ow
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols[:, :, ki, kj, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation of NCHW input with OIHW weights."""
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects OIHW weight, got shape {weight.shape}")
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if kh != kw:
        raise ShapeError("only square kernels are supported")
    if c_in != c_in_w:
        raise ShapeError(
            f"input has {c_in} channels but weight expects {c_in_w}"
        )
    kernel = kh
    cols, (oh, ow) = _im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(c_out, c_in * kernel * kernel)
    # Batched BLAS matmul ((o,k) broadcast against (n,k,p)) — measurably
    # faster than the equivalent einsum, which bypasses BLAS.
    out_data = np.matmul(w_mat, cols).reshape(n, c_out, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, oh * ow)
        if weight.requires_grad:
            grad_w = np.tensordot(grad_mat, cols, axes=([0, 2], [0, 2]))
            weight._accumulate(grad_w.reshape(weight.data.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.matmul(w_mat.T, grad_mat)
            x._accumulate(_col2im(grad_cols, x.data.shape, kernel, stride, padding))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return out._attach(parents, backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None, padding: int = 0) -> Tensor:
    """Average pooling over NCHW input (count includes padded zeros,
    matching the ``count_include_pad=True`` convention NAS-Bench-201 uses)."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    cols, (oh, ow) = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride, padding
    )
    out_data = cols.mean(axis=1).reshape(n, c, oh, ow)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.repeat(
            grad.reshape(n * c, 1, oh * ow) / (kernel * kernel),
            kernel * kernel,
            axis=1,
        )
        folded = _col2im(grad_cols, (n * c, 1, h, w), kernel, stride, padding)
        x._accumulate(folded.reshape(n, c, h, w))

    return out._attach((x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims of NCHW input, returning (N, C)."""
    return mean(x, axis=(2, 3))


def max_reduce(a: Tensor, axis: Optional[int] = None, keepdims: bool = False) -> Tensor:
    """Maximum along an axis; gradient flows to the (first) argmax entries."""
    data = a.data.max(axis=axis, keepdims=keepdims)
    out = Tensor(data)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        if axis is None:
            mask = a.data == a.data.max()
            # Split gradient across ties to keep the total derivative bounded.
            a._accumulate(grad * mask / mask.sum())
            return
        expanded = data if keepdims else np.expand_dims(data, axis=axis)
        g = grad if keepdims else np.expand_dims(grad, axis=axis)
        mask = a.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)
        a._accumulate(g * mask / counts)

    return out._attach((a,), backward)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_z
    out = Tensor(value)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            softmax = np.exp(value)
            a._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return out._attach((a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (via the stable log-softmax)."""
    return exp(log_softmax(a, axis=axis))


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of (N, C) logits against integer labels."""
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, C) logits, got {logits.shape}")
    labels = np.asarray(labels)
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=1)
    n = logits.shape[0]
    picked = getitem(log_probs, (np.arange(n), labels))
    return neg(mean(picked))
