"""The :class:`Tensor` type and the backward tape.

A ``Tensor`` wraps a ``numpy.ndarray`` together with:

* ``requires_grad`` — whether gradients should flow to this tensor,
* ``grad`` — the accumulated gradient (same shape as ``data``),
* a backward closure and parent links recorded by the op that produced it.

The implementation favours clarity over raw speed; the proxy networks in
this library are deliberately tiny (a few thousand parameters), so a pure
NumPy tape is fast enough for thousands of proxy evaluations.

Dtype semantics: every tensor — including each op's output — is
allocated in the **active precision policy's** compute dtype
(:mod:`repro.autograd.precision`; float64 by default, bit-identical to
the historical hard-coded behaviour), and gradients accumulate in each
tensor's own dtype.  Inside one ``precision(...)`` scope every tape node
therefore shares one dtype.  Build AND evaluate a network inside the
same scope: running a network outside the scope it was built under makes
each op's output wrap re-cast to the ambient dtype (a silent
copy-per-op upcast, or a precision-losing downcast) — which is why the
proxies re-enter their config's policy on every call.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.precision import default_dtype
from repro.errors import AutogradError, ShapeError

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

#: Tape-recording switch, *per thread*: the async runtime's thread
#: backend evaluates proxy chunks concurrently, and a process-global flag
#: would let one thread's ``no_grad()`` (e.g. line-region counting)
#: silently strip another thread's NTK tape mid-build.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the backward tape."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables tape recording (faster inference).

    Scoped to the current thread — parallel proxy evaluations never see
    each other's recording state.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient support."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        # The active policy's compute dtype (thread-local; float64 unless
        # a precision(...) scope says otherwise).  asarray is a no-op view
        # when the array already has the right dtype, so op outputs built
        # from same-dtype operands never copy.
        self.data = np.asarray(data, dtype=default_dtype())
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        if self.data.size != 1:
            raise ShapeError(f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    def _attach(
        self,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Record provenance on a freshly built output tensor."""
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            self.requires_grad = True
            self._parents = tuple(parents)
            self._backward = backward
        return self

    def _accumulate(self, grad: np.ndarray) -> None:
        # Gradients live in the tensor's own dtype: a float32 tape keeps
        # float32 gradients end to end instead of silently upcasting.
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def tape_nodes(self) -> List["Tensor"]:
        """All tensors reachable through parent links (the recorded tape)."""
        nodes: List[Tensor] = []
        visited = set()
        stack: List[Tensor] = [self]
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            nodes.append(node)
            stack.extend(node._parents)
        return nodes

    def clear_tape_grads(self) -> None:
        """Zero gradients on every tape node, enabling repeated backward().

        The NTK proxy backpropagates once per sample through a single
        forward tape; without clearing, the second pass would accumulate
        stale intermediate gradients.
        """
        for node in self.tape_nodes():
            node.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        ``grad`` defaults to ones (i.e. sums this tensor's elements), which
        matches the summed-logit convention used by the NTK proxy.
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor without grad")
        if grad is None:
            seed = np.ones_like(self.data)
        else:
            seed = np.asarray(grad.data if isinstance(grad, Tensor) else grad,
                              dtype=self.data.dtype)
            if seed.shape != self.data.shape:
                raise ShapeError(
                    f"backward seed shape {seed.shape} != tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operator sugar (implementations live in functional.py)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.add(self, _as_tensor(other))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.neg(self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.mul(self, _as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.div(self, _as_tensor(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import functional as F

        return F.div(_as_tensor(other), self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd import functional as F

        return F.power(self, float(exponent))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.autograd import functional as F

        return F.matmul(self, _as_tensor(other))

    def __getitem__(self, index) -> "Tensor":
        from repro.autograd import functional as F

        return F.getitem(self, index)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.autograd import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        from repro.autograd import functional as F

        return F.transpose(self, axes if axes else None)

    def relu(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.relu(self)


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)
