"""The precision policy: one explicit dtype contract for the whole stack.

Historically every layer of the proxy substrate hard-coded ``float64`` —
the autograd tape coerced all data, ``nn`` allocated parameters and
buffers in float64, and the engine kernels inherited it.  The paper's
trainless indicators are *rank statistics* though: NTK condition numbers
and linear-region counts only need enough precision to order candidates,
and float32 BLAS roughly doubles kernel throughput.

:class:`PrecisionPolicy` makes the dtype choice explicit and threads it
through the stack:

* ``compute_dtype`` — the dtype tensors, parameters, buffers and every
  forward/backward kernel run in (``float32`` or ``float64``),
* ``accumulate_dtype`` — the dtype numerically delicate reductions are
  *promoted* to.  Eigensolves of NTK Gram matrices amplify rounding error
  through ill-conditioned spectra, so both built-in policies accumulate
  eigendecompositions in float64; only the (much larger) forward/backward
  work runs at ``compute_dtype``.

The active policy is **scoped and thread-local**, exactly like the
``no_grad`` tape flag: the async runtime's thread backend evaluates proxy
chunks concurrently, and a process-global dtype default would let one
worker's float32 context silently reallocate another worker's float64
tensors mid-build.  Proxies never rely on ambient state across call
boundaries — each proxy function re-enters ``precision(...)`` from its
own ``ProxyConfig``, so chunks shipped to pool workers carry their
precision with them.

The default policy is :data:`FLOAT64`, which reproduces the pre-policy
behaviour bit-for-bit (pinned by ``tests/proxies/test_precision.py``).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class PrecisionPolicy:
    """An explicit dtype contract for tensor compute and accumulation.

    ``name`` doubles as the cache/store identity (it is what
    ``ProxyConfig.precision`` carries into cache keys and fingerprints);
    ``compute`` defaults to ``name`` and ``accumulate`` to ``float64``.
    """

    name: str
    compute: Optional[str] = None
    accumulate: str = "float64"

    def __post_init__(self) -> None:
        # Resolved dtype objects, cached once: Tensor construction reads
        # compute_dtype on every op output, so resolving np.dtype there
        # would put string parsing on the tape's hot path.
        object.__setattr__(self, "compute_dtype",
                           np.dtype(self.compute or self.name))
        object.__setattr__(self, "accumulate_dtype", np.dtype(self.accumulate))
        if self.compute_dtype.kind != "f" or self.accumulate_dtype.kind != "f":
            raise ReproError(
                f"precision policy needs floating dtypes, got "
                f"{self.compute_dtype}/{self.accumulate_dtype}"
            )


#: Bit-identical to the historical hard-coded float64 substrate.
FLOAT64 = PrecisionPolicy("float64")
#: Half-width compute; eigensolves still accumulate in float64.
FLOAT32 = PrecisionPolicy("float32")

#: Policies addressable by name (the ``--precision`` CLI vocabulary).
POLICIES = {policy.name: policy for policy in (FLOAT64, FLOAT32)}

PolicyLike = Union[str, PrecisionPolicy]

#: Active-policy stack, *per thread* — see the module docstring.
_PRECISION_STATE = threading.local()


def resolve_policy(policy: PolicyLike) -> PrecisionPolicy:
    """A :class:`PrecisionPolicy` from a name or an existing policy."""
    if isinstance(policy, PrecisionPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise ReproError(
            f"unknown precision {policy!r}; known: {sorted(POLICIES)}"
        ) from None


def get_precision() -> PrecisionPolicy:
    """The policy active on the current thread (default: :data:`FLOAT64`)."""
    return getattr(_PRECISION_STATE, "policy", FLOAT64)


def default_dtype() -> np.dtype:
    """The compute dtype new tensors/parameters/buffers are allocated in."""
    return get_precision().compute_dtype


@contextlib.contextmanager
def precision(policy: PolicyLike) -> Iterator[PrecisionPolicy]:
    """Context manager scoping the active precision policy.

    Scoped to the current thread — parallel proxy evaluations never see
    each other's dtype state (mirrors :func:`repro.autograd.no_grad`).
    """
    resolved = resolve_policy(policy)
    previous = get_precision()
    _PRECISION_STATE.policy = resolved
    try:
        yield resolved
    finally:
        _PRECISION_STATE.policy = previous


__all__ = [
    "PrecisionPolicy",
    "FLOAT64",
    "FLOAT32",
    "POLICIES",
    "resolve_policy",
    "get_precision",
    "default_dtype",
    "precision",
]
