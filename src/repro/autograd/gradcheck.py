"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*tensors))`` w.r.t. one input."""
    target = tensors[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*tensors).data.sum())
        flat[i] = original - eps
        minus = float(fn(*tensors).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic gradients of ``sum(fn(*tensors))`` to finite differences.

    Returns True when every ``requires_grad`` input matches within tolerance;
    raises :class:`AssertionError` with a diagnostic otherwise.
    """
    for tensor in tensors:
        tensor.zero_grad()
    out = fn(*tensors)
    out.backward(np.ones_like(out.data))
    for idx, tensor in enumerate(tensors):
        if not tensor.requires_grad:
            continue
        numeric = numerical_gradient(fn, tensors, idx, eps=eps)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs error {worst:.3e}"
            )
    return True
