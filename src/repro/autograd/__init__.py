"""Reverse-mode automatic differentiation over NumPy arrays.

This subpackage is the numerical substrate for the zero-cost proxies: the
NTK proxy needs exact per-sample parameter gradients, and the linear-region
proxy needs ReLU pre-activations.  The engine is define-by-run: every
operation on :class:`Tensor` records a backward closure, and
:meth:`Tensor.backward` walks the tape in reverse topological order.

Gradients are validated against central finite differences in
``tests/autograd/test_gradcheck.py``.

Compute precision is governed by the thread-local
:class:`~repro.autograd.precision.PrecisionPolicy` (float64 by default;
``with precision("float32"):`` halves tensor width for ~2× BLAS
throughput while rank statistics stay stable — see
:mod:`repro.autograd.precision`).
"""

from repro.autograd.precision import (
    FLOAT32,
    FLOAT64,
    POLICIES,
    PrecisionPolicy,
    default_dtype,
    get_precision,
    precision,
    resolve_policy,
)
from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.functional import (
    add,
    cross_entropy,
    log_softmax,
    max_reduce,
    softmax,
    avg_pool2d,
    concatenate,
    conv2d,
    exp,
    global_avg_pool2d,
    log,
    matmul,
    maximum,
    mean,
    mul,
    pad2d,
    relu,
    reshape,
    sigmoid,
    sum as tensor_sum,
    tanh,
    transpose,
)
from repro.autograd.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "PrecisionPolicy",
    "FLOAT32",
    "FLOAT64",
    "POLICIES",
    "precision",
    "get_precision",
    "default_dtype",
    "resolve_policy",
    "functional",
    "gradcheck",
    "add",
    "cross_entropy",
    "log_softmax",
    "max_reduce",
    "softmax",
    "avg_pool2d",
    "concatenate",
    "conv2d",
    "exp",
    "global_avg_pool2d",
    "log",
    "matmul",
    "maximum",
    "mean",
    "mul",
    "pad2d",
    "relu",
    "reshape",
    "sigmoid",
    "tensor_sum",
    "tanh",
    "transpose",
]
