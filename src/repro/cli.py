"""Command-line interface: ``micronas <subcommand>``.

Subcommands
-----------
search
    Run a NAS algorithm (micronas / tenas / random) and print the result.
runtime
    Run any registered algorithm on the parallel evaluation runtime
    (process-pool workers + persistent indicator/LUT store).
store
    Inspect and maintain a runtime store directory: ``inventory`` lists
    persisted caches/LUTs, ``compact`` folds append-only segments into
    each cache's base file, ``gc`` sweeps stale sidecar files.
trace
    Summarize a telemetry trace written by ``runtime --trace``: wall
    clock, span coverage, and a per-phase time breakdown.
pareto
    Zero-shot quality/latency Pareto front over a sampled population.
profile
    Profile a device's latency LUT and print its entries.
validate-latency
    Compare the LUT estimator against on-board ground truth.
query
    Look up an architecture in the surrogate benchmark.
proxies
    Evaluate every registered zero-cost proxy for one architecture.
devices
    List the registered MCU boards.
deploy
    Full deployment assessment (latency, arena, flash, quantization).
macro-search
    Secondary stage: fit a cell onto a board (cells/channels grid).
memplan
    Plan the static tensor arena for one architecture.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.benchdata import SurrogateBenchmarkAPI
from repro.hardware.device import known_devices
from repro.hardware.latency import LatencyEstimator
from repro.proxies.base import ProxyConfig
from repro.proxies.zerocost import PROXY_REGISTRY
from repro.search import (
    HybridObjective,
    MicroNASSearch,
    ObjectiveWeights,
    TENASSearch,
    ZeroShotRandomSearch,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils import format_table


def _resolve_arch(text: str) -> Genotype:
    """Accept either an integer index or an architecture string."""
    return Genotype.resolve(text)


def _proxy_config(args: argparse.Namespace) -> ProxyConfig:
    precision = getattr(args, "precision", "float64")
    if args.fast:
        from repro.eval.benchconfig import reduced_proxy_config

        return reduced_proxy_config(seed=args.seed, precision=precision)
    return ProxyConfig(seed=args.seed, precision=precision)


def _device(name: str):
    devices = known_devices()
    if name not in devices:
        raise SystemExit(f"unknown device {name!r}; known: {sorted(devices)}")
    return devices[name]


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_search(args: argparse.Namespace) -> int:
    proxy_config = _proxy_config(args)
    estimator = None
    if args.algorithm != "tenas" and (args.latency_weight > 0 or args.flops_weight > 0):
        estimator = LatencyEstimator(_device(args.device), config=MacroConfig.full())

    if args.algorithm == "tenas":
        result = TENASSearch(proxy_config=proxy_config, seed=args.seed).search()
    else:
        objective = HybridObjective(
            proxy_config=proxy_config,
            weights=ObjectiveWeights(latency=args.latency_weight,
                                     flops=args.flops_weight),
            latency_estimator=estimator,
        )
        if args.algorithm == "micronas":
            result = MicroNASSearch(objective, seed=args.seed).search()
        else:
            result = ZeroShotRandomSearch(objective, num_samples=args.samples,
                                          seed=args.seed).search()

    api = SurrogateBenchmarkAPI(datasets=["cifar10"])
    record = api.query(result.genotype)
    rows = [
        ["architecture", result.arch_str],
        ["index", record.index],
        ["surrogate CIFAR-10 acc", f"{record.accuracy('cifar10'):.2f} %"],
        ["FLOPs", f"{record.flops / 1e6:.2f} M"],
        ["params", f"{record.params / 1e6:.3f} M"],
        ["proxy evaluations", result.num_evaluations],
        ["search wall time", f"{result.wall_seconds:.1f} s"],
    ]
    if estimator is not None:
        rows.insert(5, ["est. latency", f"{estimator.estimate_ms(result.genotype):.1f} ms"])
    print(format_table(rows, title=f"{args.algorithm} search result"))
    return 0


def cmd_runtime(args: argparse.Namespace) -> int:
    """Run a search on the parallel evaluation runtime (pool + store)."""
    from repro.errors import ReproError
    from repro.runtime import RunHarness, RuntimeConfig

    config = RuntimeConfig(
        algorithm=args.algorithm,
        n_workers=args.workers,
        chunk_size=args.chunk_size,
        async_mode=args.async_mode,
        store_dir=args.store,
        store_read_mode=args.store_read_mode,
        max_cache_rows=args.max_cache_rows,
        device=args.device,
        samples=args.samples,
        population_size=args.population,
        cycles=args.cycles,
        latency_weight=args.latency_weight,
        flops_weight=args.flops_weight,
        arch=args.arch,
        seed=args.seed,
        fast=not args.full_scale,
        precision=args.precision,
        parent_selection=args.parent_selection,
        chunk_timeout=args.chunk_timeout,
        max_retries=args.max_retries,
        trace_path=args.trace,
        heartbeat=args.heartbeat,
        fleet_bind=args.fleet_bind,
        fleet_workers=args.fleet_workers,
        fleet_lease_seconds=args.fleet_lease_seconds,
        fleet_token=args.fleet_token,
        objectives=tuple(args.objective or ()),
        devices=tuple(
            d.strip() for d in (args.device_matrix or "").split(",")
            if d.strip()),
    )
    if config.devices:
        return _run_device_matrix(config, args)
    try:
        report = RunHarness(config).run()
    except ReproError as exc:
        # Config-level errors (unknown algorithm/device, missing --arch
        # for macro) are user mistakes, not tracebacks.
        raise SystemExit(str(exc))
    # Rows are appended in display order (optional rows at their natural
    # position) — no positional insert bookkeeping to keep in sync.
    rows = [
        ["run id", report.run_id],
        ["algorithm", report.algorithm],
        ["architecture", report.arch_str],
        ["precision", config.precision],
        ["workers (mode)", f"{report.pool.get('n_workers', config.n_workers)}"
                           f" ({report.pool['mode']}"
                           f"{', async' if config.async_mode else ''})"],
        ["pool tasks / chunks", f"{report.pool['tasks']} / "
                               f"{report.pool['chunks']}"],
    ]
    if config.async_mode:
        idle = report.pool.get("idle_fraction")
        rows.append(["worker idle fraction",
                     "n/a" if idle is None else f"{idle:.1%}"])
        faults = [f"{report.pool[key]} {key}"
                  for key in ("retries", "timeouts", "respawns",
                              "quarantined")
                  if report.pool.get(key)]
        rows.append(["faults recovered", ", ".join(faults) or "none"])
        if report.status != "completed":
            rows.append(["status", report.status])
    if config.fleet_bind or config.fleet_workers:
        rows.append(["fleet", f"{config.fleet_workers} local workers"
                             f" ({report.pool['mode']} transport)"])
    if config.store_dir:
        rows.append(["store read mode", report.store["read_mode"]])
    rows.append(["cache warm-start",
                 f"{report.cache['warm_start_entries']} entries"])
    rows.append(["cache hits / misses", f"{report.cache['hits']} / "
                                        f"{report.cache['misses']}"])
    rows.append(["store", args.store or "(none: in-memory only)"])
    if args.store:
        rows.append(["cache persisted",
                     f"{report.store['cache_saved']} entries"])
        rows.append(["LUTs in store (all runs)",
                     str(len(report.store["luts"]))])
    rows.append(["wall time", f"{report.wall_seconds:.2f} s"])
    if args.trace:
        rows.append(["trace", args.trace])
    for name, value in sorted(report.indicators.items()):
        rows.append([f"indicator: {name}", f"{value:.6g}"])
    print(format_table(rows, title="parallel-runtime search run"))
    if args.report:
        report.save_json(args.report)
        print(f"run report written to {args.report}")
    return 0


def _run_device_matrix(config, args: argparse.Namespace) -> int:
    """Device-matrix mode: one Pareto front per (device, objective-set)."""
    from repro.errors import ReproError
    from repro.runtime import RunHarness

    try:
        report = RunHarness(config).run_matrix()
    except ReproError as exc:
        raise SystemExit(str(exc))
    evals = report.trainless_evals
    rows = [
        ["run id", report.run_id],
        ["devices", ", ".join(config.devices)],
        ["objective sets",
         "; ".join("+".join(cell) for cell in config.objective_sets())
         or "latency"],
        ["samples (unique canonical)",
         f"{report.samples} ({report.unique_canonical})"],
        ["trainless rows computed / hit",
         f"{evals['rows_computed']} / {evals['rows_hit']}"],
        ["cache hits / misses", f"{report.cache['hits']} / "
                                f"{report.cache['misses']}"],
        ["store", config.store_dir or "(none: in-memory only)"],
    ]
    if config.store_dir:
        rows.append(["cache persisted",
                     f"{report.store['cache_saved']} entries"])
        rows.append(["LUTs in store (all runs)",
                     str(len(report.store["luts"]))])
    rows.append(["wall time", f"{report.wall_seconds:.2f} s"])
    print(format_table(rows, title="device-matrix run"))
    cell_rows = []
    for cell in report.cells:
        knee = cell.knee or {}
        cell_rows.append([
            cell.device,
            "+".join(cell.objectives),
            str(len(cell.front)),
            str(cell.num_fronts),
            str(knee.get("arch_index", "-")),
            " ".join(f"{axis}={knee[axis]:.4g}" for axis in cell.objectives
                     if axis in knee),
        ])
    print(format_table(
        cell_rows,
        headers=["device", "objectives", "front", "fronts", "knee arch",
                 "knee costs"],
        title="Pareto front per (device, objective-set) cell",
    ))
    if args.report:
        report.save_json(args.report)
        print(f"matrix report written to {args.report}")
    return 0


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    """Join a fleet as one worker: lease, evaluate, report, repeat."""
    from repro.errors import ReproError
    from repro.runtime.fleet import run_worker

    try:
        stats = run_worker(args.connect, store_dir=args.store,
                           token=args.token, poll_seconds=args.poll,
                           read_mode=args.read_mode,
                           max_chunks=args.max_chunks)
    except ReproError as exc:
        raise SystemExit(str(exc))
    except (ConnectionError, OSError, EOFError) as exc:
        # The broker went away (driver finished or died): for an elastic
        # worker that is a normal way to retire, not a stack trace.
        print(f"fleet worker: broker at {args.connect} gone ({exc})")
        return 0
    rows = [
        ["worker id", str(stats.worker_id)],
        ["chunks evaluated", str(stats.chunks)],
        ["rows returned", str(stats.rows)],
        ["rows from store (warm)", str(stats.store_rows_loaded)],
        ["rows flushed to store", str(stats.store_rows_flushed)],
        ["worker errors reported", str(stats.errors)],
        ["busy", f"{stats.busy_seconds:.2f} s"],
        ["exit", "drained" if stats.drained else "left"],
    ]
    print(format_table(rows, title="fleet worker session"))
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect/maintain a persistent runtime store directory."""
    from repro.runtime.store import RuntimeStore

    store = RuntimeStore(args.store)
    if args.action == "inventory":
        rows = []
        for entry in store.cache_inventory():
            rows.append([
                f"cache {entry['digest']}", f"format {entry['format']}",
                entry["precision"] or "?",
                f"{entry['base_rows']} rows + {entry['segments']} segments"
                + (f" + {entry['quarantined']} quarantined"
                   if entry.get("quarantined") else ""),
                f"{entry['bytes'] / 1024:.1f} KB",
            ])
        for meta in store.lut_keys():
            rows.append([f"lut {meta.get('device', '?')}",
                         f"format {meta.get('format', '?')}",
                         meta.get("precision", "?"), "-", "-"])
        if not rows:
            rows.append(["(empty)", "-", "-", "-", "-"])
        print(format_table(
            rows,
            headers=["entry", "format", "precision", "contents", "size"],
            title=f"runtime store inventory: {args.store}",
        ))
        return 0
    if args.action == "quarantine":
        entries = store.quarantine_entries()
        if not entries:
            print(f"no quarantined candidates in {args.store}")
            return 0
        print(format_table(
            [[e["digest"], e["kind"], str(e["identity"]),
              str(e["attempts"]), e["reason"]] for e in entries],
            headers=["cache digest", "kind", "identity", "attempts",
                     "reason"],
            title=f"quarantined candidates: {args.store}",
        ))
        return 0
    if args.action == "compact":
        results = store.compact_all()
        if not results:
            print(f"nothing to compact in {args.store}")
            return 0
        print(format_table(
            [[r["digest"], r["segments_folded"], r["entries"]]
             for r in results],
            headers=["cache digest", "segments folded", "rows in base"],
            title=f"store compaction: {args.store}",
        ))
        return 0
    # gc: sweep stale .tmp staging files / .lock sidecars
    removed = store.gc(max_age_seconds=args.max_age)
    print(f"store gc: removed {removed['tmp']} stale .tmp and "
          f"{removed['lock']} stale .lock files from {args.store}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a Chrome-trace JSON written by ``runtime --trace``."""
    from repro.runtime.telemetry import load_trace, summarize_trace

    try:
        payload = load_trace(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.path!r}: {exc}")
    summary = summarize_trace(payload)
    rows = [
        ["run id", summary["run_id"] or "?"],
        ["spans", summary["n_spans"]],
        ["wall clock", f"{summary['wall_seconds']:.3f} s"],
        ["span coverage", f"{summary['coverage']:.1%}"],
    ]
    print(format_table(rows, title=f"trace summary: {args.path}"))
    if summary["phases"]:
        print()
        print(format_table(
            [[p["name"], p["count"], f"{p['seconds']:.3f}",
              f"{p['share']:.1%}"] for p in summary["phases"]],
            headers=["phase", "spans", "seconds", "share of traced time"],
            title="time by phase (span category)",
        ))
    if summary["spans"]:
        print()
        print(format_table(
            [[s["name"], s["count"], f"{s['seconds']:.3f}",
              f"{s['share']:.1%}"] for s in summary["spans"]],
            headers=["span", "count", "seconds", "share of traced time"],
            title="time by span name",
        ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    estimator = LatencyEstimator(_device(args.device), config=MacroConfig.full())
    entries = sorted(estimator.lut.entries.items(), key=lambda kv: -kv[1])
    rows = [[str(key), f"{ms:.4f}"] for key, ms in entries[: args.top]]
    rows.append(["network overhead", f"{estimator.lut.network_overhead_ms:.4f}"])
    print(format_table(
        rows,
        headers=["layer (kind, cin, cout, h, w, k, s)", "latency (ms)"],
        title=f"latency LUT for {args.device} ({len(entries)} entries)",
    ))
    return 0


def cmd_validate_latency(args: argparse.Namespace) -> int:
    estimator = LatencyEstimator(_device(args.device), config=MacroConfig.full())
    archs = NasBench201Space().sample(args.samples, rng=args.seed)
    errors = []
    for genotype in archs:
        estimate = estimator.estimate_ms(genotype)
        truth = estimator.ground_truth_ms(genotype)
        errors.append(abs(estimate - truth) / truth)
    errors = np.array(errors)
    print(format_table(
        [
            ["architectures", len(archs)],
            ["mean abs rel error", f"{errors.mean() * 100:.2f} %"],
            ["max abs rel error", f"{errors.max() * 100:.2f} %"],
        ],
        title=f"latency estimator validation on {args.device}",
    ))
    return 0 if errors.max() < 0.10 else 1


def cmd_query(args: argparse.Namespace) -> int:
    from repro.searchspace.render import render_cell

    genotype = _resolve_arch(args.arch)
    api = SurrogateBenchmarkAPI()
    record = api.query(genotype)
    rows = [["architecture", record.arch_str], ["index", record.index],
            ["FLOPs", f"{record.flops / 1e6:.2f} M"],
            ["params", f"{record.params / 1e6:.3f} M"],
            ["training cost", f"{record.training_seconds / 3600:.2f} GPU-h"]]
    for dataset, acc in record.accuracies.items():
        rows.append([f"accuracy ({dataset})", f"{acc:.2f} %"])
    print(format_table(rows, title="surrogate benchmark record"))
    print()
    print(render_cell(genotype))
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    from repro.search.pareto import ParetoZeroShotSearch

    estimator = LatencyEstimator(_device(args.device), config=MacroConfig.full())
    objective = HybridObjective(
        proxy_config=_proxy_config(args),
        weights=ObjectiveWeights(latency=0.5),
        latency_estimator=estimator,
    )
    search = ParetoZeroShotSearch(objective, num_samples=args.samples,
                                  seed=args.seed)
    result = search.search()
    knee = result.knee_point()
    print(format_table(
        [[("knee -> " if p is knee else "") + p.genotype.to_arch_str()[:44],
          f"{p.latency_ms:.0f}", f"{p.quality_rank:.1f}"]
         for p in result.front],
        headers=["architecture", "latency ms", "quality rank (low=good)"],
        title=f"quality/latency Pareto front on {args.device} "
              f"({len(result.front)} of {args.samples} sampled)",
    ))
    return 0


def cmd_space_stats(args: argparse.Namespace) -> int:
    from repro.searchspace.stats import space_statistics

    stats = space_statistics()
    print(format_table(
        [
            ["architecture strings", f"{stats.total_arch_strings:,}"],
            ["functionally unique (canonical classes)",
             f"{stats.canonical_classes:,}"],
            ["redundancy", f"{stats.redundancy * 100:.1f} %"],
            ["fully disconnected strings",
             f"{stats.disconnected_arch_strings:,}"],
            ["largest duplicate class", f"{stats.largest_class_size:,}"],
            ["singleton classes", f"{stats.singleton_classes:,}"],
        ],
        title="NAS-Bench-201 functional-redundancy census",
    ))
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    rows = []
    for name, d in sorted(known_devices().items()):
        rows.append([
            name, d.core, f"{d.clock_hz / 1e6:.0f} MHz",
            f"{d.sram_bytes // 1024} KB", f"{d.flash_bytes // 1024} KB",
            f"{d.cycles_per_mac:.2f}", f"{d.mac_cycles('int8'):.2f}",
        ])
    print(format_table(
        rows,
        headers=["device", "core", "clock", "SRAM", "flash",
                 "cyc/MAC f32", "cyc/MAC int8"],
        title="registered MCU boards",
    ))
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    from repro.hardware.deploy import deployment_report

    genotype = _resolve_arch(args.arch)
    device = _device(args.device)
    report = deployment_report(genotype, device, config=MacroConfig.full())
    print(format_table(
        [
            ["architecture", report.arch_str],
            ["device", report.device_name],
            ["latency (float32)", f"{report.latency_float32_ms:.1f} ms"],
            ["latency (int8)", f"{report.latency_int8_ms:.1f} ms"],
            ["int8 speedup", f"{report.int8_speedup:.2f}x"],
            ["arena (int8)", f"{report.arena_int8_bytes / 1024:.0f} KB "
                             f"of {report.sram_bytes // 1024} KB SRAM"],
            ["flash (int8)", f"{report.flash_int8_bytes / 1024:.0f} KB "
                             f"of {report.flash_bytes // 1024} KB"],
            ["weight SQNR", f"{report.weight_sqnr_db:.1f} dB"],
            ["verdict", "DEPLOYABLE" if report.deployable else "DOES NOT FIT"],
        ],
        title="deployment assessment",
    ))
    return 0 if report.deployable else 1


def cmd_macro_search(args: argparse.Namespace) -> int:
    from repro.search.macro import (
        MacroSearchSpace,
        MacroStageSearch,
        device_constraints,
    )

    genotype = _resolve_arch(args.arch)
    device = _device(args.device)
    search = MacroStageSearch(
        genotype, device=device, space=MacroSearchSpace(),
        element_bytes=1 if args.int8 else 4,
    )
    constraints = device_constraints(
        device, max_latency_ms=args.max_latency_ms,
        memory_margin=args.memory_margin,
    )
    try:
        plan = search.select(constraints)
    except Exception as exc:  # SearchError: nothing fits
        print(f"macro search failed: {exc}")
        return 1
    cand = plan.candidate
    print(format_table(
        [
            ["architecture", plan.genotype.to_arch_str()],
            ["device", plan.device_name],
            ["skeleton", f"C={cand.config.init_channels} "
                         f"N={cand.config.cells_per_stage}"],
            ["latency", f"{cand.latency_ms:.1f} ms"],
            ["FLOPs", f"{cand.flops / 1e6:.2f} M"],
            ["params", f"{cand.params / 1e3:.1f} k"],
            ["peak SRAM", f"{cand.peak_sram_bytes / 1024:.0f} KB"],
            ["flash", f"{cand.flash_bytes / 1024:.0f} KB"],
            ["grid points", plan.alternatives_considered],
        ],
        title="secondary-stage (macro) search result",
    ))
    return 0


def cmd_memplan(args: argparse.Namespace) -> int:
    from repro.hardware.memplan import (
        liveness_lower_bound,
        plan_memory,
        tensor_lifetimes,
    )

    genotype = _resolve_arch(args.arch)
    lifetimes = tensor_lifetimes(
        genotype, MacroConfig.full(), element_bytes=1 if args.int8 else 4
    )
    bound = liveness_lower_bound(lifetimes)
    rows = []
    for strategy in ("no_reuse", "first_fit", "greedy_by_size"):
        plan = plan_memory(lifetimes, strategy)
        rows.append([strategy, f"{plan.arena_bytes / 1024:.1f} KB",
                     f"{plan.arena_bytes / max(bound, 1):.2f}x bound"])
    print(format_table(
        rows,
        headers=["strategy", "arena", "vs liveness bound"],
        title=f"tensor arena for {genotype.to_arch_str()} "
              f"({len(lifetimes)} buffers, bound {bound / 1024:.1f} KB)",
    ))
    if args.layout:
        plan = plan_memory(lifetimes, "greedy_by_size")
        layout = sorted(lifetimes, key=lambda b: plan.offsets[b.name])[: args.top]
        print()
        print(format_table(
            [[b.name, f"{plan.offsets[b.name]}", f"{b.size_bytes}",
              f"[{b.start}, {b.end}]"] for b in layout],
            headers=["buffer", "offset", "bytes", "live steps"],
            title=f"greedy layout (first {args.top} buffers by offset)",
        ))
    return 0


def cmd_proxies(args: argparse.Namespace) -> int:
    genotype = _resolve_arch(args.arch)
    config = _proxy_config(args)
    rows = []
    for name, spec in PROXY_REGISTRY.items():
        value = spec.fn(genotype, config)
        direction = "higher" if spec.higher_is_better else "lower"
        rows.append([name, f"{value:.4g}", f"{direction} is better"])
    print(format_table(rows, headers=["proxy", "value", "direction"],
                       title=f"zero-cost proxies for {genotype.to_arch_str()}"))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
_RUNTIME_EXAMPLES = """\
parallel evaluation runtime examples:
  # fan population evaluation out over 8 worker processes
  micronas runtime --algorithm random --samples 256 --workers 8

  # persist the indicator cache + latency LUTs; re-runs warm-start
  micronas runtime --algorithm pruning --latency-weight 0.5 \\
      --store ~/.cache/micronas

  # multi-board secondary stage against the same store: each device's
  # LUT is profiled once, ever
  micronas runtime --algorithm macro --arch 1462 \\
      --device nucleo-l432kc --store ~/.cache/micronas
  micronas runtime --algorithm macro --arch 1462 \\
      --device rp2040-pico --store ~/.cache/micronas

  # steady-state asynchronous evolution: 4 candidates stay in flight,
  # children are mutated from the Pareto set as each future resolves
  micronas runtime --async --algorithm steady-state --workers 4 \\
      --population 20 --cycles 100 --store ~/.cache/micronas

  # float32 proxy substrate: ~2x kernel throughput, rank-preserving
  # (Spearman >= 0.99 vs float64 — see BENCH_precision.json); cached
  # rows are precision-keyed, so both policies warm-start side by side
  micronas runtime --algorithm random --samples 256 --precision float32 \\
      --store ~/.cache/micronas
  micronas search --algorithm micronas --fast --precision float32

  # fault-tolerant async run: 30s per-chunk deadline, 3 retries for
  # transient failures; poison candidates are quarantined in the store
  # (inspect with 'micronas store quarantine')
  micronas runtime --async --algorithm steady-state --workers 4 \\
      --chunk-timeout 30 --max-retries 3 --store ~/.cache/micronas

  # distributed fleet: the driver binds a broker and forks 4 local
  # workers; more workers (local or remote) join and leave freely with
  # 'micronas fleet worker' and warm-start from the shared store
  micronas runtime --async --algorithm steady-state \\
      --fleet-bind 127.0.0.1:7707 --fleet-workers 4 --fleet-lease 30 \\
      --store ~/.cache/micronas
  micronas fleet worker --connect 127.0.0.1:7707 \\
      --store ~/.cache/micronas

  # device matrix: trainless indicators once, one Pareto front per
  # (device, objective-set) cell; cost axes (energy, peak-mem,
  # int8-latency, ...) are priced per board via the shared LUT store
  micronas runtime --samples 128 \\
      --objective latency --objective energy,peak-mem \\
      --device-matrix nucleo-f746zg,nucleo-l432kc \\
      --store ~/.cache/micronas
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="micronas",
        description="MicroNAS: zero-shot hardware-aware NAS for MCUs",
        epilog=_RUNTIME_EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="run an architecture search")
    p_search.add_argument("--algorithm", choices=("micronas", "tenas", "random"),
                          default="micronas")
    p_search.add_argument("--latency-weight", type=float, default=0.5)
    p_search.add_argument("--flops-weight", type=float, default=0.0)
    p_search.add_argument("--device", default="nucleo-f746zg")
    p_search.add_argument("--samples", type=int, default=64,
                          help="sample count for random search")
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--fast", action="store_true",
                          help="reduced proxy scale (quick demo)")
    p_search.add_argument("--precision", choices=("float32", "float64"),
                          default="float64",
                          help="proxy compute precision (float32: ~2x "
                               "faster kernels, rank-preserving)")
    p_search.set_defaults(fn=cmd_search)

    p_runtime = sub.add_parser(
        "runtime",
        help="run a search on the parallel evaluation runtime",
        description="Run any registered search algorithm through the "
                    "parallel evaluation runtime: unique candidates fan "
                    "out over worker processes, and a --store directory "
                    "persists the indicator cache and per-device latency "
                    "LUTs so repeated runs warm-start.",
        epilog=_RUNTIME_EXAMPLES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_runtime.add_argument("--algorithm", default="random",
                           help="registered algorithm: random, "
                                "trainless-evolutionary, steady-state "
                                "(async-only event-driven evolution), "
                                "pruning, macro, or evolutionary "
                                "(train-based surrogate baseline; ignores "
                                "indicator weights and the pool)")
    p_runtime.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = serial)")
    p_runtime.add_argument("--chunk-size", type=int, default=8,
                           help="candidates per worker task")
    p_runtime.add_argument("--async", dest="async_mode", action="store_true",
                           help="futures-per-chunk async executor: chunks "
                                "merge into the cache as they land instead "
                                "of behind a population barrier (required "
                                "by --algorithm steady-state)")
    p_runtime.add_argument("--store", default=None,
                           help="directory for the persistent indicator/LUT "
                                "store (created if missing)")
    p_runtime.add_argument("--store-read-mode", dest="store_read_mode",
                           choices=("auto", "full", "selective", "index"),
                           default="auto",
                           help="how warm-start reads the store: full "
                                "(eager whole-store replay), selective "
                                "(replay only the shards each population's "
                                "keys hash to) or index (per-shard index "
                                "point lookups — O(population), for "
                                "million-row stores); the default auto "
                                "picks index for --async runs and full "
                                "for synchronous ones (--store-read-mode "
                                "full is the async opt-out)")
    p_runtime.add_argument("--max-cache-rows", dest="max_cache_rows",
                           type=int, default=None,
                           help="LRU bound on in-memory cache rows "
                                "(default: unbounded; dirty rows stay "
                                "pinned until flushed to the store)")
    p_runtime.add_argument("--device", default="nucleo-f746zg")
    p_runtime.add_argument("--samples", type=int, default=64,
                           help="population for random search")
    p_runtime.add_argument("--population", type=int, default=20,
                           help="population for evolutionary search")
    p_runtime.add_argument("--cycles", type=int, default=100,
                           help="cycles for evolutionary search")
    p_runtime.add_argument("--latency-weight", type=float, default=0.0)
    p_runtime.add_argument("--flops-weight", type=float, default=0.0)
    p_runtime.add_argument("--arch", default=None,
                           help="cell for --algorithm macro "
                                "(arch string or index)")
    p_runtime.add_argument("--seed", type=int, default=0)
    p_runtime.add_argument("--full-scale", action="store_true",
                           help="paper-scale proxies (default: fast/reduced)")
    p_runtime.add_argument("--precision", choices=("float32", "float64"),
                           default="float64",
                           help="proxy compute precision; precision-keyed "
                                "cache/store rows never cross-contaminate")
    p_runtime.add_argument("--parent-selection",
                           choices=("crowding", "uniform"),
                           default="crowding",
                           help="steady-state Pareto parent pick: crowding-"
                                "distance-weighted (default) or uniform")
    p_runtime.add_argument("--chunk-timeout", type=float, default=None,
                           help="async runs: per-chunk deadline in seconds "
                                "— a chunk running longer is abandoned, "
                                "counted as a timeout, and retried under "
                                "--max-retries (default: no deadline)")
    p_runtime.add_argument("--max-retries", type=int, default=2,
                           help="async runs: retry budget for transient "
                                "chunk failures (timeouts, I/O errors); "
                                "deterministic-poison candidates are "
                                "bisected out and quarantined in the store "
                                "instead of retried")
    p_runtime.add_argument("--report", default=None,
                           help="also write the structured run report "
                                "(JSON) to this path")
    p_runtime.add_argument("--trace", default=None,
                           help="arm run telemetry and write a Chrome "
                                "trace_event JSON (load in Perfetto / "
                                "chrome://tracing, or inspect with "
                                "'micronas trace summarize PATH')")
    p_runtime.add_argument("--heartbeat", type=float, default=None,
                           metavar="SECS",
                           help="print a one-line progress heartbeat to "
                                "stderr every SECS seconds (evals/s, "
                                "in-flight, idle %%, retries, store rows)")
    p_runtime.add_argument("--fleet-bind", dest="fleet_bind", default=None,
                           metavar="HOST:PORT",
                           help="async runs: bind a fleet broker here and "
                                "evaluate chunks on fleet workers instead "
                                "of the fork pool (port 0 picks a free "
                                "port; workers join with 'micronas fleet "
                                "worker --connect').  Trusted networks "
                                "only: the wire format is pickle")
    p_runtime.add_argument("--fleet-workers", dest="fleet_workers",
                           type=int, default=0,
                           help="async runs: fork this many local fleet "
                                "workers against the broker at start "
                                "(implies a broker on 127.0.0.1 when "
                                "--fleet-bind is not given)")
    p_runtime.add_argument("--fleet-lease", dest="fleet_lease_seconds",
                           type=float, default=None, metavar="SECS",
                           help="fleet runs: per-chunk lease deadline — an "
                                "expired lease is re-leased once, then "
                                "counts as a transient timeout (default: "
                                "--chunk-timeout)")
    p_runtime.add_argument("--fleet-token", dest="fleet_token", default="",
                           help="shared fleet token workers must present "
                                "(identity check against cross-talk, not "
                                "authentication)")
    p_runtime.add_argument("--objective", action="append", default=None,
                           metavar="AXES",
                           help="one objective set: comma-joined registered "
                                "cost axes (latency, flops, energy, "
                                "peak-mem, int8-latency).  Repeat the flag "
                                "for multiple sets; with --device-matrix "
                                "each set becomes a matrix column, without "
                                "it the axes fold into the hybrid "
                                "objective's weights")
    p_runtime.add_argument("--device-matrix", dest="device_matrix",
                           default=None, metavar="DEV1,DEV2",
                           help="device-matrix mode: evaluate trainless "
                                "indicators once, then emit one Pareto "
                                "front per (device, objective-set) cell — "
                                "cost axes are priced per device via the "
                                "shared cache/store LUT seam")
    p_runtime.set_defaults(fn=cmd_runtime)

    p_fleet = sub.add_parser(
        "fleet",
        help="join a distributed evaluation fleet as a worker",
        description="Fleet worker client: connect to a broker started by "
                    "'micronas runtime --async --fleet-bind HOST:PORT', "
                    "lease evaluation chunks, compute them, and report "
                    "back — warm-starting from (and flushing results "
                    "into) the shared --store directory when given. "
                    "Workers may join and leave at any time; the broker "
                    "requeues chunks a lost worker held.",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_cmd", required=True)
    p_fleet_worker = fleet_sub.add_parser(
        "worker", help="run one worker loop against a fleet broker")
    p_fleet_worker.add_argument("--connect", required=True,
                                metavar="HOST:PORT",
                                help="the broker's address (printed by the "
                                     "driver / chosen via --fleet-bind)")
    p_fleet_worker.add_argument("--store", default=None,
                                help="shared store directory: rows already "
                                     "persisted are read instead of "
                                     "recomputed, and freshly computed "
                                     "rows are flushed back immediately")
    p_fleet_worker.add_argument("--token", default="",
                                help="shared fleet token (must match the "
                                     "broker's --fleet-token)")
    p_fleet_worker.add_argument("--read-mode", dest="read_mode",
                                choices=("full", "selective", "index"),
                                default="index",
                                help="store read mode for warm starts "
                                     "(default: index point lookups)")
    p_fleet_worker.add_argument("--poll", type=float, default=0.2,
                                metavar="SECS",
                                help="sleep between lease attempts while "
                                     "the broker has no work (default 0.2)")
    p_fleet_worker.add_argument("--max-chunks", dest="max_chunks",
                                type=int, default=None,
                                help="leave gracefully after this many "
                                     "chunks (default: stay until drain)")
    p_fleet_worker.set_defaults(fn=cmd_fleet_worker)

    p_trace = sub.add_parser(
        "trace",
        help="inspect a telemetry trace written by 'runtime --trace'",
        description="Offline analysis of a Chrome trace_event JSON "
                    "written by 'micronas runtime --trace PATH': "
                    "'summarize' prints wall clock, span coverage, and "
                    "a phase-by-phase time breakdown.",
    )
    p_trace.add_argument("action", choices=("summarize",))
    p_trace.add_argument("path", help="trace JSON path")
    p_trace.set_defaults(fn=cmd_trace)

    p_store = sub.add_parser(
        "store",
        help="inspect and maintain a persistent runtime store",
        description="Maintenance for a --store directory: 'inventory' "
                    "lists persisted indicator caches (format, precision, "
                    "rows, pending segments) and device LUTs; 'compact' "
                    "folds every cache's append-only segments into its "
                    "base file; 'gc' sweeps stale .tmp/.lock sidecars "
                    "that crashed writers left behind; 'quarantine' lists "
                    "poison candidates the fault-tolerant runtime "
                    "quarantined (never re-shipped by later runs).",
    )
    p_store.add_argument("action",
                         choices=("inventory", "compact", "gc",
                                  "quarantine"))
    p_store.add_argument("--store", required=True,
                         help="store directory (as passed to "
                              "'micronas runtime --store')")
    p_store.add_argument("--max-age", type=float, default=3600.0,
                         help="gc: sidecars untouched for this many "
                              "seconds are considered stale")
    p_store.set_defaults(fn=cmd_store)

    p_profile = sub.add_parser("profile", help="build and print a latency LUT")
    p_profile.add_argument("--device", default="nucleo-f746zg")
    p_profile.add_argument("--top", type=int, default=10)
    p_profile.set_defaults(fn=cmd_profile)

    p_val = sub.add_parser("validate-latency",
                           help="check the LUT estimator vs ground truth")
    p_val.add_argument("--device", default="nucleo-f746zg")
    p_val.add_argument("--samples", type=int, default=10)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.set_defaults(fn=cmd_validate_latency)

    p_query = sub.add_parser("query", help="look up an architecture")
    p_query.add_argument("arch", help="architecture string or integer index")
    p_query.set_defaults(fn=cmd_query)

    p_prox = sub.add_parser("proxies", help="evaluate all zero-cost proxies")
    p_prox.add_argument("arch", help="architecture string or integer index")
    p_prox.add_argument("--seed", type=int, default=0)
    p_prox.add_argument("--fast", action="store_true")
    p_prox.add_argument("--precision", choices=("float32", "float64"),
                        default="float64",
                        help="proxy compute precision")
    p_prox.set_defaults(fn=cmd_proxies)

    p_pareto = sub.add_parser("pareto",
                              help="zero-shot quality/latency Pareto front")
    p_pareto.add_argument("--device", default="nucleo-f746zg")
    p_pareto.add_argument("--samples", type=int, default=32)
    p_pareto.add_argument("--seed", type=int, default=0)
    p_pareto.add_argument("--fast", action="store_true")
    p_pareto.set_defaults(fn=cmd_pareto)

    p_stats = sub.add_parser("space-stats",
                             help="functional-redundancy census of the space")
    p_stats.set_defaults(fn=cmd_space_stats)

    p_dev = sub.add_parser("devices", help="list registered MCU boards")
    p_dev.set_defaults(fn=cmd_devices)

    p_deploy = sub.add_parser("deploy",
                              help="full deployment assessment for one arch")
    p_deploy.add_argument("arch", help="architecture string or integer index")
    p_deploy.add_argument("--device", default="nucleo-f746zg")
    p_deploy.set_defaults(fn=cmd_deploy)

    p_macro = sub.add_parser("macro-search",
                             help="secondary stage: fit a cell onto a board")
    p_macro.add_argument("arch", help="architecture string or integer index")
    p_macro.add_argument("--device", default="nucleo-f746zg")
    p_macro.add_argument("--max-latency-ms", type=float, default=None)
    p_macro.add_argument("--memory-margin", type=float, default=1.0)
    p_macro.add_argument("--int8", action="store_true",
                         help="plan an int8 deployment (default float32)")
    p_macro.set_defaults(fn=cmd_macro_search)

    p_plan = sub.add_parser("memplan", help="plan the static tensor arena")
    p_plan.add_argument("arch", help="architecture string or integer index")
    p_plan.add_argument("--int8", action="store_true")
    p_plan.add_argument("--layout", action="store_true",
                        help="also print the buffer layout")
    p_plan.add_argument("--top", type=int, default=12)
    p_plan.set_defaults(fn=cmd_memplan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
