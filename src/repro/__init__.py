"""MicroNAS: zero-shot hardware-aware NAS for MCUs (DATE 2024 reproduction).

Subpackages
-----------
autograd
    Reverse-mode automatic differentiation over NumPy arrays.
nn
    Neural-network layers (conv, batch-norm, linear, pooling) on autograd.
searchspace
    The NAS-Bench-201 cell space: genotypes, cells, supernets, networks.
proxies
    Zero-cost indicators: NTK condition numbers, linear regions, FLOPs.
engine
    Batched trainless-evaluation engine: vectorized proxy kernels, the
    canonicalization-aware indicator cache, and the population API every
    search algorithm evaluates through.
hardware
    MCU device registry, precision-aware cycle cost model (float32/int8),
    latency LUT profiler/estimator plus alternative latency models,
    peak-memory estimation, tensor-arena planning, deployment-graph
    rewrites, int8 quantization and inference simulation, energy model,
    end-to-end deployment reports.
search
    MicroNAS pruning search, constraints, and baselines (TE-NAS, random,
    µNAS-style evolution); secondary-stage macro search and the
    multi-objective Pareto variant.
train
    Final-training stage: SGD/Adam, LR schedules, augmentation, early
    stopping, checkpoints.
benchdata
    Surrogate NAS-Bench-201 accuracy/cost tables and a query API.
data
    Synthetic image datasets shaped like CIFAR-10/100 and ImageNet16-120.
eval
    Rank correlations and benchmark-scale configuration.

Typical entry points: :class:`repro.search.MicroNASSearch`,
:class:`repro.search.HybridObjective`,
:class:`repro.hardware.LatencyEstimator`,
:class:`repro.benchdata.SurrogateBenchmarkAPI`.
"""

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "searchspace",
    "proxies",
    "engine",
    "hardware",
    "search",
    "benchdata",
    "data",
    "eval",
    "utils",
    "errors",
]
