"""Synthetic datasets standing in for CIFAR-10 / CIFAR-100 / ImageNet16-120.

Zero-cost proxies only consume *input batches* (NTK additionally uses batch
composition, not labels), so a seeded class-conditional generator with the
right shapes and statistics exercises the same code paths as the real data.
Dataset identity (difficulty, class count) enters the reproduction through
the surrogate accuracy tables in :mod:`repro.benchdata`.
"""

from repro.data.synthetic import DatasetSpec, SyntheticImageDataset, get_dataset

__all__ = ["DatasetSpec", "SyntheticImageDataset", "get_dataset"]
