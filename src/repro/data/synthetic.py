"""Seeded class-conditional synthetic image datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import BenchmarkDataError
from repro.utils.rng import SeedLike, new_rng, stable_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Shape/class metadata of an image-classification dataset."""

    name: str
    num_classes: int
    image_size: int
    channels: int = 3

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.image_size, self.image_size)


#: The three datasets NAS-Bench-201 reports on.
DATASETS: Dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec("cifar10", 10, 32),
    "cifar100": DatasetSpec("cifar100", 100, 32),
    "imagenet16-120": DatasetSpec("imagenet16-120", 120, 16),
}


class SyntheticImageDataset:
    """Class-conditional Gaussian images with per-class spatial structure.

    Each class ``c`` has a fixed low-frequency mean pattern (seeded by the
    dataset name and class id); samples are ``pattern + sigma * noise``,
    normalised to roughly zero mean / unit variance like standard
    per-channel-normalised CIFAR batches.
    """

    def __init__(self, spec: DatasetSpec, noise_sigma: float = 0.6,
                 seed: SeedLike = None) -> None:
        self.spec = spec
        self.noise_sigma = noise_sigma
        self._seed = seed if seed is not None else stable_seed("dataset", spec.name)
        self._patterns: Dict[int, np.ndarray] = {}

    def _class_pattern(self, label: int) -> np.ndarray:
        if label not in self._patterns:
            rng = new_rng(stable_seed("pattern", self.spec.name, label, self._seed))
            size = self.spec.image_size
            # Low-frequency structure: upsampled coarse noise per channel.
            coarse = rng.normal(size=(self.spec.channels, 4, 4))
            reps = int(np.ceil(size / 4))
            pattern = np.kron(coarse, np.ones((reps, reps)))[:, :size, :size]
            self._patterns[label] = pattern
        return self._patterns[label]

    def batch(self, batch_size: int, rng: SeedLike = None,
              balanced: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a batch of (images, labels).

        With ``balanced=True`` the labels cycle through classes so small NTK
        batches see diverse inputs (matching the paper's batch study setup).
        """
        if batch_size <= 0:
            raise BenchmarkDataError("batch_size must be positive")
        generator = new_rng(rng)
        if balanced:
            labels = np.arange(batch_size) % self.spec.num_classes
        else:
            labels = generator.integers(0, self.spec.num_classes, size=batch_size)
        images = np.empty((batch_size,) + self.spec.input_shape)
        for i, label in enumerate(labels):
            pattern = self._class_pattern(int(label))
            noise = generator.normal(size=self.spec.input_shape)
            images[i] = pattern + self.noise_sigma * noise
        # Per-batch standardisation mirrors per-channel input normalisation.
        images = (images - images.mean()) / (images.std() + 1e-8)
        return images, labels


def get_dataset(name: str, seed: SeedLike = None) -> SyntheticImageDataset:
    """Look up a dataset by its NAS-Bench-201 name."""
    key = name.lower()
    if key not in DATASETS:
        raise BenchmarkDataError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        )
    return SyntheticImageDataset(DATASETS[key], seed=seed)
