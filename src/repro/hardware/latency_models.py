"""Alternative latency estimators — why the paper builds a LUT.

The paper's §II-B argues that "FLOPs alone don't represent absolute
accuracy or real-world hardware performance", motivating its profiled
lookup-table estimator.  This module makes that argument quantitative by
implementing the two obvious cheaper estimators a practitioner would try
first, fit on exactly the same profiling data the LUT consumes:

* :class:`FlopsProportionalModel` — ``latency = α · FLOPs + β``, the
  assumption behind FLOPs-guided search,
* :class:`LinearFeatureModel` — per-layer least squares over interpretable
  kernel features (MACs, output elements, im2col patch elements, a
  constant per-layer term), composed over the network like the LUT,
* :class:`LUTModel` — a thin adapter putting the paper's estimator behind
  the same interface.

All three implement ``estimate_ms(genotype)`` so the A9 ablation can rank
them on error and rank fidelity against on-board ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import HardwareModelError
from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.hardware.layers import LayerOp, network_layers
from repro.hardware.profiler import OnDeviceProfiler
from repro.proxies.flops import count_flops
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space


def layer_features(layer: LayerOp) -> np.ndarray:
    """Interpretable cost features of one kernel invocation.

    ``[MACs, output elements, im2col patch elements, 1]`` — the terms a
    hand-built analytical model would use.  The constant captures
    per-layer invocation overhead.
    """
    patch_elements = 0
    if layer.kind == "conv" and layer.kernel > 1:
        patch_elements = (layer.c_in * layer.kernel**2
                          * layer.height * layer.width)
    return np.array(
        [layer.macs, layer.out_elements, patch_elements, 1.0], dtype=float
    )


class FlopsProportionalModel:
    """``latency = α · FLOPs + β`` fit on measured whole networks.

    This is the latency model FLOPs-guided search implicitly assumes.  It
    is calibrated honestly — ordinary least squares on on-board
    measurements of the calibration networks — and still mispredicts,
    because networks of equal FLOPs differ in pooling/copy traffic, SIMD
    utilisation and memory spill.
    """

    name = "flops-proportional"

    def __init__(self, device: MCUDevice = NUCLEO_F746ZG,
                 config: Optional[MacroConfig] = None,
                 profiler: Optional[OnDeviceProfiler] = None) -> None:
        self.device = device
        self.config = config or MacroConfig.full()
        self.profiler = profiler or OnDeviceProfiler(device)
        self._coef: Optional[np.ndarray] = None

    def fit(self, genotypes: Sequence[Genotype]) -> "FlopsProportionalModel":
        if len(genotypes) < 2:
            raise HardwareModelError("need >= 2 calibration networks")
        flops = np.array(
            [count_flops(g, self.config) for g in genotypes], dtype=float
        )
        measured = np.array(
            [self.profiler.profile_network_ms(g, self.config)
             for g in genotypes]
        )
        design = np.stack([flops, np.ones_like(flops)], axis=1)
        self._coef, *_ = np.linalg.lstsq(design, measured, rcond=None)
        return self

    def estimate_ms(self, genotype: Genotype) -> float:
        if self._coef is None:
            raise HardwareModelError("model not fitted; call fit() first")
        flops = float(count_flops(genotype, self.config))
        return float(self._coef[0] * flops + self._coef[1])


class LinearFeatureModel:
    """Per-layer linear regression, composed over the network.

    Fit on the same per-op profiling runs the LUT stores, but forced to
    explain them with four global coefficients.  It captures broad cost
    structure yet misses shape-specific effects (spill thresholds, SIMD
    lane waste, 1×1-vs-3×3 im2col asymmetry) that the LUT memorises.
    """

    name = "linear-feature"

    def __init__(self, device: MCUDevice = NUCLEO_F746ZG,
                 config: Optional[MacroConfig] = None,
                 profiler: Optional[OnDeviceProfiler] = None) -> None:
        self.device = device
        self.config = config or MacroConfig.full()
        self.profiler = profiler or OnDeviceProfiler(device)
        self._coef: Optional[np.ndarray] = None
        self._overhead_ms = 0.0

    def fit(self, layers: Optional[Sequence[LayerOp]] = None) -> "LinearFeatureModel":
        if layers is None:
            lut = self.profiler.build_lut(self.config)
            keys = list(lut.entries)
            layers = [LayerOp(k[0], *k[1:]) for k in keys]
            targets = np.array([lut.entries[k] for k in keys])
        else:
            layers = list(layers)
            targets = np.array(
                [self.profiler.measure_layer_ms(layer) for layer in layers]
            )
        if len(layers) < 4:
            raise HardwareModelError("need >= 4 calibration layers")
        design = np.stack([layer_features(layer) for layer in layers])
        self._coef, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self._overhead_ms = self.profiler.measure_network_overhead_ms()
        return self

    def layer_ms(self, layer: LayerOp) -> float:
        if self._coef is None:
            raise HardwareModelError("model not fitted; call fit() first")
        return float(layer_features(layer) @ self._coef)

    def estimate_ms(self, genotype: Genotype) -> float:
        layers = network_layers(genotype, self.config)
        return sum(self.layer_ms(layer) for layer in layers) + self._overhead_ms


class LUTModel:
    """The paper's estimator behind the ablation's common interface."""

    name = "lut (paper)"

    def __init__(self, device: MCUDevice = NUCLEO_F746ZG,
                 config: Optional[MacroConfig] = None,
                 estimator: Optional[LatencyEstimator] = None) -> None:
        self.estimator = estimator or LatencyEstimator(device, config=config)

    def fit(self, *_args) -> "LUTModel":
        return self  # profiling happened at construction

    def estimate_ms(self, genotype: Genotype) -> float:
        return self.estimator.estimate_ms(genotype)


@dataclass(frozen=True)
class ModelAccuracy:
    """Error statistics of one estimator against on-board ground truth."""

    name: str
    mean_rel_error: float
    max_rel_error: float
    kendall_tau: float


def compare_models(
    models: Sequence,
    genotypes: Sequence[Genotype],
    device: MCUDevice = NUCLEO_F746ZG,
    config: Optional[MacroConfig] = None,
    profiler: Optional[OnDeviceProfiler] = None,
) -> List[ModelAccuracy]:
    """Evaluate estimators against whole-network measurements."""
    from repro.eval.correlation import kendall_tau

    config = config or MacroConfig.full()
    profiler = profiler or OnDeviceProfiler(device)
    truth = np.array(
        [profiler.profile_network_ms(g, config) for g in genotypes]
    )
    results = []
    for model in models:
        estimates = np.array([model.estimate_ms(g) for g in genotypes])
        rel = np.abs(estimates - truth) / truth
        results.append(ModelAccuracy(
            name=model.name,
            mean_rel_error=float(rel.mean()),
            max_rel_error=float(rel.max()),
            kendall_tau=float(kendall_tau(estimates, truth)),
        ))
    return results


def default_calibration_sample(num: int = 12, rng: int = 31) -> List[Genotype]:
    """A deterministic calibration set disjoint from typical eval seeds."""
    return NasBench201Space().sample(num, rng=rng)
