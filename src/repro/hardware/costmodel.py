"""Cycle-level cost model of CNN kernels on Cortex-M MCUs.

This model plays the role of the physical board in the reproduction: the
simulated profiler "measures" it per-op to build the LUT, and whole-network
runs of it provide the ground truth the LUT estimator is validated against.

The structure follows CMSIS-NN-style float kernels:

* convolutions run an im2col copy followed by a MAC inner loop whose
  throughput depends on SIMD-lane utilisation (channel counts that are not
  multiples of the device's ``simd_width`` waste lanes);
* 1×1 convolutions skip im2col entirely — one source of the paper's
  "MCU-specific bias" that makes latency-guided search differ from
  FLOPs-guided search;
* pooling and elementwise kernels are memory-bound (cycles per element);
* layers whose working set exceeds the device's fast memory (DTCM/cache)
  pay a spill penalty on their memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hardware.device import MCUDevice
from repro.hardware.layers import LayerOp

#: Bytes per activation/weight element (float32 deployment).
ELEMENT_BYTES = 4


#: Supported kernel precisions.
PRECISIONS = ("float32", "int8")

_PRECISION_BYTES = {"float32": 4, "int8": 1}


@dataclass(frozen=True)
class CycleCostModel:
    """Deterministic kernel-cycle estimates for one device.

    ``precision`` selects the kernel family: ``"float32"`` (the default,
    matching the paper's deployments) or ``"int8"`` (CMSIS-NN quantized
    kernels — cheaper MACs and quartered memory traffic, but each conv
    output pays a requantization epilogue).
    """

    device: MCUDevice
    precision: str = "float32"
    im2col_cycles_per_element: float = 1.6
    pool_cycles_per_element: float = 2.4
    add_cycles_per_element: float = 1.0
    copy_cycles_per_element: float = 0.75
    relu_cycles_per_element: float = 0.5
    gap_cycles_per_element: float = 1.2
    requant_cycles_per_element: float = 0.9

    def __post_init__(self) -> None:
        if self.precision not in PRECISIONS:
            raise HardwareModelError(
                f"unknown precision {self.precision!r}; choose from {PRECISIONS}"
            )

    @property
    def element_bytes(self) -> int:
        """Bytes per activation/weight element at this precision."""
        return _PRECISION_BYTES[self.precision]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _simd_utilisation(self, channels: int) -> float:
        """Fraction of MAC lanes doing useful work for this channel count."""
        width = self.device.simd_width
        if width <= 1:
            return 1.0
        full_groups, remainder = divmod(channels, width)
        used = full_groups * width + remainder
        allocated = (full_groups + (1 if remainder else 0)) * width
        return used / allocated if allocated else 1.0

    def _spill_factor(self, working_set_bytes: int) -> float:
        """Multiplier on memory-bound work when the layer spills fast memory."""
        if working_set_bytes <= self.device.fast_memory_bytes:
            return 1.0
        return 1.0 + self.device.spill_penalty

    # ------------------------------------------------------------------
    # Kernel costs
    # ------------------------------------------------------------------
    def layer_cycles(self, layer: LayerOp) -> float:
        """Cycles for one kernel invocation (including layer overhead)."""
        if layer.kind == "conv":
            return self._conv_cycles(layer)
        if layer.kind == "pool":
            return self._elementwise(layer, self.pool_cycles_per_element * layer.kernel**2)
        if layer.kind == "add":
            return self._elementwise(layer, self.add_cycles_per_element)
        if layer.kind == "copy":
            return self._elementwise(layer, self.copy_cycles_per_element)
        if layer.kind == "gap":
            return self._elementwise(layer, self.gap_cycles_per_element)
        if layer.kind == "linear":
            macs = layer.macs
            cycles = macs * self.device.mac_cycles(self.precision)
            cycles += layer.out_elements * self._epilogue_cycles_per_element()
            return cycles + self.device.layer_overhead_cycles
        raise HardwareModelError(f"unknown layer kind {layer.kind!r}")

    def _epilogue_cycles_per_element(self) -> float:
        """Fused output-loop cost: ReLU/bias, plus requantization at int8."""
        if self.precision == "int8":
            return self.relu_cycles_per_element + self.requant_cycles_per_element
        return self.relu_cycles_per_element

    def _conv_cycles(self, layer: LayerOp) -> float:
        macs = layer.macs
        utilisation = self._simd_utilisation(layer.c_in)
        mac_cycles = macs * self.device.mac_cycles(self.precision) / utilisation
        # im2col patch assembly: only k>1 convolutions materialise patches.
        if layer.kernel > 1:
            patch_elements = layer.c_in * layer.kernel**2 * layer.height * layer.width
            im2col = patch_elements * self.im2col_cycles_per_element
        else:
            im2col = 0.0
        epilogue = layer.out_elements * self._epilogue_cycles_per_element()
        in_elements = layer.c_in * (layer.height * layer.stride) * (layer.width * layer.stride)
        weight_bytes = layer.c_in * layer.c_out * layer.kernel**2 * self.element_bytes
        working_set = (in_elements + layer.out_elements) * self.element_bytes + weight_bytes
        spill = self._spill_factor(working_set)
        return (mac_cycles + im2col * spill + epilogue
                + self.device.layer_overhead_cycles)

    def _elementwise(self, layer: LayerOp, cycles_per_element: float) -> float:
        elements = layer.out_elements
        working_set = 2 * elements * self.element_bytes
        spill = self._spill_factor(working_set)
        return (elements * cycles_per_element * spill
                + self.device.layer_overhead_cycles)

    # ------------------------------------------------------------------
    # Whole-network ground truth
    # ------------------------------------------------------------------
    def network_cycles(self, layers, include_transition_stalls: bool = True) -> float:
        """Total cycles for a layer sequence.

        ``include_transition_stalls`` adds the inter-layer cache-refill cost
        (~2 % of each layer) that isolated per-op profiling cannot observe —
        this is the structural error source of the LUT estimator.
        """
        total = 0.0
        for layer in layers:
            cycles = self.layer_cycles(layer)
            if include_transition_stalls:
                cycles *= 1.02
            total += cycles
        return total + self.device.network_overhead_cycles

    def layer_ms(self, layer: LayerOp) -> float:
        return self.device.cycles_to_ms(self.layer_cycles(layer))
