"""Deployment-graph optimisation: what an optimising MCU runtime executes.

:func:`repro.hardware.layers.network_layers` enumerates the *naive*
kernel sequence (every edge's op runs, every multi-input node pays
explicit adds, every ``skip_connect`` is a buffer copy).  Real runtimes
(TFLite-Micro with a graph compiler, microTVM, Glow) apply three cheap
rewrites first:

* **dead-code elimination** — ops on paths that never reach the cell
  output compute values nobody reads,
* **copy elision** — a ``skip_connect`` copy is an alias: its consumer
  reads the source buffer directly,
* **accumulator fusion** — when several edges feed one node, the first
  producer writes the accumulator and each further *conv* producer
  accumulates inside its own GEMM epilogue (``beta = 1``), so only
  non-conv extra inputs still pay an ``add`` kernel.

:func:`optimized_network_layers` mirrors ``network_layers`` under those
rules and :func:`optimization_stats` quantifies what each rewrite removed
— the A10 ablation measures the latency these rewrites are worth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.hardware.layers import LayerOp, _reduction_layers
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CONV_KERNEL, EDGES, NUM_NODES


def live_nodes(genotype: Genotype) -> Set[int]:
    """Nodes on some input→output path of the cell DAG.

    A node is live iff it is reachable from the input (node 0) through
    non-``none`` edges *and* the output (node 3) is reachable from it.
    """
    active = [
        (src, dst)
        for idx, (src, dst) in enumerate(EDGES)
        if genotype.ops[idx] != "none"
    ]
    forward = {0}
    for src, dst in active:  # EDGES is topologically ordered
        if src in forward:
            forward.add(dst)
    backward = {NUM_NODES - 1}
    for src, dst in reversed(active):
        if dst in backward:
            backward.add(src)
    return forward & backward


@dataclass(frozen=True)
class CellOptimization:
    """The optimised kernel sequence of one cell plus rewrite counters."""

    layers: Tuple[LayerOp, ...]
    dead_ops_removed: int
    copies_elided: int
    adds_fused: int


def optimize_cell(genotype: Genotype, channels: int,
                  size: int) -> CellOptimization:
    """Apply DCE, copy elision and accumulator fusion to one cell."""
    keep = live_nodes(genotype)
    layers: List[LayerOp] = []
    dead = 0
    copies_elided = 0
    adds_fused = 0
    # Producers per node, in edge order, considering only live edges.
    producers: List[List[str]] = [[] for _ in range(NUM_NODES)]
    for idx, (src, dst) in enumerate(EDGES):
        op = genotype.ops[idx]
        if op == "none":
            continue
        if src not in keep or dst not in keep:
            dead += 1
            continue
        producers[dst].append(op)
        if op in CONV_KERNEL:
            layers.append(LayerOp("conv", channels, channels, size, size,
                                  kernel=CONV_KERNEL[op]))
        elif op == "avg_pool_3x3":
            layers.append(LayerOp("pool", channels, channels, size, size,
                                  kernel=3))
        elif op == "skip_connect":
            copies_elided += 1  # consumer aliases the source buffer
    for node in range(1, NUM_NODES):
        inputs = producers[node]
        if len(inputs) <= 1:
            continue
        convs = sum(op in CONV_KERNEL for op in inputs)
        pools = sum(op == "avg_pool_3x3" for op in inputs)
        skips = sum(op == "skip_connect" for op in inputs)
        # The compiler orders producers so a conv (if any) writes the
        # accumulator first; every further conv accumulates inside its own
        # GEMM epilogue (beta=1).  Pool results and aliased skip sources
        # still enter through an add kernel each — except that when no
        # conv exists, the first add can write instead of accumulate.
        adds_fused += max(convs - 1, 0)
        adds_needed = pools + skips
        if convs == 0 and adds_needed > 0:
            adds_needed -= 1
        for _ in range(adds_needed):
            layers.append(LayerOp("add", channels, channels, size, size))
    return CellOptimization(
        layers=tuple(layers),
        dead_ops_removed=dead,
        copies_elided=copies_elided,
        adds_fused=adds_fused,
    )


@dataclass(frozen=True)
class OptimizationStats:
    """Whole-network effect of the graph rewrites."""

    kernels_before: int
    kernels_after: int
    dead_ops_removed: int
    copies_elided: int
    adds_fused: int

    @property
    def kernels_removed(self) -> int:
        return self.kernels_before - self.kernels_after

    def describe(self) -> str:
        return (
            f"{self.kernels_before} -> {self.kernels_after} kernels "
            f"({self.dead_ops_removed} dead, {self.copies_elided} copies, "
            f"{self.adds_fused} adds fused)"
        )


def optimized_network_layers(
    genotype: Genotype,
    config: Optional[MacroConfig] = None,
) -> List[LayerOp]:
    """The optimised deployment kernel sequence (cf. ``network_layers``)."""
    config = config or MacroConfig.full()
    channels = config.stage_channels
    sizes = config.stage_sizes
    layers: List[LayerOp] = [
        LayerOp("conv", config.input_channels, channels[0],
                config.image_size, config.image_size, kernel=3)
    ]
    for stage in range(3):
        if stage > 0:
            layers.extend(
                _reduction_layers(channels[stage - 1], channels[stage],
                                  sizes[stage])
            )
        cell = optimize_cell(genotype, channels[stage], sizes[stage])
        for _ in range(config.cells_per_stage):
            layers.extend(cell.layers)
    layers.append(LayerOp("gap", channels[2], channels[2], sizes[2], sizes[2]))
    layers.append(LayerOp("linear", channels[2], config.num_classes, 1, 1))
    return layers


def optimization_stats(
    genotype: Genotype,
    config: Optional[MacroConfig] = None,
) -> OptimizationStats:
    """Count what the rewrites remove across the whole network."""
    from repro.hardware.layers import network_layers

    config = config or MacroConfig.full()
    before = len(network_layers(genotype, config))
    after = len(optimized_network_layers(genotype, config))
    dead = copies = fused = 0
    for channels, size in zip(config.stage_channels, config.stage_sizes):
        cell = optimize_cell(genotype, channels, size)
        dead += config.cells_per_stage * cell.dead_ops_removed
        copies += config.cells_per_stage * cell.copies_elided
        fused += config.cells_per_stage * cell.adds_fused
    return OptimizationStats(
        kernels_before=before,
        kernels_after=after,
        dead_ops_removed=dead,
        copies_elided=copies,
        adds_fused=fused,
    )
