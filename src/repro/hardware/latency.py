"""The paper's LUT-composition latency estimator (indicator ``L``).

``estimate = Σ LUT[layer] + constant overhead`` over the deployment
network's kernel sequence.  Validated against full-network "on-board"
measurements in ``benchmarks/bench_latency_model_accuracy.py``.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import TYPE_CHECKING, Optional

from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.layers import network_layers
from repro.hardware.profiler import LatencyLUT, OnDeviceProfiler
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see __init__)
    from repro.engine.cache import IndicatorCache


class LatencyEstimator:
    """Estimates MCU inference latency of any genotype from a profiled LUT.

    Construction profiles the device once (building the LUT for the given
    deployment macro config); estimates are then pure table composition and
    memoized.  The memo is a pluggable
    :class:`~repro.engine.cache.IndicatorCache` — pass the evaluation
    engine's cache to fold per-estimator results into the shared indicator
    memo (the key layout matches :meth:`repro.engine.Engine.latency_ms`).

    Note ``estimate_ms`` prices the genotype *as given*: dead edges are
    billed exactly like the on-board ground-truth measurement bills them.
    Canonicalization-aware pricing lives in the engine layer.

    A duck-typed ``lut_store`` (anything with
    ``lut_get(device_name, precision, config)`` /
    ``lut_put(lut, precision, config)``, e.g.
    :class:`repro.runtime.store.RuntimeStore`) turns profiling into a
    once-per-board cost: construction first asks the store for a matching
    LUT and only profiles — then persists the result — on a store miss.
    ``lut_from_store`` records which path was taken.
    """

    def __init__(
        self,
        device: MCUDevice = NUCLEO_F746ZG,
        config: Optional[MacroConfig] = None,
        profiler: Optional[OnDeviceProfiler] = None,
        lut: Optional[LatencyLUT] = None,
        precision: str = "float32",
        cache: Optional["IndicatorCache"] = None,
        lut_store=None,
    ) -> None:
        # Deferred import: repro.engine transitively imports this module
        # (engine → proxies → benchdata → hardware), so binding at class
        # construction time breaks the cycle.
        from repro.engine.cache import IndicatorCache

        self.device = device
        self.config = config or MacroConfig.full()
        self.profiler = profiler or OnDeviceProfiler(device, precision=precision)
        self.lut_from_store = False
        if lut is None and lut_store is not None:
            lut = lut_store.lut_get(device.name, self.profiler.precision,
                                    self.config)
            self.lut_from_store = lut is not None
        if lut is None:
            lut = self.profiler.build_lut(self.config)
            if lut_store is not None:
                lut_store.lut_put(lut, self.profiler.precision, self.config)
        self.lut = lut
        self.cache = cache if cache is not None else IndicatorCache()
        self._key_suffix = (self.device.name, self.precision,
                            astuple(self.config))

    @property
    def precision(self) -> str:
        """Kernel precision this estimator was profiled at."""
        return self.profiler.precision

    def estimate_ms(self, genotype: Genotype) -> float:
        """Estimated single-image inference latency in milliseconds."""
        key = ("latency", genotype.to_index()) + self._key_suffix

        def compute() -> float:
            layers = network_layers(genotype, self.config)
            total = sum(self.lut.lookup(layer) for layer in layers)
            return total + self.lut.network_overhead_ms

        return self.cache.lookup(key, compute)

    def ground_truth_ms(self, genotype: Genotype) -> float:
        """Full on-board measurement (validation reference, not cached)."""
        return self.profiler.profile_network_ms(genotype, self.config)

    def relative_error(self, genotype: Genotype) -> float:
        """|estimate − measured| / measured for one architecture."""
        truth = self.ground_truth_ms(genotype)
        return abs(self.estimate_ms(genotype) - truth) / truth


def measure_ground_truth_ms(
    genotype: Genotype,
    device: MCUDevice = NUCLEO_F746ZG,
    config: Optional[MacroConfig] = None,
    cost_model: Optional[CycleCostModel] = None,
    precision: str = "float32",
) -> float:
    """Noise-free exact latency from the cycle model (analysis helper)."""
    model = cost_model or CycleCostModel(device, precision=precision)
    layers = network_layers(genotype, config or MacroConfig.full())
    cycles = model.network_cycles(layers, include_transition_stalls=True)
    return device.cycles_to_ms(cycles)
