"""The paper's LUT-composition latency estimator (indicator ``L``).

``estimate = Σ LUT[layer] + constant overhead`` over the deployment
network's kernel sequence.  Validated against full-network "on-board"
measurements in ``benchmarks/bench_latency_model_accuracy.py``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.layers import network_layers
from repro.hardware.profiler import LatencyLUT, OnDeviceProfiler
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


class LatencyEstimator:
    """Estimates MCU inference latency of any genotype from a profiled LUT.

    Construction profiles the device once (building the LUT for the given
    deployment macro config); estimates are then pure table composition and
    are cached per genotype.
    """

    def __init__(
        self,
        device: MCUDevice = NUCLEO_F746ZG,
        config: Optional[MacroConfig] = None,
        profiler: Optional[OnDeviceProfiler] = None,
        lut: Optional[LatencyLUT] = None,
        precision: str = "float32",
    ) -> None:
        self.device = device
        self.config = config or MacroConfig.full()
        self.profiler = profiler or OnDeviceProfiler(device, precision=precision)
        self.lut = lut if lut is not None else self.profiler.build_lut(self.config)
        self._cache: Dict[int, float] = {}

    @property
    def precision(self) -> str:
        """Kernel precision this estimator was profiled at."""
        return self.profiler.precision

    def estimate_ms(self, genotype: Genotype) -> float:
        """Estimated single-image inference latency in milliseconds."""
        index = genotype.to_index()
        if index not in self._cache:
            layers = network_layers(genotype, self.config)
            total = sum(self.lut.lookup(layer) for layer in layers)
            self._cache[index] = total + self.lut.network_overhead_ms
        return self._cache[index]

    def ground_truth_ms(self, genotype: Genotype) -> float:
        """Full on-board measurement (validation reference, not cached)."""
        return self.profiler.profile_network_ms(genotype, self.config)

    def relative_error(self, genotype: Genotype) -> float:
        """|estimate − measured| / measured for one architecture."""
        truth = self.ground_truth_ms(genotype)
        return abs(self.estimate_ms(genotype) - truth) / truth


def measure_ground_truth_ms(
    genotype: Genotype,
    device: MCUDevice = NUCLEO_F746ZG,
    config: Optional[MacroConfig] = None,
    cost_model: Optional[CycleCostModel] = None,
    precision: str = "float32",
) -> float:
    """Noise-free exact latency from the cycle model (analysis helper)."""
    model = cost_model or CycleCostModel(device, precision=precision)
    layers = network_layers(genotype, config or MacroConfig.full())
    cycles = model.network_cycles(layers, include_transition_stalls=True)
    return device.cycles_to_ms(cycles)
