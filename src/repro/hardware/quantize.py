"""Post-training int8 quantization (MCU deployment stage).

NAS-Bench-201 cells at float32 cannot fit the F746ZG's 1 MB flash (see
:mod:`repro.hardware.memory`); real MCU deployments quantize to int8.
This module implements standard symmetric per-tensor post-training
quantization:

* :func:`quantize_array` / :func:`dequantize_array` — the affine codec,
* :class:`QuantizedModule` — fake-quantized inference: weights are passed
  through the int8 codec (so the arithmetic error is exactly the
  deployment error) while activations stay float, matching per-layer
  requantisation with generous activation scales,
* :func:`quantization_report` — accuracy-style error metrics plus the
  flash footprint the :class:`~repro.hardware.memory.MemoryEstimator`
  assumes for ``element_bytes=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.errors import HardwareModelError
from repro.nn.module import Module

INT8_LEVELS = 127  # symmetric: [-127, 127]


def quantization_scale(array: np.ndarray) -> float:
    """Symmetric per-tensor scale mapping max |x| to 127."""
    peak = float(np.abs(array).max())
    if peak == 0.0:
        return 1.0
    return peak / INT8_LEVELS


def quantize_array(array: np.ndarray, scale: float = None) -> Tuple[np.ndarray, float]:
    """Quantize to int8 codes; returns (codes, scale)."""
    if scale is None:
        scale = quantization_scale(array)
    if scale <= 0:
        raise HardwareModelError("quantization scale must be positive")
    codes = np.clip(np.round(array / scale), -INT8_LEVELS, INT8_LEVELS)
    return codes.astype(np.int8), scale


def dequantize_array(codes: np.ndarray, scale: float) -> np.ndarray:
    """Reconstruct floats from int8 codes."""
    return codes.astype(np.float64) * scale


@dataclass
class QuantizationReport:
    """Weight-quantization error and deployment footprint."""

    num_tensors: int
    total_params: int
    flash_bytes_int8: int
    flash_bytes_float32: int
    max_weight_error: float
    mean_sqnr_db: float

    @property
    def compression(self) -> float:
        return self.flash_bytes_float32 / self.flash_bytes_int8


class QuantizedModule(Module):
    """Wraps a float module with fake-quantized (int8) weights.

    Every parameter is round-tripped through the int8 codec at
    construction, so forward passes produce exactly the numerics an
    int8-weight deployment would (activations in float — the common
    weight-only quantization used by MCU toolchains for memory, with
    activation scales wide enough not to clip).
    """

    def __init__(self, model: Module) -> None:
        super().__init__()
        self.model = model
        self.scales: Dict[int, float] = {}
        for p in model.parameters():
            codes, scale = quantize_array(p.data)
            p.data = dequantize_array(codes, scale)
            self.scales[id(p)] = scale

    def forward(self, x: Tensor) -> Tensor:
        return self.model(x)


def quantization_report(model: Module) -> QuantizationReport:
    """Quantize a copy of every weight tensor and measure the damage."""
    params = model.parameters()
    if not params:
        raise HardwareModelError("model has no parameters to quantize")
    errors: List[float] = []
    sqnrs: List[float] = []
    total = 0
    for p in params:
        total += p.size
        codes, scale = quantize_array(p.data)
        recon = dequantize_array(codes, scale)
        err = np.abs(recon - p.data)
        errors.append(float(err.max()))
        signal = float((p.data**2).mean())
        noise = float(((recon - p.data) ** 2).mean())
        if noise > 0 and signal > 0:
            sqnrs.append(10.0 * np.log10(signal / noise))
    return QuantizationReport(
        num_tensors=len(params),
        total_params=total,
        flash_bytes_int8=total,
        flash_bytes_float32=total * 4,
        max_weight_error=max(errors),
        mean_sqnr_db=float(np.mean(sqnrs)) if sqnrs else float("inf"),
    )


def quantized_logit_error(model: Module, quantized: Module,
                          images: np.ndarray) -> float:
    """Mean |logit difference| between float and int8-weight inference."""
    model.train(False)
    quantized.train(False)
    with no_grad():
        ref = model(Tensor(images)).data
        quant = quantized(Tensor(images)).data
    return float(np.abs(ref - quant).mean())
