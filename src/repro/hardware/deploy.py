"""End-to-end deployment assessment: will this architecture ship?

Combines every hardware model in the package into one answer per
(architecture, board):

* latency at float32 and int8 (LUT estimators profiled per precision),
* the planned int8/float32 tensor arena (greedy-by-size planner) against
  the board's SRAM,
* int8 flash footprint (weights + code) against the board's flash,
* weight-quantization damage (SQNR) from the int8 codec.

This is the artefact the MicroNAS workflow hands to a firmware engineer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.latency import LatencyEstimator
from repro.hardware.memory import MemoryEstimator
from repro.hardware.memplan import plan_memory, tensor_lifetimes
from repro.hardware.quantize import quantization_report
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig, build_network


@dataclass(frozen=True)
class DeploymentReport:
    """Everything that decides whether an architecture ships on a board."""

    arch_str: str
    device_name: str
    latency_float32_ms: float
    latency_int8_ms: float
    arena_float32_bytes: int
    arena_int8_bytes: int
    flash_int8_bytes: int
    sram_bytes: int
    flash_bytes: int
    weight_sqnr_db: float
    total_params: int

    @property
    def int8_speedup(self) -> float:
        """Latency ratio float32 / int8 (>1 when quantization pays off)."""
        return self.latency_float32_ms / self.latency_int8_ms

    @property
    def fits_sram(self) -> bool:
        return self.arena_int8_bytes <= self.sram_bytes

    @property
    def fits_flash(self) -> bool:
        return self.flash_int8_bytes <= self.flash_bytes

    @property
    def deployable(self) -> bool:
        """int8 deployment fits both board memories."""
        return self.fits_sram and self.fits_flash

    def summary(self) -> str:
        verdict = "DEPLOYABLE" if self.deployable else "DOES NOT FIT"
        return (
            f"{self.arch_str} on {self.device_name}: {verdict} — "
            f"int8 {self.latency_int8_ms:.1f} ms "
            f"({self.int8_speedup:.2f}x vs float32), "
            f"arena {self.arena_int8_bytes / 1024:.0f}/"
            f"{self.sram_bytes / 1024:.0f} KB, "
            f"flash {self.flash_int8_bytes / 1024:.0f}/"
            f"{self.flash_bytes / 1024:.0f} KB, "
            f"weight SQNR {self.weight_sqnr_db:.1f} dB"
        )


def deployment_report(
    genotype: Genotype,
    device: MCUDevice = NUCLEO_F746ZG,
    config: Optional[MacroConfig] = None,
    float_estimator: Optional[LatencyEstimator] = None,
    int8_estimator: Optional[LatencyEstimator] = None,
    rng: int = 0,
) -> DeploymentReport:
    """Assess one architecture's deployability on one board.

    Estimators may be passed in to share profiled LUTs across many calls
    (e.g. when sweeping architectures on a fixed board).
    """
    config = config or MacroConfig.full()
    if float_estimator is None:
        float_estimator = LatencyEstimator(device=device, config=config)
    if int8_estimator is None:
        int8_estimator = LatencyEstimator(device=device, config=config,
                                          precision="int8")

    arena_f32 = plan_memory(
        tensor_lifetimes(genotype, config, element_bytes=4), "greedy_by_size"
    ).arena_bytes
    arena_i8 = plan_memory(
        tensor_lifetimes(genotype, config, element_bytes=1), "greedy_by_size"
    ).arena_bytes
    flash_i8 = MemoryEstimator(config, element_bytes=1).report(genotype).flash_bytes

    quant = quantization_report(build_network(genotype, config, rng=rng))

    return DeploymentReport(
        arch_str=genotype.to_arch_str(),
        device_name=device.name,
        latency_float32_ms=float_estimator.estimate_ms(genotype),
        latency_int8_ms=int8_estimator.estimate_ms(genotype),
        arena_float32_bytes=arena_f32,
        arena_int8_bytes=arena_i8,
        flash_int8_bytes=flash_i8,
        sram_bytes=device.sram_bytes,
        flash_bytes=device.flash_bytes,
        weight_sqnr_db=quant.mean_sqnr_db,
        total_params=quant.total_params,
    )
