"""Static post-training int8 inference simulation (activations included).

:mod:`repro.hardware.quantize` quantizes *weights* only — the memory
story.  Real MCU runtimes (CMSIS-NN, TFLite-Micro) also quantize the
*activations*: each conv/linear output is requantized to int8 using a
scale fixed offline from calibration data.  This module simulates those
numerics faithfully:

1. :class:`ActivationObserver` — runs calibration batches through the
   float network and records the max-|activation| at every conv/linear
   output (the standard min/max observer, symmetric variant),
2. :class:`StaticQuantizedModel` — weights round-tripped through the int8
   codec, and every observed activation faked through
   ``clip(round(x / s), -127, 127) * s`` at inference time, so the forward
   pass produces exactly the values an int8 runtime's dequantized outputs
   would take,
3. :func:`int8_inference_report` — end-to-end damage assessment:
   float-vs-int8 prediction agreement, logit error, activation SQNR.

The simulation covers per-tensor symmetric quantization — what CMSIS-NN
supports on every Cortex-M — rather than per-channel scales.
"""

from __future__ import annotations

import types
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.errors import HardwareModelError
from repro.hardware.quantize import INT8_LEVELS, dequantize_array, quantize_array
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.module import Module

#: Module types whose outputs are observation/requantization points.
QUANTIZED_LEAF_TYPES = (Conv2d, Linear)


def fake_quantize(array: np.ndarray, scale: float) -> np.ndarray:
    """Round-trip an activation tensor through the int8 codec."""
    if scale <= 0:
        raise HardwareModelError("activation scale must be positive")
    codes = np.clip(np.round(array / scale), -INT8_LEVELS, INT8_LEVELS)
    return codes * scale


def _leaf_points(model: Module) -> List[Tuple[str, Module]]:
    """Every conv/linear in the tree, with its qualified name."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, QUANTIZED_LEAF_TYPES)
    ]


class ActivationObserver:
    """Records per-layer max-|activation| over calibration batches.

    Use as a context manager so the wrapped forwards are always restored::

        observer = ActivationObserver(model)
        with observer:
            model(Tensor(calibration_images))
        scales = observer.scales()
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.points = _leaf_points(model)
        if not self.points:
            raise HardwareModelError(
                "model has no conv/linear layers to observe"
            )
        self.peaks: Dict[str, float] = {name: 0.0 for name, _ in self.points}
        self._originals: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "ActivationObserver":
        for name, module in self.points:
            original = module.forward
            self._originals[name] = original

            def observed(mod_self, x, _original=original, _name=name):
                out = _original(x)
                peak = float(np.abs(out.data).max())
                if peak > self.peaks[_name]:
                    self.peaks[_name] = peak
                return out

            module.forward = types.MethodType(observed, module)
        return self

    def __exit__(self, *exc_info) -> None:
        for name, module in self.points:
            module.forward = self._originals.pop(name)

    # ------------------------------------------------------------------
    def observe(self, images: np.ndarray) -> None:
        """Run one calibration batch through the instrumented model."""
        if not self._originals:
            raise HardwareModelError(
                "observer not armed; use it as a context manager"
            )
        self.model.train(False)
        with no_grad():
            self.model(Tensor(images))

    def scales(self) -> Dict[str, float]:
        """Symmetric per-layer activation scales from the recorded peaks."""
        missing = [name for name, peak in self.peaks.items() if peak == 0.0]
        if missing:
            raise HardwareModelError(
                f"layers never activated during calibration: {missing[:3]}"
            )
        return {name: peak / INT8_LEVELS for name, peak in self.peaks.items()}


def calibrate(model: Module, images: np.ndarray,
              batch_size: int = 32) -> Dict[str, float]:
    """One-call calibration: observe activation ranges, return scales."""
    observer = ActivationObserver(model)
    with observer:
        for start in range(0, len(images), batch_size):
            observer.observe(images[start:start + batch_size])
    return observer.scales()


class StaticQuantizedModel(Module):
    """A float model executing with full static-int8 numerics.

    Weights are round-tripped through the int8 codec at construction;
    every conv/linear output is fake-quantized with its calibrated scale
    during forward.  The input is quantized with a scale derived from the
    calibration images, mirroring the runtime's input tensor scale.
    """

    def __init__(self, model: Module, activation_scales: Dict[str, float],
                 input_scale: float) -> None:
        super().__init__()
        if input_scale <= 0:
            raise HardwareModelError("input scale must be positive")
        self.model = model
        self.input_scale = input_scale
        self.weight_scales: Dict[str, float] = {}
        for name, param in model.named_parameters():
            codes, scale = quantize_array(param.data)
            param.data = dequantize_array(codes, scale)
            self.weight_scales[name] = scale
        self.activation_scales = dict(activation_scales)
        points = _leaf_points(model)
        missing = [name for name, _ in points
                   if name not in self.activation_scales]
        if missing:
            raise HardwareModelError(
                f"no activation scale for layers: {missing[:3]}"
            )
        for name, module in points:
            original = module.forward
            scale = self.activation_scales[name]

            def quantized(mod_self, x, _original=original, _scale=scale):
                out = _original(x)
                return Tensor(fake_quantize(out.data, _scale))

            module.forward = types.MethodType(quantized, module)

    def forward(self, x: Tensor) -> Tensor:
        quant_in = Tensor(fake_quantize(x.data, self.input_scale))
        return self.model(quant_in)


@dataclass(frozen=True)
class Int8InferenceReport:
    """Float-vs-int8 numerics over an evaluation set."""

    num_images: int
    prediction_agreement: float
    mean_abs_logit_error: float
    logit_sqnr_db: float
    num_quantized_layers: int

    def summary(self) -> str:
        return (
            f"int8 simulation over {self.num_images} images: "
            f"{self.prediction_agreement * 100:.1f} % prediction agreement, "
            f"logit SQNR {self.logit_sqnr_db:.1f} dB "
            f"({self.num_quantized_layers} quantized layers)"
        )


def int8_inference_report(
    float_model: Module,
    quantized_model: StaticQuantizedModel,
    images: np.ndarray,
    batch_size: int = 32,
) -> Int8InferenceReport:
    """Compare float and static-int8 inference on the same inputs."""
    float_model.train(False)
    quantized_model.train(False)
    float_logits: List[np.ndarray] = []
    quant_logits: List[np.ndarray] = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start:start + batch_size]
            float_logits.append(float_model(Tensor(batch)).data)
            quant_logits.append(quantized_model(Tensor(batch)).data)
    ref = np.concatenate(float_logits)
    quant = np.concatenate(quant_logits)
    agreement = float(np.mean(ref.argmax(axis=1) == quant.argmax(axis=1)))
    noise = float(((quant - ref) ** 2).mean())
    signal = float((ref**2).mean())
    sqnr = 10.0 * np.log10(signal / noise) if noise > 0 else float("inf")
    return Int8InferenceReport(
        num_images=len(images),
        prediction_agreement=agreement,
        mean_abs_logit_error=float(np.abs(quant - ref).mean()),
        logit_sqnr_db=float(sqnr),
        num_quantized_layers=len(quantized_model.activation_scales),
    )


def simulate_int8_inference(
    model_factory,
    calibration_images: np.ndarray,
    eval_images: np.ndarray,
    batch_size: int = 32,
) -> Tuple[Int8InferenceReport, StaticQuantizedModel]:
    """End-to-end static quantization of a freshly built model.

    ``model_factory`` must return a *new* float model per call (the float
    reference and the quantized copy need independent weights — they are
    built with the same factory so the weights match before quantization).
    """
    reference = model_factory()
    victim = model_factory()
    scales = calibrate(victim, calibration_images, batch_size=batch_size)
    input_scale = float(np.abs(calibration_images).max()) / INT8_LEVELS
    quantized = StaticQuantizedModel(victim, scales, input_scale)
    report = int8_inference_report(reference, quantized, eval_images,
                                   batch_size=batch_size)
    return report, quantized
