"""MCU hardware modelling (Section II-B-2 of the paper).

The paper profiles every candidate operation on an STM32 NUCLEO-F746ZG,
stores the measurements in a lookup table, and estimates a network's
latency as the sum of its layers' LUT entries plus a constant overhead.
We reproduce that pipeline end-to-end:

* :mod:`repro.hardware.device` — MCU descriptors (clock, SRAM, SIMD),
* :mod:`repro.hardware.costmodel` — a cycle-level Cortex-M cost model that
  plays the role of the physical board,
* :mod:`repro.hardware.layers` — symbolic layer enumeration of a genotype's
  deployment network,
* :mod:`repro.hardware.profiler` — the simulated on-device profiler that
  builds the latency LUT (with measurement jitter, median-of-N),
* :mod:`repro.hardware.latency` — the LUT-composition estimator and the
  whole-network ground truth it is validated against,
* :mod:`repro.hardware.memory` — peak-SRAM / flash estimation (the paper's
  §IV future-work extension),
* :mod:`repro.hardware.memplan` — static tensor-arena planning (buffer
  liveness + offset assignment, TFLite-Micro style),
* :mod:`repro.hardware.quantize` — int8 post-training quantization.
"""

from repro.hardware.device import (
    MCUDevice,
    NUCLEO_F411RE,
    NUCLEO_F746ZG,
    NUCLEO_H743ZI,
    NUCLEO_L432KC,
    RP2040_PICO,
    get_device,
    known_devices,
    register_device,
)
from repro.hardware.costmodel import CycleCostModel
from repro.hardware.layers import LayerOp, network_layers
from repro.hardware.profiler import LatencyLUT, OnDeviceProfiler
from repro.hardware.latency import LatencyEstimator, measure_ground_truth_ms
from repro.hardware.latency_models import (
    FlopsProportionalModel,
    LinearFeatureModel,
    LUTModel,
    ModelAccuracy,
    compare_models,
)
from repro.hardware.deploy import DeploymentReport, deployment_report
from repro.hardware.energy import (
    EnergyEstimator,
    EnergyReport,
    PowerProfile,
    power_profile,
)
from repro.hardware.graphopt import (
    OptimizationStats,
    optimization_stats,
    optimized_network_layers,
)
from repro.hardware.int8_infer import (
    ActivationObserver,
    Int8InferenceReport,
    StaticQuantizedModel,
    calibrate,
    int8_inference_report,
    simulate_int8_inference,
)
from repro.hardware.memory import MemoryEstimator, MemoryReport
from repro.hardware.memplan import (
    ArenaReport,
    BufferLifetime,
    MemoryPlan,
    arena_report,
    liveness_lower_bound,
    plan_memory,
    tensor_lifetimes,
)

__all__ = [
    "MCUDevice",
    "NUCLEO_F746ZG",
    "NUCLEO_F411RE",
    "NUCLEO_H743ZI",
    "NUCLEO_L432KC",
    "RP2040_PICO",
    "get_device",
    "known_devices",
    "register_device",
    "CycleCostModel",
    "LayerOp",
    "network_layers",
    "LatencyLUT",
    "OnDeviceProfiler",
    "LatencyEstimator",
    "measure_ground_truth_ms",
    "FlopsProportionalModel",
    "LinearFeatureModel",
    "LUTModel",
    "ModelAccuracy",
    "compare_models",
    "MemoryEstimator",
    "MemoryReport",
    "DeploymentReport",
    "deployment_report",
    "EnergyEstimator",
    "EnergyReport",
    "PowerProfile",
    "power_profile",
    "OptimizationStats",
    "optimization_stats",
    "optimized_network_layers",
    "ActivationObserver",
    "Int8InferenceReport",
    "StaticQuantizedModel",
    "calibrate",
    "int8_inference_report",
    "simulate_int8_inference",
    "ArenaReport",
    "BufferLifetime",
    "MemoryPlan",
    "arena_report",
    "liveness_lower_bound",
    "plan_memory",
    "tensor_lifetimes",
]
