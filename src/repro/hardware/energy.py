"""Per-inference energy and battery-life estimation.

The paper targets "low-power edge microcontroller units"; latency is its
headline hardware indicator, but the quantity a battery-powered deployment
ultimately pays is energy.  For MCUs the standard first-order model is

    E_inference = P_active · t_inference + E_wake

with the device otherwise asleep at ``P_sleep``.  Active power comes from
the board's datasheet (core + SRAM at the modelled clock); latency comes
from the package's LUT estimator, so the energy indicator inherits its
accuracy and can guide search exactly like latency does (it is a
monotone transform of latency per device, but *ranks differently across
devices* — a faster core at higher power can lose on energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import HardwareModelError
from repro.hardware.device import MCUDevice
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.genotype import Genotype

#: Datasheet-style active/sleep power figures (milliwatts) for the
#: built-in boards at their modelled clocks.  Sources: STM32 and RP2040
#: datasheet typical run-mode currents at 3.3 V (rounded).
BOARD_POWER_MW: Dict[str, Dict[str, float]] = {
    "nucleo-f746zg": {"active": 366.0, "sleep": 0.010, "wake_uj": 15.0},
    "nucleo-f411re": {"active": 120.0, "sleep": 0.006, "wake_uj": 8.0},
    "nucleo-h743zi": {"active": 710.0, "sleep": 0.012, "wake_uj": 20.0},
    "nucleo-l432kc": {"active": 26.0, "sleep": 0.003, "wake_uj": 4.0},
    "rp2040-pico": {"active": 90.0, "sleep": 0.005, "wake_uj": 6.0},
}


@dataclass(frozen=True)
class PowerProfile:
    """Electrical characteristics of one board."""

    active_mw: float
    sleep_mw: float
    wake_uj: float  # energy to leave and re-enter sleep, microjoules

    def __post_init__(self) -> None:
        if self.active_mw <= 0 or self.sleep_mw < 0 or self.wake_uj < 0:
            raise HardwareModelError("power figures must be non-negative "
                                     "(active strictly positive)")


def power_profile(device: MCUDevice) -> PowerProfile:
    """The built-in power profile for a registered board."""
    try:
        figures = BOARD_POWER_MW[device.name]
    except KeyError:
        raise HardwareModelError(
            f"no power profile for {device.name!r}; pass an explicit "
            f"PowerProfile"
        ) from None
    return PowerProfile(active_mw=figures["active"],
                        sleep_mw=figures["sleep"],
                        wake_uj=figures["wake_uj"])


@dataclass(frozen=True)
class EnergyReport:
    """Energy economics of one architecture on one board."""

    arch_str: str
    device_name: str
    latency_ms: float
    energy_per_inference_mj: float
    duty_cycle_hz: float
    average_power_mw: float
    battery_days: float

    def summary(self) -> str:
        return (
            f"{self.arch_str[:40]} on {self.device_name}: "
            f"{self.energy_per_inference_mj:.2f} mJ/inference, "
            f"{self.average_power_mw:.2f} mW avg @ "
            f"{self.duty_cycle_hz:g} Hz, "
            f"~{self.battery_days:.0f} days on the reference cell"
        )


class EnergyEstimator:
    """Energy-per-inference and duty-cycled battery life for one board.

    ``battery_mwh`` defaults to a CR123A-class primary cell (~4500 mWh).
    """

    def __init__(
        self,
        device: MCUDevice,
        estimator: Optional[LatencyEstimator] = None,
        profile: Optional[PowerProfile] = None,
        battery_mwh: float = 4500.0,
    ) -> None:
        if battery_mwh <= 0:
            raise HardwareModelError("battery capacity must be positive")
        self.device = device
        self.estimator = estimator or LatencyEstimator(device)
        self.profile = profile or power_profile(device)
        self.battery_mwh = battery_mwh

    # ------------------------------------------------------------------
    def energy_per_inference_mj(self, genotype: Genotype) -> float:
        """First-order active-energy cost of one inference."""
        latency_s = self.estimator.estimate_ms(genotype) / 1e3
        active_mj = self.profile.active_mw * latency_s
        return active_mj + self.profile.wake_uj / 1e3

    def average_power_mw(self, genotype: Genotype,
                         duty_cycle_hz: float) -> float:
        """Mean power when inferring ``duty_cycle_hz`` times per second."""
        if duty_cycle_hz <= 0:
            raise HardwareModelError("duty cycle must be positive")
        latency_s = self.estimator.estimate_ms(genotype) / 1e3
        period_s = 1.0 / duty_cycle_hz
        if latency_s > period_s:
            raise HardwareModelError(
                f"inference ({latency_s * 1e3:.0f} ms) cannot sustain "
                f"{duty_cycle_hz:g} Hz"
            )
        energy_mj = self.energy_per_inference_mj(genotype)
        sleep_mj = self.profile.sleep_mw * (period_s - latency_s)
        return (energy_mj + sleep_mj) / period_s

    def battery_days(self, genotype: Genotype,
                     duty_cycle_hz: float) -> float:
        """Runtime on the configured battery at a fixed inference rate."""
        power_mw = self.average_power_mw(genotype, duty_cycle_hz)
        hours = self.battery_mwh / power_mw
        return hours / 24.0

    def report(self, genotype: Genotype,
               duty_cycle_hz: float = 1.0) -> EnergyReport:
        """Everything at once for one (architecture, duty cycle)."""
        return EnergyReport(
            arch_str=genotype.to_arch_str(),
            device_name=self.device.name,
            latency_ms=self.estimator.estimate_ms(genotype),
            energy_per_inference_mj=self.energy_per_inference_mj(genotype),
            duty_cycle_hz=duty_cycle_hz,
            average_power_mw=self.average_power_mw(genotype, duty_cycle_hz),
            battery_days=self.battery_days(genotype, duty_cycle_hz),
        )
