"""Peak-memory estimation (the paper's §IV future-work extension).

MCU deployment is gated by two budgets:

* **SRAM** — peak live activation bytes during inference.  We schedule the
  cell DAG topologically and track which node buffers are live at each
  kernel, including the im2col scratch of the running convolution.
* **Flash** — weights plus a code/runtime footprint.

Estimates assume float32 activations/weights (``element_bytes=4``);
``element_bytes=1`` models an int8-quantised deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.proxies.flops import count_params
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CONV_KERNEL, EDGES, NUM_NODES


@dataclass(frozen=True)
class MemoryReport:
    """Peak memory demands of one architecture."""

    peak_sram_bytes: int
    flash_bytes: int
    params: int

    def fits(self, sram_bytes: int, flash_bytes: int) -> bool:
        return (self.peak_sram_bytes <= sram_bytes
                and self.flash_bytes <= flash_bytes)


class MemoryEstimator:
    """Estimates peak SRAM and flash for genotypes at a macro config."""

    def __init__(self, config: Optional[MacroConfig] = None,
                 element_bytes: int = 4, code_bytes: int = 120 * 1024) -> None:
        self.config = config or MacroConfig.full()
        self.element_bytes = element_bytes
        self.code_bytes = code_bytes

    # ------------------------------------------------------------------
    def _buffer_bytes(self, channels: int, size: int) -> int:
        return channels * size * size * self.element_bytes

    def _cell_peak(self, genotype: Genotype, channels: int, size: int) -> int:
        """Peak live bytes while executing one cell.

        Node buffers: a node's accumulator is allocated when its first
        incoming edge executes and freed after its last consumer edge.
        Edges execute in canonical order; conv edges additionally hold an
        im2col patch buffer while running.
        """
        buffer = self._buffer_bytes(channels, size)
        last_use = [0] * NUM_NODES  # edge index after which a node is dead
        first_def = [None] * NUM_NODES
        active_edges = [
            (idx, src, dst)
            for idx, (src, dst) in enumerate(EDGES)
            if genotype.ops[idx] != "none"
        ]
        if not active_edges:
            return buffer  # degenerate: only the input buffer exists
        for idx, src, dst in active_edges:
            last_use[src] = idx
            if first_def[dst] is None:
                first_def[dst] = idx
        last_use[3] = active_edges[-1][0]  # output survives the cell
        peak = 0
        for idx, src, dst in active_edges:
            live = 0
            for node in range(NUM_NODES):
                defined = (node == 0) or (
                    first_def[node] is not None and first_def[node] <= idx
                )
                alive = defined and (last_use[node] >= idx or node == 3)
                if alive:
                    live += buffer
            op = genotype.ops[idx]
            if op in CONV_KERNEL and CONV_KERNEL[op] > 1:
                kernel = CONV_KERNEL[op]
                live += channels * kernel * kernel * size * self.element_bytes
            peak = max(peak, live)
        return peak

    def report(self, genotype: Genotype) -> MemoryReport:
        """Peak SRAM / flash for one genotype."""
        config = self.config
        channels = config.stage_channels
        sizes = config.stage_sizes
        # Stem: input image + output feature map.
        peak = (self._buffer_bytes(config.input_channels, config.image_size)
                + self._buffer_bytes(channels[0], config.image_size))
        for c, s in zip(channels, sizes):
            peak = max(peak, self._cell_peak(genotype, c, s))
        # Reduction blocks: input + both conv outputs + shortcut buffer.
        for stage in (1, 2):
            c_in, c_out, out = channels[stage - 1], channels[stage], sizes[stage]
            block = (self._buffer_bytes(c_in, out * 2)
                     + 2 * self._buffer_bytes(c_out, out))
            peak = max(peak, block)
        params = count_params(genotype, config)
        flash = params * self.element_bytes + self.code_bytes
        return MemoryReport(peak_sram_bytes=int(peak), flash_bytes=int(flash),
                            params=params)

    def peak_sram_bytes(self, genotype: Genotype) -> int:
        return self.report(genotype).peak_sram_bytes
