"""Static tensor-arena planning: buffer liveness and offset assignment.

:class:`~repro.hardware.memory.MemoryEstimator` answers "what peak SRAM
does this architecture *need*?".  This module answers the deployment-side
question an MCU runtime (TFLite-Micro style) actually solves: lay every
intermediate tensor out in one static arena so that buffers whose
lifetimes overlap never share bytes, and make the arena as small as
possible.

Pipeline:

* :func:`tensor_lifetimes` — walk a genotype's deployment network and
  emit one :class:`BufferLifetime` per intermediate tensor (node
  accumulators, reduction temporaries, im2col scratch), with birth and
  death expressed in kernel-execution steps,
* :func:`plan_memory` — assign byte offsets under a strategy:
  ``no_reuse`` (every tensor gets private storage — the upper bound),
  ``first_fit`` (execution order, lowest non-conflicting offset) or
  ``greedy_by_size`` (largest tensors first — the TFLite-Micro planner),
* :func:`liveness_lower_bound` — max live bytes over steps; no valid plan
  can beat it,
* :func:`arena_report` — all of the above for one architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HardwareModelError
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CONV_KERNEL, EDGES, NUM_NODES

PLANNING_STRATEGIES = ("no_reuse", "first_fit", "greedy_by_size")


@dataclass(frozen=True)
class BufferLifetime:
    """One intermediate tensor: its size and its live step interval.

    A buffer is live on every step in ``[start, end]`` inclusive: it is
    written at ``start`` (or enters the network there, for the input) and
    last read at ``end``.
    """

    name: str
    size_bytes: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise HardwareModelError(f"buffer {self.name!r} has no bytes")
        if self.end < self.start:
            raise HardwareModelError(
                f"buffer {self.name!r} dies before it is born"
            )

    def overlaps_in_time(self, other: "BufferLifetime") -> bool:
        return self.start <= other.end and other.start <= self.end


class _NetworkWalker:
    """Emits buffer lifetimes while symbolically executing the network."""

    def __init__(self, element_bytes: int) -> None:
        self.element_bytes = element_bytes
        self.step = 0
        self.buffers: List[BufferLifetime] = []
        self._open: Dict[str, Tuple[int, int, int]] = {}  # name -> (size, start, last_use)

    def _tensor_bytes(self, channels: int, size: int) -> int:
        return channels * size * size * self.element_bytes

    def open_buffer(self, name: str, size_bytes: int) -> None:
        if name in self._open:
            raise HardwareModelError(f"buffer {name!r} opened twice")
        self._open[name] = (size_bytes, self.step, self.step)

    def touch(self, name: str) -> None:
        size, start, _ = self._open[name]
        self._open[name] = (size, start, self.step)

    def close_buffer(self, name: str) -> None:
        size, start, last = self._open.pop(name)
        self.buffers.append(BufferLifetime(name, size, start, last))

    def scratch(self, name: str, size_bytes: int) -> None:
        """A buffer that lives only for the current step (im2col patch)."""
        self.buffers.append(BufferLifetime(name, size_bytes, self.step, self.step))

    def advance(self) -> None:
        self.step += 1

    def finish(self) -> List[BufferLifetime]:
        for name in list(self._open):
            self.close_buffer(name)
        return sorted(self.buffers, key=lambda b: (b.start, b.name))


def _walk_cell(walker: _NetworkWalker, genotype: Genotype, channels: int,
               size: int, input_name: str, prefix: str) -> str:
    """Execute one cell; returns the name of its output buffer (node 3)."""
    node_names = {0: input_name}
    active = [
        (idx, src, dst)
        for idx, (src, dst) in enumerate(EDGES)
        if genotype.ops[idx] != "none"
    ]
    incoming = [0] * NUM_NODES
    for _, _, dst in active:
        incoming[dst] += 1
    # The cell output: nodes with no incoming edges pass nothing; a fully
    # disconnected cell degenerates to its input buffer.
    if incoming[3] == 0:
        return input_name
    for idx, src, dst in active:
        op = genotype.ops[idx]
        src_name = node_names.get(src)
        if src_name is None:
            # Source node never received an edge: contributes zeros; the
            # runtime skips the kernel, no buffer traffic.
            continue
        dst_name = f"{prefix}/node{dst}"
        if dst not in node_names:
            walker.open_buffer(dst_name, walker._tensor_bytes(channels, size))
            node_names[dst] = dst_name
        walker.touch(src_name)
        walker.touch(dst_name)
        if op in CONV_KERNEL and CONV_KERNEL[op] > 1:
            kernel = CONV_KERNEL[op]
            # CMSIS-NN streams im2col one output row at a time, so the
            # scratch holds a row of patches, not the full patch matrix
            # (same convention as MemoryEstimator).
            walker.scratch(
                f"{prefix}/e{idx}-im2col",
                channels * kernel * kernel * size * walker.element_bytes,
            )
        walker.advance()
    output = node_names.get(3)
    if output is None:
        # Every path into the output node came from dead interior nodes:
        # the cell contributes zeros and no kernel ran, so downstream
        # reuses the input buffer.
        for node in (1, 2):
            name = node_names.get(node)
            if name is not None and name in walker._open:
                walker.close_buffer(name)
        return input_name
    # Close internal accumulators; the output buffer stays open for the
    # next block to consume.
    for node in (1, 2):
        name = node_names.get(node)
        if name is not None:
            walker.close_buffer(name)
    if input_name in walker._open:
        walker.close_buffer(input_name)
    return output


def _walk_reduction(walker: _NetworkWalker, c_in: int, c_out: int,
                    out_size: int, input_name: str, prefix: str) -> str:
    """The inter-stage residual block; returns its output buffer name."""
    main1 = f"{prefix}/main1"
    walker.open_buffer(main1, walker._tensor_bytes(c_out, out_size))
    walker.touch(input_name)
    walker.scratch(f"{prefix}/main1-im2col",
                   c_in * 9 * out_size * walker.element_bytes)
    walker.advance()

    main2 = f"{prefix}/main2"
    walker.open_buffer(main2, walker._tensor_bytes(c_out, out_size))
    walker.touch(main1)
    walker.scratch(f"{prefix}/main2-im2col",
                   c_out * 9 * out_size * walker.element_bytes)
    walker.advance()
    walker.close_buffer(main1)

    pooled = f"{prefix}/pool"
    walker.open_buffer(pooled, walker._tensor_bytes(c_in, out_size))
    walker.touch(input_name)
    walker.advance()
    walker.close_buffer(input_name)

    shortcut = f"{prefix}/shortcut"
    walker.open_buffer(shortcut, walker._tensor_bytes(c_out, out_size))
    walker.touch(pooled)
    walker.advance()
    walker.close_buffer(pooled)

    # In-place accumulate: main2 += shortcut.
    walker.touch(main2)
    walker.touch(shortcut)
    walker.advance()
    walker.close_buffer(shortcut)
    return main2


def tensor_lifetimes(
    genotype: Genotype,
    config: Optional[MacroConfig] = None,
    element_bytes: int = 4,
) -> List[BufferLifetime]:
    """Every intermediate tensor of the deployment network, with liveness."""
    if element_bytes <= 0:
        raise HardwareModelError("element_bytes must be positive")
    config = config or MacroConfig.full()
    walker = _NetworkWalker(element_bytes)
    channels = config.stage_channels
    sizes = config.stage_sizes

    walker.open_buffer("input", walker._tensor_bytes(
        config.input_channels, config.image_size))
    current = "stem"
    walker.open_buffer(current, walker._tensor_bytes(channels[0], config.image_size))
    walker.touch("input")
    walker.scratch("stem-im2col",
                   config.input_channels * 9 * config.image_size
                   * walker.element_bytes)
    walker.advance()
    walker.close_buffer("input")

    for stage in range(3):
        if stage > 0:
            current = _walk_reduction(
                walker, channels[stage - 1], channels[stage], sizes[stage],
                current, f"s{stage}/reduce",
            )
        for cell_idx in range(config.cells_per_stage):
            current = _walk_cell(
                walker, genotype, channels[stage], sizes[stage],
                current, f"s{stage}/c{cell_idx}",
            )

    pooled = "gap"
    walker.open_buffer(pooled, channels[2] * walker.element_bytes)
    walker.touch(current)
    walker.advance()
    if current in walker._open:
        walker.close_buffer(current)
    logits = "logits"
    walker.open_buffer(logits, config.num_classes * walker.element_bytes)
    walker.touch(pooled)
    walker.advance()
    walker.close_buffer(pooled)
    walker.close_buffer(logits)
    return walker.finish()


# ----------------------------------------------------------------------
# Offset assignment
# ----------------------------------------------------------------------
@dataclass
class MemoryPlan:
    """A complete arena layout: one byte offset per buffer."""

    strategy: str
    offsets: Dict[str, int]
    arena_bytes: int
    lifetimes: List[BufferLifetime] = field(repr=False, default_factory=list)

    def validate(self) -> None:
        """Raise if any two live-at-once buffers share bytes."""
        missing = [b.name for b in self.lifetimes
                   if b.name not in self.offsets]
        if missing:
            raise HardwareModelError(
                f"buffers never placed in the arena: {missing}")
        placed = [(b, self.offsets[b.name]) for b in self.lifetimes]
        for i, (a, off_a) in enumerate(placed):
            if off_a < 0 or off_a + a.size_bytes > self.arena_bytes:
                raise HardwareModelError(
                    f"buffer {a.name!r} escapes the arena"
                )
            for b, off_b in placed[i + 1:]:
                if not a.overlaps_in_time(b):
                    continue
                if off_a < off_b + b.size_bytes and off_b < off_a + a.size_bytes:
                    raise HardwareModelError(
                        f"buffers {a.name!r} and {b.name!r} overlap in both "
                        f"time and space"
                    )

    @property
    def num_buffers(self) -> int:
        return len(self.lifetimes)


def liveness_lower_bound(lifetimes: List[BufferLifetime]) -> int:
    """Max over steps of the live-byte total — unbeatable by any plan."""
    if not lifetimes:
        return 0
    last_step = max(b.end for b in lifetimes)
    peak = 0
    for step in range(last_step + 1):
        live = sum(b.size_bytes for b in lifetimes
                   if b.start <= step <= b.end)
        peak = max(peak, live)
    return peak


def _place_first_fit(ordered: List[BufferLifetime]) -> Dict[str, int]:
    """Lowest non-conflicting offset per buffer, in the given order."""
    placed: List[Tuple[BufferLifetime, int]] = []
    offsets: Dict[str, int] = {}
    for buf in ordered:
        conflicts = sorted(
            (off, off + other.size_bytes)
            for other, off in placed
            if other.overlaps_in_time(buf)
        )
        offset = 0
        for lo, hi in conflicts:
            if offset + buf.size_bytes <= lo:
                break
            offset = max(offset, hi)
        offsets[buf.name] = offset
        placed.append((buf, offset))
    return offsets


def plan_memory(
    lifetimes: List[BufferLifetime],
    strategy: str = "greedy_by_size",
) -> MemoryPlan:
    """Assign arena offsets to every buffer under one strategy."""
    if strategy not in PLANNING_STRATEGIES:
        raise HardwareModelError(
            f"unknown strategy {strategy!r}; choose from {PLANNING_STRATEGIES}"
        )
    if strategy == "no_reuse":
        offsets = {}
        cursor = 0
        for buf in lifetimes:
            offsets[buf.name] = cursor
            cursor += buf.size_bytes
    elif strategy == "first_fit":
        ordered = sorted(lifetimes, key=lambda b: (b.start, -b.size_bytes))
        offsets = _place_first_fit(ordered)
    else:  # greedy_by_size
        ordered = sorted(lifetimes, key=lambda b: (-b.size_bytes, b.start))
        offsets = _place_first_fit(ordered)
    arena = max(
        (offsets[b.name] + b.size_bytes for b in lifetimes), default=0
    )
    plan = MemoryPlan(strategy=strategy, offsets=offsets, arena_bytes=arena,
                      lifetimes=list(lifetimes))
    plan.validate()
    return plan


@dataclass(frozen=True)
class ArenaReport:
    """Planner comparison for one architecture."""

    num_buffers: int
    lower_bound_bytes: int
    no_reuse_bytes: int
    first_fit_bytes: int
    greedy_by_size_bytes: int

    @property
    def best_bytes(self) -> int:
        return min(self.first_fit_bytes, self.greedy_by_size_bytes)

    @property
    def reuse_saving(self) -> float:
        """Fraction of arena saved by reuse vs private storage."""
        if self.no_reuse_bytes == 0:
            return 0.0
        return 1.0 - self.best_bytes / self.no_reuse_bytes

    @property
    def gap_to_lower_bound(self) -> float:
        """How far the best plan sits above the liveness bound."""
        if self.lower_bound_bytes == 0:
            return 0.0
        return self.best_bytes / self.lower_bound_bytes - 1.0


def arena_report(
    genotype: Genotype,
    config: Optional[MacroConfig] = None,
    element_bytes: int = 4,
) -> ArenaReport:
    """Run every planning strategy on one architecture."""
    lifetimes = tensor_lifetimes(genotype, config, element_bytes)
    return ArenaReport(
        num_buffers=len(lifetimes),
        lower_bound_bytes=liveness_lower_bound(lifetimes),
        no_reuse_bytes=plan_memory(lifetimes, "no_reuse").arena_bytes,
        first_fit_bytes=plan_memory(lifetimes, "first_fit").arena_bytes,
        greedy_by_size_bytes=plan_memory(lifetimes, "greedy_by_size").arena_bytes,
    )
