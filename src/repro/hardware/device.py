"""MCU device descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class MCUDevice:
    """Static description of a microcontroller inference target.

    The timing-relevant fields parameterise :class:`CycleCostModel`:

    * ``cycles_per_mac`` — effective cycles per multiply-accumulate for a
      well-utilised convolution inner loop (CMSIS-NN-style kernels),
    * ``simd_width`` — MAC lanes per instruction; channel counts that are
      not multiples of this waste lanes,
    * ``layer_overhead_cycles`` — per-layer invocation cost (tensor
      bookkeeping, function call, kernel dispatch),
    * ``fast_memory_bytes`` — DTCM/cache working-set size; layers whose
      working set spills beyond it pay ``spill_penalty`` extra cycles per
      access-heavy operation.
    """

    name: str
    core: str
    clock_hz: float
    sram_bytes: int
    flash_bytes: int
    cycles_per_mac: float = 1.2
    simd_width: int = 2
    layer_overhead_cycles: int = 6_000
    network_overhead_cycles: int = 150_000
    fast_memory_bytes: int = 64 * 1024
    spill_penalty: float = 0.35
    #: Effective cycles per MAC for int8 CMSIS-NN-style kernels (packed
    #: SMLAD on DSP-extension cores; plain single-cycle integer multiply
    #: on the M0+).  ``None`` falls back to half the float cost.
    int8_cycles_per_mac: Optional[float] = None

    def mac_cycles(self, precision: str = "float32") -> float:
        """Cycles per multiply-accumulate at a given precision."""
        if precision == "float32":
            return self.cycles_per_mac
        if precision == "int8":
            if self.int8_cycles_per_mac is not None:
                return self.int8_cycles_per_mac
            return self.cycles_per_mac / 2.0
        raise ValueError(f"unknown precision {precision!r}")

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count into milliseconds on this device."""
        return 1e3 * cycles / self.clock_hz

    def ms_to_cycles(self, ms: float) -> float:
        return ms * self.clock_hz / 1e3


#: The paper's evaluation board: STM32 NUCLEO-F746ZG (Cortex-M7 @ 216 MHz,
#: 320 KB SRAM, 1 MB flash, 64 KB DTCM, dual-issue MAC).
NUCLEO_F746ZG = MCUDevice(
    name="nucleo-f746zg",
    core="cortex-m7",
    clock_hz=216e6,
    sram_bytes=320 * 1024,
    flash_bytes=1024 * 1024,
    cycles_per_mac=1.2,
    simd_width=2,
    layer_overhead_cycles=6_000,
    network_overhead_cycles=150_000,
    fast_memory_bytes=64 * 1024,
    spill_penalty=0.35,
    int8_cycles_per_mac=0.6,
)

#: A weaker Cortex-M4 target used to exercise "other edge devices"
#: (paper §IV): slower clock, no dual-issue MAC, smaller memories.
NUCLEO_F411RE = MCUDevice(
    name="nucleo-f411re",
    core="cortex-m4",
    clock_hz=100e6,
    sram_bytes=128 * 1024,
    flash_bytes=512 * 1024,
    cycles_per_mac=1.9,
    simd_width=1,
    layer_overhead_cycles=8_000,
    network_overhead_cycles=180_000,
    fast_memory_bytes=16 * 1024,
    spill_penalty=0.55,
    int8_cycles_per_mac=1.0,
)

#: A high-end Cortex-M7: the F746ZG's bigger sibling (STM32H743 class).
#: Twice the clock, large tightly-coupled memories, generous flash.
NUCLEO_H743ZI = MCUDevice(
    name="nucleo-h743zi",
    core="cortex-m7",
    clock_hz=480e6,
    sram_bytes=1024 * 1024,
    flash_bytes=2 * 1024 * 1024,
    cycles_per_mac=1.1,
    simd_width=2,
    layer_overhead_cycles=5_000,
    network_overhead_cycles=120_000,
    fast_memory_bytes=128 * 1024,
    spill_penalty=0.25,
    int8_cycles_per_mac=0.55,
)

#: A low-power Cortex-M4 (STM32L432KC class): tiny memories, slow clock —
#: the regime where the secondary-stage search has to shrink hard.
NUCLEO_L432KC = MCUDevice(
    name="nucleo-l432kc",
    core="cortex-m4",
    clock_hz=80e6,
    sram_bytes=64 * 1024,
    flash_bytes=256 * 1024,
    cycles_per_mac=1.9,
    simd_width=1,
    layer_overhead_cycles=9_000,
    network_overhead_cycles=200_000,
    fast_memory_bytes=16 * 1024,
    spill_penalty=0.55,
    int8_cycles_per_mac=1.0,
)

#: A Cortex-M0+ (RP2040 class): no FPU, so float MACs run in software —
#: an order of magnitude more cycles per MAC.  The extreme point of the
#: paper's "other edge devices" generalisation.
RP2040_PICO = MCUDevice(
    name="rp2040-pico",
    core="cortex-m0plus",
    clock_hz=133e6,
    sram_bytes=264 * 1024,
    flash_bytes=2 * 1024 * 1024,
    cycles_per_mac=16.0,
    simd_width=1,
    layer_overhead_cycles=12_000,
    network_overhead_cycles=250_000,
    fast_memory_bytes=264 * 1024,  # single flat SRAM: nothing spills
    spill_penalty=0.0,
    int8_cycles_per_mac=4.0,
)

_DEVICES: Dict[str, MCUDevice] = {
    NUCLEO_F746ZG.name: NUCLEO_F746ZG,
    NUCLEO_F411RE.name: NUCLEO_F411RE,
    NUCLEO_H743ZI.name: NUCLEO_H743ZI,
    NUCLEO_L432KC.name: NUCLEO_L432KC,
    RP2040_PICO.name: RP2040_PICO,
}


def known_devices() -> Dict[str, MCUDevice]:
    """Registry of built-in device descriptors (copy; safe to mutate)."""
    return dict(_DEVICES)


def get_device(name: str) -> MCUDevice:
    """Look up a registered device by name."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; registered: {sorted(_DEVICES)}"
        ) from None


def register_device(device: MCUDevice, replace: bool = False) -> None:
    """Add a user-defined board to the registry.

    Refuses to overwrite an existing entry unless ``replace=True`` — the
    registry is global state shared by CLI and benchmarks.
    """
    if device.name in _DEVICES and not replace:
        raise ValueError(
            f"device {device.name!r} already registered; pass replace=True"
        )
    _DEVICES[device.name] = device
