"""Symbolic layer enumeration of a genotype's deployment network.

Both the latency ground truth and the LUT estimator work over the same
list of :class:`LayerOp` descriptors, so they agree on *what* executes and
differ only in *how* each layer's time is obtained (exact cycle model vs
profiled lookup table).

Deployment-graph conventions (mirroring an optimising MCU runtime):

* ``none`` edges are removed — they execute nothing,
* BatchNorm is folded into the preceding convolution (zero runtime cost),
* each cell node with ``k`` incoming non-none edges costs ``k - 1``
  elementwise-add kernels,
* ``skip_connect`` is a buffer copy (it cannot always be aliased because
  the destination accumulates multiple edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CONV_KERNEL, EDGES, NUM_NODES


@dataclass(frozen=True)
class LayerOp:
    """One runtime kernel invocation.

    ``kind`` is one of ``conv``, ``pool``, ``add``, ``copy``, ``linear``,
    ``gap`` (global average pool).  Shapes describe the *output* feature
    map except for ``copy``/``add`` where input and output agree.
    """

    kind: str
    c_in: int
    c_out: int
    height: int
    width: int
    kernel: int = 1
    stride: int = 1

    @property
    def key(self) -> Tuple:
        """Hashable LUT key."""
        return (self.kind, self.c_in, self.c_out, self.height, self.width,
                self.kernel, self.stride)

    @property
    def out_elements(self) -> int:
        return self.c_out * self.height * self.width

    @property
    def macs(self) -> int:
        if self.kind == "conv":
            return self.c_in * self.c_out * self.kernel**2 * self.height * self.width
        if self.kind == "linear":
            return self.c_in * self.c_out
        return 0


def op_layer(op_name: str, channels: int, size: int) -> Optional[LayerOp]:
    """The kernel a single cell operation executes (None for ``none``)."""
    if op_name == "none":
        return None
    if op_name in CONV_KERNEL:
        return LayerOp("conv", channels, channels, size, size,
                       kernel=CONV_KERNEL[op_name])
    if op_name == "avg_pool_3x3":
        return LayerOp("pool", channels, channels, size, size, kernel=3)
    if op_name == "skip_connect":
        return LayerOp("copy", channels, channels, size, size)
    raise ValueError(f"unknown operation {op_name!r}")


def _cell_layers(genotype: Genotype, channels: int, size: int) -> List[LayerOp]:
    """Kernel sequence of one cell at a given width/resolution."""
    layers: List[LayerOp] = []
    incoming_count = [0] * NUM_NODES
    for edge_idx, (src, dst) in enumerate(EDGES):
        op = genotype.ops[edge_idx]
        if op == "none":
            continue
        incoming_count[dst] += 1
        if op in CONV_KERNEL:
            layers.append(LayerOp("conv", channels, channels, size, size,
                                  kernel=CONV_KERNEL[op]))
        elif op == "avg_pool_3x3":
            layers.append(LayerOp("pool", channels, channels, size, size, kernel=3))
        elif op == "skip_connect":
            layers.append(LayerOp("copy", channels, channels, size, size))
    for node in range(1, NUM_NODES):
        extra = max(0, incoming_count[node] - 1)
        for _ in range(extra):
            layers.append(LayerOp("add", channels, channels, size, size))
    return layers


def _reduction_layers(c_in: int, c_out: int, out_size: int) -> List[LayerOp]:
    return [
        LayerOp("conv", c_in, c_out, out_size, out_size, kernel=3, stride=2),
        LayerOp("conv", c_out, c_out, out_size, out_size, kernel=3, stride=1),
        LayerOp("pool", c_in, c_in, out_size, out_size, kernel=2, stride=2),
        LayerOp("conv", c_in, c_out, out_size, out_size, kernel=1, stride=1),
        LayerOp("add", c_out, c_out, out_size, out_size),
    ]


def network_layers(genotype: Genotype, config: Optional[MacroConfig] = None) -> List[LayerOp]:
    """Every kernel invocation of the deployment network, in order."""
    config = config or MacroConfig.full()
    channels = config.stage_channels
    sizes = config.stage_sizes
    layers: List[LayerOp] = [
        LayerOp("conv", config.input_channels, channels[0],
                config.image_size, config.image_size, kernel=3)
    ]
    for stage in range(3):
        if stage > 0:
            layers.extend(
                _reduction_layers(channels[stage - 1], channels[stage], sizes[stage])
            )
        cell = _cell_layers(genotype, channels[stage], sizes[stage])
        for _ in range(config.cells_per_stage):
            layers.extend(cell)
    layers.append(LayerOp("gap", channels[2], channels[2], sizes[2], sizes[2]))
    layers.append(LayerOp("linear", channels[2], config.num_classes, 1, 1))
    return layers
