"""The simulated on-device profiler and latency lookup table.

The paper: "profiling each operation individually within the search space
and generating a reference lookup table ... constant hardware latency
overhead is profiled and incorporated".  We reproduce that measurement
pipeline against the cycle model: each op is "run" ``repetitions`` times
with multiplicative measurement jitter, and the median lands in the LUT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import HardwareModelError
from repro.hardware.costmodel import CycleCostModel
from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.layers import LayerOp, network_layers
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS, CONV_KERNEL
from repro.utils.rng import new_rng, stable_seed


@dataclass
class LatencyLUT:
    """Per-layer latency table in milliseconds, plus the constant overhead."""

    device_name: str
    entries: Dict[Tuple, float] = field(default_factory=dict)
    network_overhead_ms: float = 0.0

    def lookup(self, layer: LayerOp) -> float:
        try:
            return self.entries[layer.key]
        except KeyError:
            raise HardwareModelError(
                f"latency LUT for {self.device_name!r} has no entry for "
                f"{layer.key}; re-profile with a macro config covering it"
            ) from None

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, layer: LayerOp) -> bool:
        return layer.key in self.entries

    # ------------------------------------------------------------------
    # Persistence — board profiling is expensive; LUTs are reusable.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form (tuple keys become lists)."""
        return {
            "device_name": self.device_name,
            "network_overhead_ms": self.network_overhead_ms,
            "entries": [
                {"key": list(key), "ms": ms}
                for key, ms in sorted(self.entries.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LatencyLUT":
        entries = {}
        for item in payload["entries"]:
            kind, *rest = item["key"]
            entries[(str(kind), *map(int, rest))] = float(item["ms"])
        return cls(
            device_name=str(payload["device_name"]),
            entries=entries,
            network_overhead_ms=float(payload["network_overhead_ms"]),
        )

    def save_json(self, path: str) -> None:
        """Persist the profile so a board need only be measured once."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load_json(cls, path: str) -> "LatencyLUT":
        import json

        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class OnDeviceProfiler:
    """Builds a :class:`LatencyLUT` by measuring ops one at a time.

    ``jitter_sigma`` models run-to-run measurement noise on a real board
    (interrupts, flash wait states); the profiler takes the median of
    ``repetitions`` runs, as the paper's methodology implies.
    """

    def __init__(
        self,
        device: MCUDevice = NUCLEO_F746ZG,
        cost_model: Optional[CycleCostModel] = None,
        repetitions: int = 11,
        jitter_sigma: float = 0.005,
        seed: int = 0,
        precision: str = "float32",
    ) -> None:
        if repetitions < 1:
            raise HardwareModelError("repetitions must be >= 1")
        self.device = device
        self.cost_model = cost_model or CycleCostModel(device, precision=precision)
        self.repetitions = repetitions
        self.jitter_sigma = jitter_sigma
        self.seed = seed

    @property
    def precision(self) -> str:
        """Kernel precision the underlying cost model measures."""
        return self.cost_model.precision

    # ------------------------------------------------------------------
    # Single-op measurement
    # ------------------------------------------------------------------
    def _seed_parts(self) -> tuple:
        # float32 keeps the historical seed stream; other precisions get
        # their own independent measurement noise.
        if self.precision == "float32":
            return ()
        return (self.precision,)

    def measure_layer_ms(self, layer: LayerOp) -> float:
        """Median of jittered 'on-board' runs of one kernel."""
        true_ms = self.cost_model.layer_ms(layer)
        rng = new_rng(stable_seed("profile", self.device.name, self.seed,
                                  layer.key, *self._seed_parts()))
        runs = true_ms * (1.0 + self.jitter_sigma * rng.normal(size=self.repetitions))
        return float(np.median(runs))

    def measure_network_overhead_ms(self) -> float:
        """Profiled constant overhead (runtime init, tensor arena setup)."""
        true_ms = self.device.cycles_to_ms(self.device.network_overhead_cycles)
        rng = new_rng(stable_seed("overhead", self.device.name, self.seed,
                                  *self._seed_parts()))
        runs = true_ms * (1.0 + self.jitter_sigma * rng.normal(size=self.repetitions))
        return float(np.median(runs))

    # ------------------------------------------------------------------
    # LUT construction
    # ------------------------------------------------------------------
    def _coverage_layers(self, config: MacroConfig) -> List[LayerOp]:
        """Every layer descriptor any genotype can produce at this config."""
        layers: List[LayerOp] = []
        channels = config.stage_channels
        sizes = config.stage_sizes
        layers.append(
            LayerOp("conv", config.input_channels, channels[0],
                    config.image_size, config.image_size, kernel=3)
        )
        for c, s in zip(channels, sizes):
            for op in CANDIDATE_OPS:
                if op in CONV_KERNEL:
                    layers.append(LayerOp("conv", c, c, s, s, kernel=CONV_KERNEL[op]))
                elif op == "avg_pool_3x3":
                    layers.append(LayerOp("pool", c, c, s, s, kernel=3))
                elif op == "skip_connect":
                    layers.append(LayerOp("copy", c, c, s, s))
            layers.append(LayerOp("add", c, c, s, s))
        for stage in (1, 2):
            c_in, c_out, out_size = channels[stage - 1], channels[stage], sizes[stage]
            layers.append(LayerOp("conv", c_in, c_out, out_size, out_size, kernel=3, stride=2))
            layers.append(LayerOp("conv", c_out, c_out, out_size, out_size, kernel=3, stride=1))
            layers.append(LayerOp("pool", c_in, c_in, out_size, out_size, kernel=2, stride=2))
            layers.append(LayerOp("conv", c_in, c_out, out_size, out_size, kernel=1, stride=1))
            layers.append(LayerOp("add", c_out, c_out, out_size, out_size))
        layers.append(LayerOp("gap", channels[2], channels[2], sizes[2], sizes[2]))
        layers.append(LayerOp("linear", channels[2], config.num_classes, 1, 1))
        return layers

    def build_lut(self, config: Optional[MacroConfig] = None,
                  extra_layers: Iterable[LayerOp] = ()) -> LatencyLUT:
        """Profile the full op/shape grid of a macro config into a LUT."""
        config = config or MacroConfig.full()
        lut = LatencyLUT(device_name=self.device.name)
        for layer in list(self._coverage_layers(config)) + list(extra_layers):
            if layer.key not in lut.entries:
                lut.entries[layer.key] = self.measure_layer_ms(layer)
        lut.network_overhead_ms = self.measure_network_overhead_ms()
        return lut

    def profile_network_ms(self, genotype: Genotype,
                           config: Optional[MacroConfig] = None) -> float:
        """A full on-board run of one network (the validation ground truth).

        Unlike LUT composition this includes inter-layer transition stalls,
        so it is what :class:`LatencyEstimator` accuracy is measured against.
        """
        config = config or MacroConfig.full()
        layers = network_layers(genotype, config)
        cycles = self.cost_model.network_cycles(layers, include_transition_stalls=True)
        true_ms = self.device.cycles_to_ms(cycles)
        rng = new_rng(stable_seed("netrun", self.device.name, self.seed,
                                  genotype.to_index(), *self._seed_parts()))
        runs = true_ms * (1.0 + self.jitter_sigma * rng.normal(size=self.repetitions))
        return float(np.median(runs))
