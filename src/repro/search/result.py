"""Search-outcome container shared by every algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.searchspace.genotype import Genotype
from repro.utils.timing import CostLedger


@dataclass
class SearchResult:
    """What a search run produced and what it cost.

    ``wall_seconds`` is the measured host wall-clock of the search itself;
    ``simulated_gpu_seconds`` is the *accounted* training time train-based
    baselines would have paid (zero for zero-shot methods).  The paper's
    "Search Time" column reports GPU-hours, i.e.
    ``(wall_seconds + simulated_gpu_seconds) / 3600``.
    """

    genotype: Genotype
    algorithm: str
    indicators: Dict[str, float] = field(default_factory=dict)
    history: List[Dict] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    wall_seconds: float = 0.0
    simulated_gpu_seconds: float = 0.0
    weights_used: Optional[Dict[str, float]] = None

    @property
    def arch_str(self) -> str:
        return self.genotype.to_arch_str()

    @property
    def num_evaluations(self) -> int:
        return self.ledger.total_count()

    @property
    def search_gpu_hours(self) -> float:
        """Total accounted search cost in hours (paper's reporting unit)."""
        return (self.wall_seconds + self.simulated_gpu_seconds) / 3600.0

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.arch_str} "
            f"({self.num_evaluations} evals, {self.search_gpu_hours:.3f} h)"
        )

    # ------------------------------------------------------------------
    # Serialisation (experiment records)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable record of the run (for experiment logs)."""
        return {
            "algorithm": self.algorithm,
            "arch_str": self.arch_str,
            "arch_index": self.genotype.to_index(),
            "indicators": {k: float(v) for k, v in self.indicators.items()},
            "history": self.history,
            "wall_seconds": self.wall_seconds,
            "simulated_gpu_seconds": self.simulated_gpu_seconds,
            "weights_used": self.weights_used,
            "ledger": {
                "seconds": dict(self.ledger.seconds),
                "counts": dict(self.ledger.counts),
            },
        }

    def save_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as pretty-printed JSON."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)

    @classmethod
    def load_json(cls, path: str) -> "SearchResult":
        """Reload a result saved with :meth:`save_json`.

        The ledger and history round-trip; the genotype is rebuilt from its
        index.
        """
        import json

        from repro.searchspace.genotype import Genotype

        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        ledger = CostLedger(
            seconds=dict(payload["ledger"]["seconds"]),
            counts={k: int(v) for k, v in payload["ledger"]["counts"].items()},
        )
        return cls(
            genotype=Genotype.from_index(int(payload["arch_index"])),
            algorithm=payload["algorithm"],
            indicators=payload.get("indicators", {}),
            history=payload.get("history", []),
            ledger=ledger,
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            simulated_gpu_seconds=float(payload.get("simulated_gpu_seconds", 0.0)),
            weights_used=payload.get("weights_used"),
        )
