"""Pluggable hardware cost models: deployment axes as search objectives.

The paper's hybrid objective hardcodes four indicators (κ_NTK, linear
regions, FLOPs, latency), yet the hardware package already models more
of what an edge deployment pays — energy per inference
(:mod:`repro.hardware.energy`), peak tensor-arena SRAM
(:mod:`repro.hardware.memplan`), and int8 kernel latency
(:class:`~repro.hardware.latency.LatencyEstimator` with
``precision="int8"``).  This module turns each of those into a
:class:`CostModel`: a named, fingerprinted ``estimate(genotype)`` that
the engine caches canonically, :class:`~repro.search.objective.ObjectiveWeights`
can weight, and :class:`~repro.search.pareto.ParetoZeroShotSearch` /
the runtime's device-matrix mode can use as a Pareto axis.

Contract:

* ``name`` — the registry key and the indicator-column name the axis
  appears under in tables, weights and fronts;
* ``estimate(genotype) -> float`` — the raw cost (lower is always
  better; quality indicators stay the objective layer's business);
* ``fingerprint() -> tuple`` — hashable identity of everything the value
  depends on *besides* the genotype (device name, kernel precision,
  power figures, macro configuration...).  It is folded into cache keys
  so rows never alias across devices, precisions or objective sets;
* ``cache`` — optionally, the :class:`~repro.engine.cache.IndicatorCache`
  the model itself memoizes into.  Estimator-backed models set it so the
  engine can detect "model and engine share one cache" and not
  double-count lookups (same pattern as ``Engine.latency_ms``).

Built-in axes: ``latency`` (float32 LUT latency — shares the legacy
``("latency", ...)`` key layout, so existing caches and stores warm it),
``flops``, ``energy`` (mJ/inference), ``peak-mem`` (planned arena bytes),
and ``int8-latency`` (quantized kernels, backed by the
:data:`INT8_DEPLOY` precision entry).  New axes register with
:func:`register_cost_model`.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import SearchError
from repro.hardware.costmodel import PRECISIONS
from repro.hardware.energy import EnergyEstimator
from repro.hardware.latency import LatencyEstimator
from repro.hardware.memplan import PLANNING_STRATEGIES, plan_memory, tensor_lifetimes
from repro.proxies.flops import count_flops
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


# ----------------------------------------------------------------------
# Deployment precision entries (PrecisionPolicy-style, for kernels)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeployPrecision:
    """A named deployment kernel precision (the on-device analogue of
    :class:`repro.autograd.precision.PrecisionPolicy`, which governs
    *proxy* arithmetic — this one governs what the board runs)."""

    name: str
    kernel_precision: str

    def __post_init__(self) -> None:
        if self.kernel_precision not in PRECISIONS:
            raise SearchError(
                f"unknown kernel precision {self.kernel_precision!r}; "
                f"choose from {PRECISIONS}")


FLOAT32_DEPLOY = DeployPrecision(name="float32", kernel_precision="float32")
INT8_DEPLOY = DeployPrecision(name="int8", kernel_precision="int8")

#: Registered deployment precisions by name.
DEPLOY_PRECISIONS: Dict[str, DeployPrecision] = {
    policy.name: policy for policy in (FLOAT32_DEPLOY, INT8_DEPLOY)
}


def resolve_deploy_precision(name: str) -> DeployPrecision:
    """Look up a deployment precision entry by name."""
    try:
        return DEPLOY_PRECISIONS[name]
    except KeyError:
        raise SearchError(
            f"unknown deploy precision {name!r}; choose from "
            f"{sorted(DEPLOY_PRECISIONS)}") from None


# ----------------------------------------------------------------------
# The CostModel protocol
# ----------------------------------------------------------------------
class CostModel:
    """Base class for pluggable cost axes (see module docstring)."""

    #: Registry key / indicator-column name.
    name: str = ""
    #: Cache the model itself memoizes into, or None.  See module
    #: docstring — the engine uses identity with its own cache to avoid
    #: double-counting hits/misses for estimator-backed models.
    cache = None

    def estimate(self, genotype: Genotype) -> float:
        """Raw cost of one architecture (lower is better)."""
        raise NotImplementedError

    def fingerprint(self) -> Tuple:
        """Hashable identity of everything the value depends on besides
        the genotype."""
        raise NotImplementedError

    def cache_key(self, canon_index: int) -> Tuple:
        """Engine cache key for the canonical form with this index."""
        return ("cost", self.name, canon_index) + self.fingerprint()


class LatencyCostModel(CostModel):
    """LUT-composition latency as a cost axis (float32 or int8 kernels).

    Deliberately reuses the estimator's own memo layout
    ``("latency", index, device, precision, macro)`` so the axis shares
    rows with the legacy latency indicator — a store written by a plain
    latency-weighted run warms this axis for free, and vice versa.
    """

    def __init__(self, estimator: LatencyEstimator,
                 name: str = "latency") -> None:
        self.name = name
        self.estimator = estimator
        self.cache = estimator.cache

    def estimate(self, genotype: Genotype) -> float:
        return float(self.estimator.estimate_ms(genotype))

    def fingerprint(self) -> Tuple:
        return (self.estimator.device.name, self.estimator.precision,
                astuple(self.estimator.config))

    def cache_key(self, canon_index: int) -> Tuple:
        return ("latency", canon_index) + self.fingerprint()


class FlopsCostModel(CostModel):
    """Deployment FLOPs as a cost axis (device-independent).

    Shares the legacy ``("flops", index, macro)`` key layout with
    :meth:`Engine.flops`.
    """

    name = "flops"

    def __init__(self, config: MacroConfig) -> None:
        self.config = config

    def estimate(self, genotype: Genotype) -> float:
        return float(count_flops(genotype, self.config))

    def fingerprint(self) -> Tuple:
        return (astuple(self.config),)

    def cache_key(self, canon_index: int) -> Tuple:
        return ("flops", canon_index, astuple(self.config))


class EnergyCostModel(CostModel):
    """Energy per inference (mJ) — active power × latency + wake cost.

    A monotone transform of latency *per device*, but ranks differently
    across devices (a faster core at higher power can lose on energy),
    which is exactly why it is a separate axis in the device matrix.
    """

    name = "energy"

    def __init__(self, estimator: EnergyEstimator) -> None:
        self.energy = estimator

    def estimate(self, genotype: Genotype) -> float:
        return float(self.energy.energy_per_inference_mj(genotype))

    def fingerprint(self) -> Tuple:
        profile = self.energy.profile
        latency = self.energy.estimator
        return (self.energy.device.name, latency.precision,
                profile.active_mw, profile.sleep_mw, profile.wake_uj,
                astuple(latency.config))


class PeakMemoryCostModel(CostModel):
    """Peak tensor-arena SRAM (bytes) under a planning strategy."""

    name = "peak-mem"

    def __init__(self, config: MacroConfig, element_bytes: int = 4,
                 strategy: str = "greedy_by_size") -> None:
        if strategy not in PLANNING_STRATEGIES:
            raise SearchError(
                f"unknown planning strategy {strategy!r}; choose from "
                f"{PLANNING_STRATEGIES}")
        self.config = config
        self.element_bytes = element_bytes
        self.strategy = strategy

    def estimate(self, genotype: Genotype) -> float:
        lifetimes = tensor_lifetimes(genotype, self.config,
                                     element_bytes=self.element_bytes)
        return float(plan_memory(lifetimes, self.strategy).arena_bytes)

    def fingerprint(self) -> Tuple:
        return (self.strategy, self.element_bytes, astuple(self.config))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: name -> builder(device=..., macro_config=..., cache=..., lut_store=...,
#: latency_estimator=...) -> CostModel.  ``latency_estimator`` is an
#: optional already-built float32 estimator builders may reuse instead of
#: profiling a fresh one (the engine passes its own).
_COST_MODEL_BUILDERS: Dict[str, Callable[..., CostModel]] = {}


def register_cost_model(name: str):
    """Decorator registering a cost-model builder under ``name``."""

    def decorate(builder: Callable[..., CostModel]):
        if name in _COST_MODEL_BUILDERS:
            raise SearchError(f"cost model {name!r} is already registered")
        _COST_MODEL_BUILDERS[name] = builder
        return builder

    return decorate


def registered_cost_models() -> Tuple[str, ...]:
    """All registered cost-axis names, sorted."""
    return tuple(sorted(_COST_MODEL_BUILDERS))


def build_cost_model(
    name: str,
    device,
    macro_config: MacroConfig,
    cache=None,
    lut_store=None,
    latency_estimator: Optional[LatencyEstimator] = None,
) -> CostModel:
    """Instantiate a registered cost model for one (device, macro) pair.

    ``cache``/``lut_store`` are threaded into estimator-backed models so
    their rows and LUTs land in (and warm from) the caller's cache and
    :class:`~repro.runtime.store.RuntimeStore`; ``latency_estimator``
    lets the caller share an already-profiled float32 estimator.
    """
    try:
        builder = _COST_MODEL_BUILDERS[name]
    except KeyError:
        raise SearchError(
            f"unknown cost model {name!r}; registered: "
            f"{sorted(_COST_MODEL_BUILDERS)}") from None
    return builder(device=device, macro_config=macro_config, cache=cache,
                   lut_store=lut_store, latency_estimator=latency_estimator)


def _shared_or_new_estimator(device, macro_config, cache, lut_store,
                             latency_estimator, precision: str
                             ) -> LatencyEstimator:
    """Reuse the caller's estimator when it matches, else build one."""
    if (latency_estimator is not None
            and latency_estimator.precision == precision
            and latency_estimator.device.name == device.name
            and astuple(latency_estimator.config) == astuple(macro_config)):
        return latency_estimator
    kwargs = {"device": device, "config": macro_config,
              "precision": precision}
    if cache is not None:
        kwargs["cache"] = cache
    if lut_store is not None:
        kwargs["lut_store"] = lut_store
    return LatencyEstimator(**kwargs)


@register_cost_model("latency")
def _build_latency(device, macro_config, cache=None, lut_store=None,
                   latency_estimator=None) -> CostModel:
    estimator = _shared_or_new_estimator(
        device, macro_config, cache, lut_store, latency_estimator,
        FLOAT32_DEPLOY.kernel_precision)
    return LatencyCostModel(estimator)


@register_cost_model("int8-latency")
def _build_int8_latency(device, macro_config, cache=None, lut_store=None,
                        latency_estimator=None) -> CostModel:
    estimator = _shared_or_new_estimator(
        device, macro_config, cache, lut_store, latency_estimator,
        INT8_DEPLOY.kernel_precision)
    return LatencyCostModel(estimator, name="int8-latency")


@register_cost_model("energy")
def _build_energy(device, macro_config, cache=None, lut_store=None,
                  latency_estimator=None) -> CostModel:
    estimator = _shared_or_new_estimator(
        device, macro_config, cache, lut_store, latency_estimator,
        FLOAT32_DEPLOY.kernel_precision)
    return EnergyCostModel(EnergyEstimator(device, estimator=estimator))


@register_cost_model("flops")
def _build_flops(device, macro_config, cache=None, lut_store=None,
                 latency_estimator=None) -> CostModel:
    return FlopsCostModel(macro_config)


@register_cost_model("peak-mem")
def _build_peak_mem(device, macro_config, cache=None, lut_store=None,
                    latency_estimator=None) -> CostModel:
    return PeakMemoryCostModel(macro_config)


__all__ = [
    "CostModel",
    "DeployPrecision",
    "DEPLOY_PRECISIONS",
    "EnergyCostModel",
    "FLOAT32_DEPLOY",
    "FlopsCostModel",
    "INT8_DEPLOY",
    "LatencyCostModel",
    "PeakMemoryCostModel",
    "build_cost_model",
    "register_cost_model",
    "registered_cost_models",
    "resolve_deploy_precision",
]
