"""Secondary-stage (macro) search: cell count and channel width per stage.

The paper's latency estimator gathers "specific details of the secondary
stage of the model structure, including the number of cells and
input/output channels for each cell" (§II-B-2).  This module turns that
secondary stage into a search of its own: given a discovered cell, find
the macro skeleton — ``cells_per_stage`` and ``init_channels`` — that best
exploits a target MCU's latency / SRAM / flash budget.

Selection follows the TinyML "largest model that fits" principle
(MCUNet): under a hard resource budget, accuracy grows with model
capacity, so among feasible skeletons we pick the one with the highest
capacity score.  The capacity score is ``log(params) + log(FLOPs)`` —
scale-free, monotone in both width and depth, and indifferent to the
units either indicator is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.core import Engine
from repro.errors import SearchError
from repro.hardware.device import MCUDevice, NUCLEO_F746ZG
from repro.hardware.memory import MemoryEstimator
from repro.hardware.profiler import OnDeviceProfiler
from repro.search.constraints import HardwareConstraints
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@dataclass(frozen=True)
class MacroSearchSpace:
    """The grid of macro skeletons the secondary stage considers.

    ``channel_choices`` are initial widths ``C`` (stages run at C/2C/4C);
    ``cell_choices`` are cells per stage ``N``.  The full NAS-Bench-201
    configuration (C=16, N=5) is one point of the default grid.
    """

    channel_choices: Tuple[int, ...] = (4, 8, 12, 16, 24, 32)
    cell_choices: Tuple[int, ...] = (1, 2, 3, 4, 5)
    num_classes: int = 10
    input_channels: int = 3
    image_size: int = 32

    def __post_init__(self) -> None:
        if not self.channel_choices or not self.cell_choices:
            raise SearchError("macro search space must not be empty")
        if any(c < 1 for c in self.channel_choices):
            raise SearchError("channel choices must be positive")
        if any(n < 1 for n in self.cell_choices):
            raise SearchError("cell choices must be positive")
        if self.image_size % 4 != 0:
            raise SearchError(
                "image size must be divisible by 4 (two stride-2 reductions)"
            )

    def __len__(self) -> int:
        return len(self.channel_choices) * len(self.cell_choices)

    def configs(self) -> List[MacroConfig]:
        """Every macro configuration of the grid, widest-first."""
        return [
            MacroConfig(
                init_channels=c,
                cells_per_stage=n,
                num_classes=self.num_classes,
                input_channels=self.input_channels,
                image_size=self.image_size,
            )
            for c in self.channel_choices
            for n in self.cell_choices
        ]


@dataclass(frozen=True)
class MacroCandidate:
    """One evaluated macro skeleton for a fixed cell genotype."""

    config: MacroConfig
    latency_ms: float
    flops: int
    params: int
    peak_sram_bytes: int
    flash_bytes: int
    violations: Dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def capacity(self) -> float:
        """Scale-free model-capacity score (selection criterion)."""
        return float(np.log(max(self.params, 1)) + np.log(max(self.flops, 1)))

    def describe(self) -> str:
        return (
            f"C={self.config.init_channels} N={self.config.cells_per_stage}: "
            f"{self.latency_ms:.2f} ms, {self.flops / 1e6:.2f} MFLOPs, "
            f"{self.params / 1e3:.1f} k params, "
            f"SRAM {self.peak_sram_bytes / 1024:.0f} KB, "
            f"flash {self.flash_bytes / 1024:.0f} KB"
            + ("" if self.feasible else f"  [violates {sorted(self.violations)}]")
        )


@dataclass
class DeploymentPlan:
    """A fully specified deployment: cell + macro skeleton + metrics."""

    genotype: Genotype
    candidate: MacroCandidate
    device_name: str
    alternatives_considered: int = 0

    @property
    def config(self) -> MacroConfig:
        return self.candidate.config

    def summary(self) -> str:
        return (
            f"{self.genotype.to_arch_str()} on {self.device_name} -> "
            f"{self.candidate.describe()}"
        )

    def to_dict(self) -> Dict:
        return {
            "arch_str": self.genotype.to_arch_str(),
            "arch_index": self.genotype.to_index(),
            "device": self.device_name,
            "init_channels": self.config.init_channels,
            "cells_per_stage": self.config.cells_per_stage,
            "latency_ms": self.candidate.latency_ms,
            "flops": self.candidate.flops,
            "params": self.candidate.params,
            "peak_sram_bytes": self.candidate.peak_sram_bytes,
            "flash_bytes": self.candidate.flash_bytes,
            "alternatives_considered": self.alternatives_considered,
        }


def device_constraints(
    device: MCUDevice,
    max_latency_ms: Optional[float] = None,
    memory_margin: float = 1.0,
) -> HardwareConstraints:
    """Constraints implied by a device's physical memories.

    ``memory_margin`` scales the SRAM/flash budgets (e.g. ``0.8`` reserves
    20 % for the application around the model).
    """
    if not 0.0 < memory_margin <= 1.0:
        raise SearchError("memory margin must be in (0, 1]")
    return HardwareConstraints(
        max_latency_ms=max_latency_ms,
        max_sram_bytes=device.sram_bytes * memory_margin,
        max_flash_bytes=device.flash_bytes * memory_margin,
    )


class MacroStageSearch:
    """Exhaustive hardware-aware search over macro skeletons.

    The grid is small (tens of points), so exhaustive evaluation with the
    LUT estimator is cheap — exactly why the paper's latency model makes
    the secondary stage tractable.  Latency / FLOPs / params route through
    the shared evaluation engine (one LUT estimator per grid point, all
    writing the same indicator cache); composed candidates are additionally
    memoized per config.
    """

    def __init__(
        self,
        genotype: Genotype,
        device: MCUDevice = NUCLEO_F746ZG,
        space: Optional[MacroSearchSpace] = None,
        element_bytes: int = 4,
        profiler: Optional[OnDeviceProfiler] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        self.genotype = genotype
        self.device = device
        self.space = space or MacroSearchSpace()
        self.element_bytes = element_bytes
        self.profiler = profiler or OnDeviceProfiler(device)
        if engine is None:
            self.engine = Engine(device=device, profiler=self.profiler)
        else:
            # A shared engine is only honoured if it prices this search's
            # board; otherwise a sibling (same cache, own estimators) is
            # built so grid latencies never come from the wrong device.
            self.engine = engine.for_device(device, profiler=self.profiler)
        self._cache: Dict[Tuple[int, int], MacroCandidate] = {}

    # ------------------------------------------------------------------
    def _constraint_violations(
        self, constraints: Optional[HardwareConstraints],
        latency_ms: float, flops: int, params: int,
        sram: int, flash: int,
    ) -> Dict[str, float]:
        if constraints is None:
            return {}
        out: Dict[str, float] = {}
        checks = (
            ("latency", latency_ms, constraints.max_latency_ms),
            ("flops", flops, constraints.max_flops),
            ("params", params, constraints.max_params),
            ("sram", sram, constraints.max_sram_bytes),
            ("flash", flash, constraints.max_flash_bytes),
        )
        for name, measured, bound in checks:
            if bound is not None and measured > bound:
                out[name] = measured / bound - 1.0
        return out

    def evaluate(
        self,
        config: MacroConfig,
        constraints: Optional[HardwareConstraints] = None,
    ) -> MacroCandidate:
        """Latency / memory / complexity of the cell at one skeleton."""
        key = (config.init_channels, config.cells_per_stage)
        if key not in self._cache:
            latency_ms = self.engine.latency_ms(self.genotype, config)
            flops = int(self.engine.flops(self.genotype, config))
            params = int(self.engine.params(self.genotype, config))
            memory = MemoryEstimator(config, element_bytes=self.element_bytes)
            report = memory.report(self.genotype)
            self._cache[key] = MacroCandidate(
                config=config,
                latency_ms=latency_ms,
                flops=flops,
                params=params,
                peak_sram_bytes=report.peak_sram_bytes,
                flash_bytes=report.flash_bytes,
            )
        base = self._cache[key]
        violations = self._constraint_violations(
            constraints, base.latency_ms, base.flops, base.params,
            base.peak_sram_bytes, base.flash_bytes,
        )
        return MacroCandidate(
            config=base.config,
            latency_ms=base.latency_ms,
            flops=base.flops,
            params=base.params,
            peak_sram_bytes=base.peak_sram_bytes,
            flash_bytes=base.flash_bytes,
            violations=violations,
        )

    def evaluate_all(
        self, constraints: Optional[HardwareConstraints] = None
    ) -> List[MacroCandidate]:
        """Every grid point, evaluated (order matches ``space.configs()``)."""
        return [self.evaluate(cfg, constraints) for cfg in self.space.configs()]

    # ------------------------------------------------------------------
    def select(self, constraints: HardwareConstraints) -> DeploymentPlan:
        """The highest-capacity feasible skeleton ("largest that fits").

        Ties on capacity break toward lower latency.  Raises
        :class:`SearchError` when nothing in the grid fits the budget.
        """
        candidates = self.evaluate_all(constraints)
        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            tightest = min(
                candidates, key=lambda c: sum(c.violations.values())
            )
            raise SearchError(
                "no macro skeleton satisfies the constraints; closest was "
                + tightest.describe()
            )
        best = max(feasible, key=lambda c: (c.capacity, -c.latency_ms))
        return DeploymentPlan(
            genotype=self.genotype,
            candidate=best,
            device_name=self.device.name,
            alternatives_considered=len(candidates),
        )

    def pareto_frontier(self) -> List[MacroCandidate]:
        """Latency-vs-capacity Pareto set of the grid (latency ascending).

        A skeleton is kept iff no other skeleton is at most as slow *and*
        has strictly higher capacity.
        """
        candidates = sorted(
            self.evaluate_all(), key=lambda c: (c.latency_ms, -c.capacity)
        )
        frontier: List[MacroCandidate] = []
        best_capacity = -np.inf
        for cand in candidates:
            if cand.capacity > best_capacity:
                frontier.append(cand)
                best_capacity = cand.capacity
        return frontier


def plan_deployment(
    genotype: Genotype,
    device: MCUDevice = NUCLEO_F746ZG,
    max_latency_ms: Optional[float] = None,
    space: Optional[MacroSearchSpace] = None,
    element_bytes: int = 4,
    memory_margin: float = 1.0,
) -> DeploymentPlan:
    """One-call secondary stage: fit a discovered cell onto a device.

    Convenience wrapper combining :func:`device_constraints` and
    :meth:`MacroStageSearch.select`.
    """
    search = MacroStageSearch(
        genotype, device=device, space=space, element_bytes=element_bytes
    )
    constraints = device_constraints(
        device, max_latency_ms=max_latency_ms, memory_margin=memory_margin
    )
    return search.select(constraints)
