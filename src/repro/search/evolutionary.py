"""µNAS-style constrained aging evolution (train-based baseline).

Liberis, Dudziak & Lane, "µNAS: Constrained Neural Architecture Search for
Microcontrollers" (EuroMLSys 2021) searches with aging evolution and pays
(full or proxy) *training* for every candidate it evaluates.  We reproduce
the search loop and its cost accounting: fitness queries the surrogate
benchmark, and every query charges the candidate's simulated training time
to the ledger.  This is the comparison behind the paper's 1104× search-
efficiency claim and µNAS's 552 GPU-hours in Table I.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.benchdata.cost import TrainingCostModel
from repro.benchdata.surrogate import SurrogateModel
from repro.errors import SearchError
from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.search.objective import HybridObjective
from repro.search.result import SearchResult
from repro.searchspace.canonical import canonicalize
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import SeedLike, new_rng
from repro.utils.timing import CostLedger, Timer


@dataclass(frozen=True)
class EvolutionConfig:
    """Aging-evolution hyper-parameters (µNAS-like defaults, scaled to the
    NAS-Bench-201 space)."""

    population_size: int = 50
    sample_size: int = 10
    cycles: int = 600
    violation_penalty: float = 50.0
    dataset: str = "cifar10"
    reduced_epochs: Optional[int] = None  # None = full training per candidate


class ConstrainedEvolutionarySearch:
    """Aging evolution over the surrogate benchmark with constraint penalties."""

    algorithm_name = "evolutionary-munas"

    def __init__(
        self,
        config: Optional[EvolutionConfig] = None,
        constraints: Optional[HardwareConstraints] = None,
        surrogate: Optional[SurrogateModel] = None,
        cost_model: Optional[TrainingCostModel] = None,
        macro_config: Optional[MacroConfig] = None,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
    ) -> None:
        self.config = config or EvolutionConfig()
        if self.config.population_size < 2 or self.config.sample_size < 1:
            raise SearchError("population_size >= 2 and sample_size >= 1 required")
        self.constraints = constraints
        self.surrogate = surrogate or SurrogateModel()
        self.cost_model = cost_model or TrainingCostModel()
        self.macro_config = macro_config or MacroConfig.full()
        self.space = space or NasBench201Space()
        self.seed = seed
        self._checker = (
            ConstraintChecker(constraints, macro_config=self.macro_config)
            if constraints is not None and constraints.constrains_anything
            else None
        )

    # ------------------------------------------------------------------
    def _fitness(self, genotype: Genotype, ledger: CostLedger) -> float:
        """Surrogate accuracy minus constraint penalty; charges training time."""
        seconds = self.cost_model.training_seconds(
            genotype, self.macro_config, epochs=self.config.reduced_epochs
        )
        ledger.add("simulated_training", seconds=seconds)
        accuracy = self.surrogate.accuracy(genotype, self.config.dataset, seed=0)
        if self._checker is not None:
            accuracy -= self.config.violation_penalty * self._checker.total_violation(
                genotype
            )
        return accuracy

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run aging evolution; returns the best *feasible* candidate seen."""
        rng = new_rng(self.seed)
        ledger = CostLedger()
        history: List[Dict] = []
        population: Deque[Tuple[Genotype, float]] = deque(
            maxlen=self.config.population_size
        )
        best: Optional[Tuple[Genotype, float]] = None

        def consider(genotype: Genotype, fitness: float) -> None:
            nonlocal best
            feasible = self._checker is None or self._checker.satisfied(genotype)
            if feasible and (best is None or fitness > best[1]):
                best = (genotype, fitness)

        with Timer() as timer:
            for genotype in self.space.sample(self.config.population_size, rng=rng,
                                              unique=False):
                fitness = self._fitness(genotype, ledger)
                population.append((genotype, fitness))
                consider(genotype, fitness)
            for cycle in range(self.config.cycles):
                contenders = [
                    population[int(i)]
                    for i in rng.integers(0, len(population),
                                          size=self.config.sample_size)
                ]
                parent = max(contenders, key=lambda pair: pair[1])[0]
                child = self.space.mutate(parent, rng=rng)
                fitness = self._fitness(child, ledger)
                population.append((child, fitness))
                consider(child, fitness)
                if cycle % 100 == 0:
                    history.append({
                        "cycle": cycle,
                        "best_fitness": best[1] if best else float("nan"),
                        "best_arch": best[0].to_arch_str() if best else None,
                    })

        if best is None:
            # No feasible candidate found: fall back to the fittest overall.
            best = max(population, key=lambda pair: pair[1])
        genotype = best[0]
        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators={"fitness": best[1]},
            history=history,
            ledger=ledger,
            wall_seconds=timer.elapsed,
            simulated_gpu_seconds=ledger.seconds.get("simulated_training", 0.0),
        )


class SteadyStateEvolutionarySearch:
    """Asynchronous steady-state evolution over the async runtime.

    The generational loops above insert one generation barrier per cycle:
    mutation cannot start until the whole previous batch has been
    evaluated, so workers idle while the slowest candidate finishes.  This
    loop is *event-driven* instead — the DeepHyper submit/gather shape:

    1. the initial population is submitted as per-chunk futures
       (:meth:`~repro.runtime.async_pool.AsyncPopulationExecutor.
       submit_population`), none of which block;
    2. the moment **any** future resolves (``gather(1)``), its candidates
       are committed to the aging population and new children are mutated
       from the *current Pareto set* and submitted — enough to keep
       ``n_workers`` candidates in flight, never more;
    3. children whose canonical form is already cached (or already owned
       by an in-flight chunk) commit without occupying a worker — the
       cache-hit fast path mutation loops live on.

    Indicator values are bit-identical to serial evaluation regardless of
    completion order (the executor's determinism contract); the search
    *trajectory* is a pure function of the completion order, so runs with
    the serial inline executor (``n_workers=1``) are exactly reproducible
    while pool runs trade trajectory replay for wall-clock overlap.  The
    final winner is re-ranked over the canonically-sorted set of every
    distinct candidate seen, so tie-breaking never depends on arrival
    order.

    ``parent_selection`` controls the Pareto-front parent pick:
    ``"crowding"`` (default) weights it by NSGA-II crowding distance
    (:func:`repro.search.pareto.crowding_selection_weights`), biasing
    mutation toward sparse regions of the front; ``"uniform"`` is the
    original unweighted pick, kept as the fallback flag.
    """

    algorithm_name = "evolutionary-steady-state"

    def __init__(
        self,
        objective: HybridObjective,
        config: Optional[EvolutionConfig] = None,
        constraints: Optional[HardwareConstraints] = None,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
        executor=None,
        parent_selection: str = "crowding",
    ) -> None:
        self.config = config or EvolutionConfig()
        if self.config.population_size < 2:
            raise SearchError("population_size >= 2 required")
        if parent_selection not in ("crowding", "uniform"):
            raise SearchError(
                f"unknown parent_selection {parent_selection!r}; "
                "use 'crowding' or 'uniform'"
            )
        self.parent_selection = parent_selection
        self.objective = objective
        self.constraints = constraints
        self.space = space or NasBench201Space()
        self.seed = seed
        if executor is None:
            from repro.runtime.async_pool import AsyncPopulationExecutor

            executor = AsyncPopulationExecutor(n_workers=1, chunk_size=1,
                                               mode="serial")
        for hook in ("submit_population", "gather", "gather_all"):
            if not hasattr(executor, hook):
                raise SearchError(
                    "steady-state search needs an asynchronous executor "
                    "(submit_population/gather), e.g. "
                    "repro.runtime.async_pool.AsyncPopulationExecutor; got "
                    f"{type(executor).__name__} without {hook!r}"
                )
        self.executor = executor
        self._checker = (
            ConstraintChecker(
                constraints,
                macro_config=objective.macro_config,
                latency_estimator=objective.built_latency_estimator,
            )
            if constraints is not None and constraints.constrains_anything
            else None
        )

    # ------------------------------------------------------------------
    def _objective_vector(self, row: Dict[str, float]) -> Tuple[float, ...]:
        """Minimisation vector for Pareto dominance over raw indicators."""
        vector = [row["ntk"], -row["linear_regions"]]
        if self.objective.weights.uses_flops:
            vector.append(row["flops"])
        if self.objective.weights.uses_latency:
            vector.append(row["latency"])
        return tuple(vector)

    def _pareto_parents(
        self, population: Sequence[Tuple[Genotype, Tuple[float, ...]]]
    ) -> Tuple[List[Genotype], Optional[np.ndarray]]:
        """Non-dominated members plus their parent-selection probabilities.

        Under ``parent_selection="crowding"`` probabilities follow NSGA-II
        crowding distance over the front's objective vectors.  Uniform
        mode returns ``None`` instead of a flat vector: the spawn loop
        then draws with ``rng.integers``, preserving the pre-crowding RNG
        stream exactly.
        """
        from repro.search.pareto import (
            crowding_selection_weights,
            non_dominated_sort,
        )

        vectors = np.array([vector for _, vector in population], dtype=float)
        front = non_dominated_sort(vectors)[0]
        parents = [population[i][0] for i in front]
        if self.parent_selection != "crowding":
            return parents, None
        return parents, crowding_selection_weights(vectors[front])

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run steady-state evolution; returns the best-ranked candidate."""
        rng = new_rng(self.seed)
        history: List[Dict] = []
        seen: Dict[int, Genotype] = {}
        population: Deque[Tuple[Genotype, Tuple[float, ...]]] = deque(
            maxlen=self.config.population_size
        )
        #: Submitted candidates awaiting their future, by canonical index.
        outstanding: Dict[int, List[Genotype]] = {}
        engine = self.objective.engine
        n_workers = getattr(self.executor, "n_workers", 1)
        children_spawned = 0
        committed = 0
        last_logged = 0

        #: Non-dominated set of `population` (+ selection weights),
        #: recomputed only after a commit changes it (the O(P^2) sort
        #: would otherwise rerun per spawned child even with nothing
        #: landed in between).
        pareto_cache: Optional[Tuple[List[Genotype],
                                     Optional[np.ndarray]]] = None

        def commit(genotype: Genotype) -> None:
            nonlocal committed, pareto_cache
            committed += 1
            pareto_cache = None
            row = self.objective.genotype_indicators(genotype)
            population.append((genotype, self._objective_vector(row)))
            seen.setdefault(genotype.to_index(), genotype)

        def pareto_parents() -> Tuple[List[Genotype], Optional[np.ndarray]]:
            nonlocal pareto_cache
            if pareto_cache is None:
                pareto_cache = self._pareto_parents(population)
            return pareto_cache

        def quarantined() -> set:
            # Canonical indices the executor has quarantined as poison
            # (empty for executors without fault tolerance).
            return getattr(self.executor, "quarantined_genotypes", set())

        def draining() -> bool:
            # Sticky graceful-drain flag (the harness's signal handlers
            # set it): finish what's in flight, propose nothing new.
            return getattr(self.executor, "drain_requested", False)

        def submit(genotype: Genotype) -> None:
            """Submit one candidate; commit immediately on a warm cache."""
            canon_index = canonicalize(genotype).to_index()
            if canon_index in quarantined():
                # Poison candidate (possibly from a previous run's
                # ledger): proposing it again would just re-poison.
                return
            shipped = self.executor.submit_population(engine, [genotype])
            self.objective.ledger.add("evolution_candidates", count=1)
            if shipped == 0 and canon_index not in outstanding:
                # Every indicator already cached: no future to wait for.
                commit(genotype)
            else:
                # Owns a fresh chunk, or piggybacks on the in-flight chunk
                # that already claimed this canonical form's keys.
                outstanding.setdefault(canon_index, []).append(genotype)

        def spawn_children() -> None:
            """Top the pipeline back up to ``n_workers`` futures."""
            nonlocal children_spawned
            while (not draining()
                   and children_spawned < self.config.cycles
                   and self.executor.num_pending < n_workers):
                parents, weights = pareto_parents()
                if weights is not None:
                    pick = int(rng.choice(len(parents), p=weights))
                else:
                    # The pre-crowding RNG stream, preserved exactly.
                    pick = int(rng.integers(len(parents)))
                child = self.space.mutate(parents[pick], rng=rng)
                children_spawned += 1
                submit(child)

        with Timer() as timer:
            for genotype in self.space.sample(self.config.population_size,
                                              rng=rng, unique=False):
                submit(genotype)
            if population and self.executor.num_pending == 0:
                # Fully warm start: the whole initial population committed
                # without a single future; enter the loop spawning.
                spawn_children()
            while self.executor.num_pending or outstanding:
                if self.executor.num_pending == 0:
                    # Only possible if commits above drained the pipeline
                    # while canonical twins were still bookkept; flush them.
                    for index in list(outstanding):
                        for genotype in outstanding.pop(index):
                            commit(genotype)
                    spawn_children()
                    continue
                for chunk in self.executor.gather(1):
                    for index in chunk.canonical_indices:
                        for genotype in outstanding.pop(index, []):
                            commit(genotype)
                    for index in getattr(chunk, "quarantined_indices", ()):
                        # Poison candidate: drop its waiters uncommitted —
                        # nothing will ever land for them.
                        outstanding.pop(index, None)
                if population:
                    spawn_children()
                if committed >= last_logged + 50:
                    last_logged = committed
                    stats = engine.cache.stats
                    history.append({
                        "committed": committed,
                        "children_spawned": children_spawned,
                        "in_flight": self.executor.num_pending,
                        "pareto_size": (len(pareto_parents()[0])
                                        if population else 0),
                        "cache_hit_rate": stats.hit_rate,
                    })

            # Final selection over every distinct candidate seen, in
            # canonical-sort order so ties never break on arrival order.
            # Quarantined candidates are excluded — their indicators are
            # uncomputable by definition.
            banned = quarantined()
            candidates = [seen[index] for index in sorted(seen)
                          if not banned
                          or canonicalize(seen[index]).to_index()
                          not in banned]
            if not candidates:
                raise SearchError(
                    "steady-state search has no surviving candidates: the "
                    "run drained (or quarantined every proposal) before "
                    "anything was committed"
                )
            if self._checker is not None:
                feasible = [g for g in candidates
                            if self._checker.satisfied(g)]
                if feasible:
                    candidates = feasible
                else:
                    candidates = [min(candidates,
                                      key=self._checker.total_violation)]
            table = self.objective.evaluate_population(
                candidates, executor=self.executor
            )
            scores = self.objective.combined_ranks(table.rows())
            genotype = candidates[table.argbest(scores)]

        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators=self.objective.genotype_indicators(genotype),
            history=history,
            ledger=self.objective.ledger,
            wall_seconds=timer.elapsed,
            weights_used=vars(self.objective.weights).copy(),
        )


class TrainlessEvolutionarySearch:
    """Aging evolution driven by the batched trainless engine.

    Same µNAS-style loop shape as :class:`ConstrainedEvolutionarySearch`,
    but fitness comes from the hybrid objective instead of (simulated)
    training: the initial population is evaluated in one
    ``evaluate_population`` call, and each cycle's parent selection and the
    final winner are rank-combinations over engine-cached indicator rows.
    Mutation revisits architectures constantly — every revisit (and every
    canonically-equal sibling) resolves from the cache, so the marginal
    cost per cycle is one proxy evaluation at most.
    """

    algorithm_name = "evolutionary-trainless"

    def __init__(
        self,
        objective: HybridObjective,
        config: Optional[EvolutionConfig] = None,
        constraints: Optional[HardwareConstraints] = None,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
        executor=None,
    ) -> None:
        self.config = config or EvolutionConfig()
        if self.config.population_size < 2 or self.config.sample_size < 1:
            raise SearchError("population_size >= 2 and sample_size >= 1 required")
        self.objective = objective
        self.constraints = constraints
        self.space = space or NasBench201Space()
        self.seed = seed
        self.executor = executor
        self._checker = (
            ConstraintChecker(
                constraints,
                macro_config=objective.macro_config,
                latency_estimator=objective.built_latency_estimator,
            )
            if constraints is not None and constraints.constrains_anything
            else None
        )

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run trainless aging evolution; returns the best-ranked candidate."""
        rng = new_rng(self.seed)
        history: List[Dict] = []
        seen: Dict[int, Genotype] = {}

        def note(genotype: Genotype) -> None:
            seen.setdefault(genotype.to_index(), genotype)

        with Timer() as timer:
            initial = self.space.sample(self.config.population_size, rng=rng,
                                        unique=False)
            # Population API: one batched, canonically-deduplicated call
            # (fanned out over worker processes when an executor is set).
            self.objective.evaluate_population(initial,
                                               executor=self.executor)
            self.objective.ledger.add("evolution_candidates",
                                      count=len(initial))
            population: Deque[Genotype] = deque(initial,
                                                maxlen=self.config.population_size)
            for genotype in initial:
                note(genotype)
            for cycle in range(self.config.cycles):
                if getattr(self.executor, "drain_requested", False):
                    # Graceful drain: stop proposing; the final selection
                    # below runs over everything committed so far.
                    break
                contender_ids = rng.integers(0, len(population),
                                             size=self.config.sample_size)
                contenders = [population[int(i)] for i in contender_ids]
                rows = [self.objective.genotype_indicators(g)
                        for g in contenders]
                ranks = self.objective.combined_ranks(rows)
                parent = contenders[int(ranks.argmin())]
                child = self.space.mutate(parent, rng=rng)
                self.objective.genotype_indicators(child)  # warm the cache
                self.objective.ledger.add("evolution_candidates", count=1)
                population.append(child)
                note(child)
                if cycle % 100 == 0:
                    stats = self.objective.engine.cache.stats
                    history.append({
                        "cycle": cycle,
                        "distinct_seen": len(seen),
                        "cache_hit_rate": stats.hit_rate,
                    })

            candidates = list(seen.values())
            if self._checker is not None:
                feasible = [g for g in candidates if self._checker.satisfied(g)]
                if feasible:
                    candidates = feasible
                else:
                    candidates = [min(candidates,
                                      key=self._checker.total_violation)]
            table = self.objective.evaluate_population(candidates,
                                                       executor=self.executor)
            scores = self.objective.combined_ranks(table.rows())
            genotype = candidates[table.argbest(scores)]

        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators=self.objective.genotype_indicators(genotype),
            history=history,
            ledger=self.objective.ledger,
            wall_seconds=timer.elapsed,
            weights_used=vars(self.objective.weights).copy(),
        )
