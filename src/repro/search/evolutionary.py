"""µNAS-style constrained aging evolution (train-based baseline).

Liberis, Dudziak & Lane, "µNAS: Constrained Neural Architecture Search for
Microcontrollers" (EuroMLSys 2021) searches with aging evolution and pays
(full or proxy) *training* for every candidate it evaluates.  We reproduce
the search loop and its cost accounting: fitness queries the surrogate
benchmark, and every query charges the candidate's simulated training time
to the ledger.  This is the comparison behind the paper's 1104× search-
efficiency claim and µNAS's 552 GPU-hours in Table I.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.benchdata.cost import TrainingCostModel
from repro.benchdata.surrogate import SurrogateModel
from repro.errors import SearchError
from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.search.objective import HybridObjective
from repro.search.result import SearchResult
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import SeedLike, new_rng
from repro.utils.timing import CostLedger, Timer


@dataclass(frozen=True)
class EvolutionConfig:
    """Aging-evolution hyper-parameters (µNAS-like defaults, scaled to the
    NAS-Bench-201 space)."""

    population_size: int = 50
    sample_size: int = 10
    cycles: int = 600
    violation_penalty: float = 50.0
    dataset: str = "cifar10"
    reduced_epochs: Optional[int] = None  # None = full training per candidate


class ConstrainedEvolutionarySearch:
    """Aging evolution over the surrogate benchmark with constraint penalties."""

    algorithm_name = "evolutionary-munas"

    def __init__(
        self,
        config: Optional[EvolutionConfig] = None,
        constraints: Optional[HardwareConstraints] = None,
        surrogate: Optional[SurrogateModel] = None,
        cost_model: Optional[TrainingCostModel] = None,
        macro_config: Optional[MacroConfig] = None,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
    ) -> None:
        self.config = config or EvolutionConfig()
        if self.config.population_size < 2 or self.config.sample_size < 1:
            raise SearchError("population_size >= 2 and sample_size >= 1 required")
        self.constraints = constraints
        self.surrogate = surrogate or SurrogateModel()
        self.cost_model = cost_model or TrainingCostModel()
        self.macro_config = macro_config or MacroConfig.full()
        self.space = space or NasBench201Space()
        self.seed = seed
        self._checker = (
            ConstraintChecker(constraints, macro_config=self.macro_config)
            if constraints is not None and constraints.constrains_anything
            else None
        )

    # ------------------------------------------------------------------
    def _fitness(self, genotype: Genotype, ledger: CostLedger) -> float:
        """Surrogate accuracy minus constraint penalty; charges training time."""
        seconds = self.cost_model.training_seconds(
            genotype, self.macro_config, epochs=self.config.reduced_epochs
        )
        ledger.add("simulated_training", seconds=seconds)
        accuracy = self.surrogate.accuracy(genotype, self.config.dataset, seed=0)
        if self._checker is not None:
            accuracy -= self.config.violation_penalty * self._checker.total_violation(
                genotype
            )
        return accuracy

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run aging evolution; returns the best *feasible* candidate seen."""
        rng = new_rng(self.seed)
        ledger = CostLedger()
        history: List[Dict] = []
        population: Deque[Tuple[Genotype, float]] = deque(
            maxlen=self.config.population_size
        )
        best: Optional[Tuple[Genotype, float]] = None

        def consider(genotype: Genotype, fitness: float) -> None:
            nonlocal best
            feasible = self._checker is None or self._checker.satisfied(genotype)
            if feasible and (best is None or fitness > best[1]):
                best = (genotype, fitness)

        with Timer() as timer:
            for genotype in self.space.sample(self.config.population_size, rng=rng,
                                              unique=False):
                fitness = self._fitness(genotype, ledger)
                population.append((genotype, fitness))
                consider(genotype, fitness)
            for cycle in range(self.config.cycles):
                contenders = [
                    population[int(i)]
                    for i in rng.integers(0, len(population),
                                          size=self.config.sample_size)
                ]
                parent = max(contenders, key=lambda pair: pair[1])[0]
                child = self.space.mutate(parent, rng=rng)
                fitness = self._fitness(child, ledger)
                population.append((child, fitness))
                consider(child, fitness)
                if cycle % 100 == 0:
                    history.append({
                        "cycle": cycle,
                        "best_fitness": best[1] if best else float("nan"),
                        "best_arch": best[0].to_arch_str() if best else None,
                    })

        if best is None:
            # No feasible candidate found: fall back to the fittest overall.
            best = max(population, key=lambda pair: pair[1])
        genotype = best[0]
        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators={"fitness": best[1]},
            history=history,
            ledger=ledger,
            wall_seconds=timer.elapsed,
            simulated_gpu_seconds=ledger.seconds.get("simulated_training", 0.0),
        )


class TrainlessEvolutionarySearch:
    """Aging evolution driven by the batched trainless engine.

    Same µNAS-style loop shape as :class:`ConstrainedEvolutionarySearch`,
    but fitness comes from the hybrid objective instead of (simulated)
    training: the initial population is evaluated in one
    ``evaluate_population`` call, and each cycle's parent selection and the
    final winner are rank-combinations over engine-cached indicator rows.
    Mutation revisits architectures constantly — every revisit (and every
    canonically-equal sibling) resolves from the cache, so the marginal
    cost per cycle is one proxy evaluation at most.
    """

    algorithm_name = "evolutionary-trainless"

    def __init__(
        self,
        objective: HybridObjective,
        config: Optional[EvolutionConfig] = None,
        constraints: Optional[HardwareConstraints] = None,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
        executor=None,
    ) -> None:
        self.config = config or EvolutionConfig()
        if self.config.population_size < 2 or self.config.sample_size < 1:
            raise SearchError("population_size >= 2 and sample_size >= 1 required")
        self.objective = objective
        self.constraints = constraints
        self.space = space or NasBench201Space()
        self.seed = seed
        self.executor = executor
        self._checker = (
            ConstraintChecker(
                constraints,
                macro_config=objective.macro_config,
                latency_estimator=objective._latency_estimator,
            )
            if constraints is not None and constraints.constrains_anything
            else None
        )

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run trainless aging evolution; returns the best-ranked candidate."""
        rng = new_rng(self.seed)
        history: List[Dict] = []
        seen: Dict[int, Genotype] = {}

        def note(genotype: Genotype) -> None:
            seen.setdefault(genotype.to_index(), genotype)

        with Timer() as timer:
            initial = self.space.sample(self.config.population_size, rng=rng,
                                        unique=False)
            # Population API: one batched, canonically-deduplicated call
            # (fanned out over worker processes when an executor is set).
            self.objective.evaluate_population(initial,
                                               executor=self.executor)
            self.objective.ledger.add("evolution_candidates",
                                      count=len(initial))
            population: Deque[Genotype] = deque(initial,
                                                maxlen=self.config.population_size)
            for genotype in initial:
                note(genotype)
            for cycle in range(self.config.cycles):
                contender_ids = rng.integers(0, len(population),
                                             size=self.config.sample_size)
                contenders = [population[int(i)] for i in contender_ids]
                rows = [self.objective.genotype_indicators(g)
                        for g in contenders]
                ranks = self.objective.combined_ranks(rows)
                parent = contenders[int(ranks.argmin())]
                child = self.space.mutate(parent, rng=rng)
                self.objective.genotype_indicators(child)  # warm the cache
                self.objective.ledger.add("evolution_candidates", count=1)
                population.append(child)
                note(child)
                if cycle % 100 == 0:
                    stats = self.objective.engine.cache.stats
                    history.append({
                        "cycle": cycle,
                        "distinct_seen": len(seen),
                        "cache_hit_rate": stats.hit_rate,
                    })

            candidates = list(seen.values())
            if self._checker is not None:
                feasible = [g for g in candidates if self._checker.satisfied(g)]
                if feasible:
                    candidates = feasible
                else:
                    candidates = [min(candidates,
                                      key=self._checker.total_violation)]
            table = self.objective.evaluate_population(candidates,
                                                       executor=self.executor)
            scores = self.objective.combined_ranks(table.rows())
            genotype = candidates[table.argbest(scores)]

        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators=self.objective.genotype_indicators(genotype),
            history=history,
            ledger=self.objective.ledger,
            wall_seconds=timer.elapsed,
            weights_used=vars(self.objective.weights).copy(),
        )
