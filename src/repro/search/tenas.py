"""TE-NAS baseline: the same pruning search without hardware indicators.

Chen, Gong & Wang, "Neural architecture search on ImageNet in four GPU
hours: a theoretically inspired perspective" (ICLR 2021) — the paper's
primary head-to-head baseline in Table I.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.proxies.base import ProxyConfig
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.search.pruning import MicroNASSearch
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS


class TENASSearch(MicroNASSearch):
    """Pruning-based zero-shot search with NTK + linear regions only."""

    algorithm_name = "tenas"

    def __init__(
        self,
        proxy_config: Optional[ProxyConfig] = None,
        macro_config: Optional[MacroConfig] = None,
        objective: Optional[HybridObjective] = None,
        candidate_ops: Sequence[str] = CANDIDATE_OPS,
        seed: int = 0,
        executor=None,
    ) -> None:
        if objective is None:
            objective = HybridObjective(
                proxy_config=proxy_config,
                weights=ObjectiveWeights(ntk=1.0, linear_regions=1.0,
                                         flops=0.0, latency=0.0),
                macro_config=macro_config,
            )
        else:
            objective = objective.with_weights(
                ObjectiveWeights(ntk=objective.weights.ntk,
                                 linear_regions=objective.weights.linear_regions,
                                 flops=0.0, latency=0.0)
            )
        super().__init__(objective, candidate_ops=candidate_ops, seed=seed,
                         executor=executor)
