"""The MicroNAS hardware-aware pruning-based search (paper contribution #3).

The search starts from the supernet in which every edge carries all five
candidate operations.  Each round it considers removing each still-alive
operation, scores the *pruned supernet* with the hybrid objective, and on
every undecided edge removes the operation whose removal ranks best (i.e.
hurts trainability/expressivity least while improving the hardware
indicators most).  After ``|ops| - 1`` rounds every edge is decided and the
remaining assignment is the discovered architecture.

Under hard constraints, an outer loop adapts the hardware indicator
weights ("MicroNAS adapts FLOPs and latency indicator weights"): if the
discovered architecture violates a bound, the hardware weights are scaled
up and the search re-runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SearchError
from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.search.result import SearchResult
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES
from repro.utils.timing import Timer


class MicroNASSearch:
    """Hardware-aware pruning-based zero-shot search."""

    algorithm_name = "micronas"

    def __init__(
        self,
        objective: HybridObjective,
        candidate_ops: Sequence[str] = CANDIDATE_OPS,
        seed: int = 0,
        executor=None,
    ) -> None:
        if len(candidate_ops) < 2:
            raise SearchError("need at least two candidate operations")
        self.objective = objective
        self.candidate_ops = tuple(candidate_ops)
        self.seed = seed
        self.executor = executor

    # ------------------------------------------------------------------
    def _initial_specs(self) -> List[EdgeSpec]:
        return [EdgeSpec(i, self.candidate_ops) for i in range(NUM_EDGES)]

    @staticmethod
    def _finalise(specs: Sequence[EdgeSpec]) -> Genotype:
        undecided = [s.edge_index for s in specs if not s.decided]
        if undecided:
            raise SearchError(f"edges {undecided} still undecided")
        return Genotype(tuple(spec.alive_ops[0] for spec in specs))

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run the pruning search to a single architecture."""
        specs = self._initial_specs()
        history: List[Dict] = []
        with Timer() as total_timer:
            round_index = 0
            while any(not spec.decided for spec in specs):
                round_index += 1
                candidates: List[Tuple[int, str]] = [
                    (spec.edge_index, op)
                    for spec in specs
                    if not spec.decided
                    for op in spec.alive_ops
                ]
                # The whole round goes through the engine-backed population
                # API; revisited supernet states (e.g. in the constraint
                # adaptation outer loop) resolve from the indicator cache.
                pruned_states = [
                    [
                        spec.without(op) if spec.edge_index == edge_index else spec
                        for spec in specs
                    ]
                    for edge_index, op in candidates
                ]
                indicator_rows = self.objective.supernet_population(
                    pruned_states, executor=self.executor
                )
                self.objective.ledger.add("pruning_candidates",
                                          count=len(candidates))
                ranks = self.objective.combined_ranks(indicator_rows)

                removed: Dict[int, str] = {}
                for spec in specs:
                    if spec.decided:
                        continue
                    edge_candidate_ids = [
                        i for i, (edge, _) in enumerate(candidates)
                        if edge == spec.edge_index
                    ]
                    best_local = min(edge_candidate_ids, key=lambda i: ranks[i])
                    removed[spec.edge_index] = candidates[best_local][1]
                specs = [
                    spec.without(removed[spec.edge_index])
                    if spec.edge_index in removed
                    else spec
                    for spec in specs
                ]
                history.append({
                    "round": round_index,
                    "removed": dict(removed),
                    "alive": {s.edge_index: s.alive_ops for s in specs},
                    "num_candidates": len(candidates),
                })
        genotype = self._finalise(specs)
        indicators = self.objective.genotype_indicators(genotype)
        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators=indicators,
            history=history,
            ledger=self.objective.ledger,
            wall_seconds=total_timer.elapsed,
            weights_used=vars(self.objective.weights).copy(),
        )

    # ------------------------------------------------------------------
    def search_with_constraints(
        self,
        constraints: HardwareConstraints,
        checker: Optional[ConstraintChecker] = None,
        max_outer_rounds: int = 5,
        weight_growth: float = 1.5,
    ) -> SearchResult:
        """Outer-loop hardware-weight adaptation until constraints hold.

        Starts from the objective's current weights (hardware weights are
        bumped to a small floor if zero), reruns the pruning search with
        geometrically growing hardware weights until the result is feasible
        or ``max_outer_rounds`` is exhausted; returns the first feasible
        result (found with the *least* hardware pressure, i.e. the least
        distortion of the trainless objective) or the least-violating one.
        The default growth factor is deliberately gentle — large jumps
        overshoot into trivially-fast but untrainable cells.
        """
        if checker is None:
            checker = ConstraintChecker(
                constraints,
                macro_config=self.objective.macro_config,
                latency_estimator=self.objective.built_latency_estimator,
            )
        weights = self.objective.weights
        if constraints.max_latency_ms is not None and not weights.uses_latency:
            weights = ObjectiveWeights(weights.ntk, weights.linear_regions,
                                       weights.flops, latency=0.5)
        if constraints.max_flops is not None and not weights.uses_flops:
            weights = ObjectiveWeights(weights.ntk, weights.linear_regions,
                                       flops=0.5, latency=weights.latency)

        best: Optional[SearchResult] = None
        best_violation = float("inf")
        outer_history: List[Dict] = []
        for outer in range(max_outer_rounds):
            objective = self.objective.with_weights(weights)
            searcher = MicroNASSearch(objective, self.candidate_ops, seed=self.seed)
            result = searcher.search()
            violation = checker.total_violation(result.genotype)
            outer_history.append({
                "outer_round": outer,
                "weights": vars(weights).copy(),
                "genotype": result.arch_str,
                "violation": violation,
            })
            if violation < best_violation:
                best, best_violation = result, violation
            if violation == 0.0:
                break
            weights = weights.scaled_hardware(weight_growth)
        assert best is not None
        best.history = best.history + outer_history
        return best
