"""Hard deployment constraints for the hardware-aware search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.latency import LatencyEstimator
from repro.hardware.memory import MemoryEstimator
from repro.proxies.flops import count_flops, count_params
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@dataclass(frozen=True)
class HardwareConstraints:
    """Upper bounds a deployable architecture must satisfy.

    ``None`` disables a bound.  µNAS-style constrained search uses all of
    them; the paper's headline experiments constrain latency (and FLOPs).
    """

    max_latency_ms: Optional[float] = None
    max_flops: Optional[float] = None
    max_params: Optional[float] = None
    max_sram_bytes: Optional[float] = None
    max_flash_bytes: Optional[float] = None

    @property
    def constrains_anything(self) -> bool:
        return any(
            bound is not None
            for bound in (self.max_latency_ms, self.max_flops, self.max_params,
                          self.max_sram_bytes, self.max_flash_bytes)
        )


class ConstraintChecker:
    """Evaluates :class:`HardwareConstraints` against concrete genotypes.

    Bounds are checked on the genotype *as given* (dead edges billed),
    matching the on-board ground-truth measurements the bounds are
    calibrated against.  The evaluation engine's indicator values are
    canonical (dead edges elided), so a dead-conv candidate can rank
    better on the latency indicator than the checker's as-built number —
    the checker is deliberately the stricter, deployment-honest view.
    """

    def __init__(
        self,
        constraints: HardwareConstraints,
        macro_config: Optional[MacroConfig] = None,
        latency_estimator: Optional[LatencyEstimator] = None,
        memory_estimator: Optional[MemoryEstimator] = None,
    ) -> None:
        self.constraints = constraints
        self.macro_config = macro_config or MacroConfig.full()
        self._latency = latency_estimator
        self._memory = memory_estimator

    def _latency_estimator(self) -> LatencyEstimator:
        if self._latency is None:
            self._latency = LatencyEstimator(config=self.macro_config)
        return self._latency

    def _memory_estimator(self) -> MemoryEstimator:
        if self._memory is None:
            self._memory = MemoryEstimator(self.macro_config)
        return self._memory

    def violations(self, genotype: Genotype) -> Dict[str, float]:
        """Relative overshoot per violated bound (empty dict = feasible).

        Values are ``measured / bound - 1`` so they are comparable across
        heterogeneous units (ms, FLOPs, bytes).
        """
        c = self.constraints
        out: Dict[str, float] = {}
        if c.max_latency_ms is not None:
            latency = self._latency_estimator().estimate_ms(genotype)
            if latency > c.max_latency_ms:
                out["latency"] = latency / c.max_latency_ms - 1.0
        if c.max_flops is not None:
            flops = count_flops(genotype, self.macro_config)
            if flops > c.max_flops:
                out["flops"] = flops / c.max_flops - 1.0
        if c.max_params is not None:
            params = count_params(genotype, self.macro_config)
            if params > c.max_params:
                out["params"] = params / c.max_params - 1.0
        if c.max_sram_bytes is not None or c.max_flash_bytes is not None:
            report = self._memory_estimator().report(genotype)
            if c.max_sram_bytes is not None and report.peak_sram_bytes > c.max_sram_bytes:
                out["sram"] = report.peak_sram_bytes / c.max_sram_bytes - 1.0
            if c.max_flash_bytes is not None and report.flash_bytes > c.max_flash_bytes:
                out["flash"] = report.flash_bytes / c.max_flash_bytes - 1.0
        return out

    def satisfied(self, genotype: Genotype) -> bool:
        return not self.violations(genotype)

    def total_violation(self, genotype: Genotype) -> float:
        """Sum of relative overshoots (0.0 when feasible)."""
        return sum(self.violations(genotype).values())
