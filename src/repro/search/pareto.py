"""Multi-objective zero-shot search: the accuracy/latency Pareto front.

MicroNAS scalarises its objectives with tunable weights (``w_F``,
``w_L``); picking those weights *is* picking a point on the quality/
latency trade-off curve.  This module exposes the whole curve instead:
rank a zero-shot architecture sample by non-dominated sorting (NSGA-II's
fronts + crowding distance, without the genetic loop — the proxies are
cheap enough to score a sample directly) over

* **trainless quality** — the rank-combined NTK + linear-region score
  (lower is better, exactly the hybrid objective's trainless part),
* **estimated MCU latency** (lower is better),
* optionally **FLOPs**,
* or any registered :class:`~repro.search.costs.CostModel` axis
  (``energy``, ``peak-mem``, ``int8-latency``, ...) via ``objectives=``
  — the front generalises to N-dimensional cost vectors while the
  default quality/latency pair keeps the 2-D behaviour bit-for-bit.

The deliverable is the first front plus a knee point, which a user can
hand to the secondary stage (:mod:`repro.search.macro`) per deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SearchError
from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance for minimisation: a <= b everywhere, < somewhere."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise SearchError("objective vectors must have equal length")
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_sort(points: np.ndarray) -> List[List[int]]:
    """NSGA-II fast non-dominated sort (minimisation).

    Returns fronts as lists of row indices; front 0 is the Pareto set.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current = nxt
    return fronts


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance within one front (larger = lonelier)."""
    points = np.asarray(points, dtype=float)
    n, m = points.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(points[:, k])
        spread = points[order[-1], k] - points[order[0], k]
        distance[order[0]] = distance[order[-1]] = np.inf
        if spread == 0:
            continue
        for pos in range(1, n - 1):
            gap = points[order[pos + 1], k] - points[order[pos - 1], k]
            distance[order[pos]] += gap / spread
    return distance


def crowding_selection_weights(points: np.ndarray) -> np.ndarray:
    """Parent-selection probabilities proportional to crowding distance.

    The steady-state evolutionary loop samples parents from its Pareto
    front; weighting the pick by NSGA-II crowding distance biases
    exploration toward under-populated regions of the front instead of
    wherever non-dominated points happen to cluster.  Guarantees, pinned
    by ``tests/search/test_crowding_selection.py``:

    * probabilities are positive and sum to 1,
    * they are **monotone in crowding distance** — a lonelier point is
      never less likely than a more crowded one (boundary points, whose
      distance is ``inf``, are capped at twice the largest finite
      distance, keeping them the most likely picks without degenerating
      to certainty),
    * fully crowded members (distance 0) keep a small floor probability
      (1% of the maximum weight) so no front member is unreachable,
    * degenerate fronts (≤ 2 points, or all distances equal) fall back
      to the uniform pick.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        raise SearchError("cannot build selection weights for an empty front")
    # Objective axes may carry ±inf (an untrainable candidate's κ can sit
    # on the front through its other axes); clamp each column to its
    # finite range so distances stay defined — infinite members become
    # boundary points, which is exactly their geometric role.
    points = points.copy()
    for k in range(points.shape[1]):
        column = points[:, k]
        finite_mask = np.isfinite(column)
        if not finite_mask.any():
            points[:, k] = 0.0
            continue
        points[:, k] = np.clip(column, column[finite_mask].min(),
                               column[finite_mask].max())
    distance = crowding_distance(points)
    finite = distance[np.isfinite(distance)]
    if finite.size == 0 or finite.max() == 0.0:
        # All-boundary or all-coincident front: nothing to discriminate.
        return np.full(n, 1.0 / n)
    cap = 2.0 * finite.max()
    weights = np.where(np.isfinite(distance), distance, cap)
    weights = weights + weights.max() * 0.01
    return weights / weights.sum()


@dataclass(frozen=True)
class ParetoPoint:
    """One architecture with its objective vector."""

    genotype: Genotype
    quality_rank: float      # trainless combined rank (lower = better)
    latency_ms: float
    flops: float
    crowding: float = field(default=0.0, compare=False)
    #: Extra cost-axis values (name, value), canonically sorted — only
    #: populated when the search ran with non-default ``objectives``.
    costs: Tuple[Tuple[str, float], ...] = ()

    def objectives(self, use_flops: bool) -> Tuple[float, ...]:
        if use_flops:
            return (self.quality_rank, self.latency_ms, self.flops)
        return (self.quality_rank, self.latency_ms)

    def cost(self, axis: str) -> float:
        """The value of one named cost axis on this point."""
        if axis == "latency":
            return self.latency_ms
        if axis == "flops":
            return self.flops
        for name, value in self.costs:
            if name == axis:
                return value
        raise SearchError(f"point carries no cost axis {axis!r}")

    def vector(self, axes: Sequence[str]) -> Tuple[float, ...]:
        """(quality, *costs) objective vector over the named axes."""
        return (self.quality_rank,) + tuple(self.cost(a) for a in axes)


@dataclass
class ParetoResult:
    """The discovered front plus bookkeeping."""

    front: List[ParetoPoint]
    population_size: int
    wall_seconds: float
    num_fronts: int
    #: Cost axes the front was sorted over (quality is always implicit).
    axes: Tuple[str, ...] = ("latency",)

    def knee_point(self) -> ParetoPoint:
        """The balanced pick: minimal normalised distance to the ideal.

        Every objective is min-max normalised over the front; the knee is
        the point closest (L2) to the utopian corner (0, ..., 0).
        """
        if not self.front:
            raise SearchError("empty Pareto front")

        def normalise(values: np.ndarray) -> np.ndarray:
            spread = values.max() - values.min()
            if spread == 0:
                return np.zeros_like(values)
            return (values - values.min()) / spread

        quality = normalise(np.array([p.quality_rank for p in self.front]))
        columns = [normalise(np.array([p.cost(axis) for p in self.front]))
                   for axis in self.axes]
        if len(columns) == 1:
            distance = np.hypot(quality, columns[0])
        else:
            distance = np.sqrt(quality ** 2
                               + sum(column ** 2 for column in columns))
        return self.front[int(np.argmin(distance))]

    def fastest(self) -> ParetoPoint:
        return min(self.front, key=lambda p: p.latency_ms)

    def best_quality(self) -> ParetoPoint:
        return min(self.front, key=lambda p: p.quality_rank)


class ParetoZeroShotSearch:
    """Score a sample with the trainless proxies; return the Pareto front.

    ``include_flops=True`` adds FLOPs as a third objective (useful when
    the deployment board is undecided and latency is board-specific).
    ``objectives`` names the cost axes explicitly — any mix of the
    built-ins and registered :class:`~repro.search.costs.CostModel` axes
    (e.g. ``("energy", "peak-mem")``); the default stays
    ``("latency",)``, preserving the original 2-D behaviour exactly.
    """

    algorithm_name = "pareto-zeroshot"

    def __init__(
        self,
        objective: HybridObjective,
        num_samples: int = 64,
        seed: int = 0,
        include_flops: bool = False,
        space: Optional[NasBench201Space] = None,
        objectives: Optional[Sequence[str]] = None,
    ) -> None:
        if num_samples < 2:
            raise SearchError("need at least two samples")
        self.objective = objective
        self.num_samples = num_samples
        self.seed = seed
        self.include_flops = include_flops
        self.space = space or NasBench201Space()
        axes = list(objectives) if objectives else ["latency"]
        if include_flops and "flops" not in axes:
            axes.append("flops")
        if len(set(axes)) != len(axes):
            raise SearchError(f"duplicate objective axes in {axes}")
        self.axes: Tuple[str, ...] = tuple(axes)

    # ------------------------------------------------------------------
    def _score_population(
        self, genotypes: Sequence[Genotype]
    ) -> List[ParetoPoint]:
        # One population call first: canonical dedupe plus the parallel
        # runtime's executor hook (when the objective carries one); the
        # per-candidate reads below then resolve from the shared cache.
        self.objective.evaluate_population(genotypes)
        rows: List[Dict[str, float]] = []
        for genotype in genotypes:
            indicators = self.objective.genotype_indicators(genotype)
            rows.append(indicators)
        # Quality is the *trainless* part only (NTK + linear regions);
        # hardware enters as its own objective axis, not via the weights.
        trainless = self.objective.with_weights(ObjectiveWeights())
        quality = trainless.combined_ranks(rows)
        points = []
        extra_axes = [a for a in self.axes if a not in ("latency", "flops")]
        engine = self.objective.engine
        models = {axis: engine.cost_model(axis) for axis in extra_axes}
        estimator = (self.objective.latency_estimator
                     if "latency" in self.axes else None)
        for genotype, row, q in zip(genotypes, rows, quality):
            # A row carries a real latency only when the objective's
            # weights requested one; otherwise the engine reports a 0.0
            # placeholder.  Key on *that* — a genuine 0.0 ms estimate
            # from a latency-weighted objective must be kept, not
            # silently re-estimated.
            latency = (row["latency"] if self.objective.weights.uses_latency
                       else None)
            if latency is None:
                latency = (estimator.estimate_ms(genotype)
                           if estimator is not None else 0.0)
            points.append(ParetoPoint(
                genotype=genotype,
                quality_rank=float(q),
                latency_ms=float(latency),
                flops=float(row["flops"]),
                costs=tuple(sorted(
                    (axis, float(engine.cost(genotype, model)))
                    for axis, model in models.items())),
            ))
        return points

    def search(self) -> ParetoResult:
        """Sample, score, sort; return the first front (crowding-annotated)."""
        genotypes = self.space.sample(self.num_samples, rng=self.seed)
        with Timer() as timer:
            points = self._score_population(genotypes)
            vectors = np.array([p.vector(self.axes) for p in points])
            fronts = non_dominated_sort(vectors)
            first = fronts[0]
            crowd = crowding_distance(vectors[first])
            front = [
                ParetoPoint(
                    genotype=points[idx].genotype,
                    quality_rank=points[idx].quality_rank,
                    latency_ms=points[idx].latency_ms,
                    flops=points[idx].flops,
                    crowding=float(c),
                    costs=points[idx].costs,
                )
                for idx, c in zip(first, crowd)
            ]
        front.sort(key=lambda p: p.cost(self.axes[0]))
        return ParetoResult(
            front=front,
            population_size=self.num_samples,
            wall_seconds=timer.elapsed,
            num_fronts=len(fronts),
            axes=self.axes,
        )
