"""Zero-shot random search baseline: sample N, rank by the hybrid objective.

Used by the search-strategy ablation (equal proxy budget, no pruning
structure) — isolates how much the pruning algorithm itself contributes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SearchError
from repro.search.constraints import ConstraintChecker, HardwareConstraints
from repro.search.objective import HybridObjective
from repro.search.result import SearchResult
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import SeedLike, new_rng
from repro.utils.timing import Timer


class ZeroShotRandomSearch:
    """Uniformly sample architectures, keep the best-ranked one."""

    algorithm_name = "random-zeroshot"

    def __init__(
        self,
        objective: HybridObjective,
        num_samples: int = 64,
        space: Optional[NasBench201Space] = None,
        seed: SeedLike = 0,
        executor=None,
    ) -> None:
        if num_samples < 1:
            raise SearchError("num_samples must be >= 1")
        self.objective = objective
        self.num_samples = num_samples
        self.space = space or NasBench201Space()
        self.seed = seed
        self.executor = executor

    def search(self, constraints: Optional[HardwareConstraints] = None,
               checker: Optional[ConstraintChecker] = None) -> SearchResult:
        """Run the sample-and-rank search.

        With constraints, infeasible samples are filtered before ranking;
        if every sample is infeasible the least-violating one is returned.
        A pre-built ``checker`` may be supplied to customise how bounds are
        evaluated (e.g. an int8 memory estimator).
        """
        rng = new_rng(self.seed)
        with Timer() as timer:
            samples: List[Genotype] = self.space.sample(self.num_samples, rng=rng)
            if checker is None and constraints is not None \
                    and constraints.constrains_anything:
                checker = ConstraintChecker(
                    constraints,
                    macro_config=self.objective.macro_config,
                    latency_estimator=self.objective.built_latency_estimator,
                )
            if checker is not None:
                feasible = [g for g in samples if checker.satisfied(g)]
                if feasible:
                    samples = feasible
                else:
                    samples = [min(samples, key=checker.total_violation)]
            # One engine call for the whole population: canonical dedupe +
            # cached indicators instead of per-candidate inline evaluation.
            # The executor (ours, or the objective's) fans unique
            # candidates out over worker processes first.
            table = self.objective.evaluate_population(samples,
                                                       executor=self.executor)
            scores = self.objective.combined_ranks(table.rows())
            self.objective.ledger.add("random_candidates", count=len(samples))
            best_idx = table.argbest(scores)
        genotype = samples[best_idx]
        return SearchResult(
            genotype=genotype,
            algorithm=self.algorithm_name,
            indicators=self.objective.genotype_indicators(genotype),
            history=[{
                "num_samples": len(samples),
                "best_rank": float(scores[best_idx]),
                "unique_canonical": table.unique_canonical,
                "cache_hits": table.cache_hits,
            }],
            ledger=self.objective.ledger,
            wall_seconds=timer.elapsed,
            weights_used=vars(self.objective.weights).copy(),
        )
