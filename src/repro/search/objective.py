"""The hybrid objective function (paper contribution #2).

Combines the two trainless indicators with the two hardware indicators by
*relative ranking*: every candidate in a comparison batch is ranked per
indicator, and ranks are summed with tunable weights::

    score = rank(κ_NTK; ↓) + rank(LR; ↑) + w_F · rank(F; ↓) + w_L · rank(L; ↓)

Lower combined score is better.  ``w_F``/``w_L`` are the paper's "tunable
weight factors for precise control over the contributions of F and L".

Indicator values come from the batched evaluation engine
(:class:`repro.engine.Engine`): one canonicalization-aware cache shared
across repeats, search cycles and algorithms, with vectorized proxy
kernels underneath.  The objective layer owns only weighting, rank
combination and the supernet *expectation* terms.

Beyond the paper's four, :attr:`ObjectiveWeights.costs` weights any
registered :class:`~repro.search.costs.CostModel` axis (``energy``,
``peak-mem``, ``int8-latency``, ...) into the same rank sum — every
cost axis ranks lower-is-better and rides the engine cache under its
model fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.core import Engine
from repro.engine.table import IndicatorTable
from repro.errors import SearchError
from repro.hardware.latency import LatencyEstimator
from repro.hardware.layers import op_layer
from repro.proxies.base import ProxyConfig
from repro.proxies.flops import count_flops
from repro.proxies.ranking import combine_ranks
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import EDGES, NUM_NODES, op_flops
from repro.utils.timing import CostLedger

#: A large-but-finite stand-in for infinite condition numbers so ranking
#: never sees NaN/inf arithmetic surprises.
_INF_SENTINEL = 1e30


#: The four built-in indicator fields (fixed dataclass slots below).
_BUILTIN_AXES = ("ntk", "linear_regions", "flops", "latency")


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative importance of each indicator in the combined rank.

    The paper's four indicators stay as fixed fields; ``costs`` opens
    the rank combination to any registered
    :class:`~repro.search.costs.CostModel` axis (``energy``,
    ``peak-mem``, ``int8-latency``, ...).  It accepts a mapping or pairs
    and is normalized to a sorted tuple so weights stay hashable and
    two objectives over the same axes compare equal.
    """

    ntk: float = 1.0
    linear_regions: float = 1.0
    flops: float = 0.0
    latency: float = 0.0
    costs: Union[Mapping[str, float], Tuple[Tuple[str, float], ...]] = \
        field(default=())

    def __post_init__(self) -> None:
        pairs = (self.costs.items() if isinstance(self.costs, Mapping)
                 else self.costs)
        canonical = tuple(sorted((str(name), float(weight))
                                 for name, weight in pairs))
        names = [name for name, _ in canonical]
        for name in names:
            if name in _BUILTIN_AXES:
                raise SearchError(
                    f"cost axis {name!r} shadows a built-in indicator; "
                    f"set the {name!r} field instead")
        if len(set(names)) != len(names):
            raise SearchError(f"duplicate cost axes in {names}")
        object.__setattr__(self, "costs", canonical)

    def scaled_hardware(self, factor: float) -> "ObjectiveWeights":
        """Multiply every hardware weight (constraint adaptation step):
        flops, latency, and each extra cost axis."""
        return replace(
            self, flops=self.flops * factor, latency=self.latency * factor,
            costs=tuple((name, weight * factor)
                        for name, weight in self.costs))

    @property
    def uses_flops(self) -> bool:
        return self.flops > 0.0

    @property
    def uses_latency(self) -> bool:
        return self.latency > 0.0

    @property
    def cost_weights(self) -> Dict[str, float]:
        """Extra cost axes with positive weight, name -> weight."""
        return {name: weight for name, weight in self.costs if weight > 0.0}

    @property
    def uses_costs(self) -> bool:
        return bool(self.cost_weights)


#: Rank directions: True = higher raw value is better.
_DIRECTIONS = {
    "ntk": False,
    "linear_regions": True,
    "flops": False,
    "latency": False,
}


class HybridObjective:
    """Evaluates and rank-combines indicators for genotypes and supernets."""

    def __init__(
        self,
        proxy_config: Optional[ProxyConfig] = None,
        weights: Optional[ObjectiveWeights] = None,
        macro_config: Optional[MacroConfig] = None,
        latency_estimator: Optional[LatencyEstimator] = None,
        ledger: Optional[CostLedger] = None,
        engine: Optional[Engine] = None,
        executor=None,
    ) -> None:
        self.weights = weights or ObjectiveWeights()
        self.executor = executor
        if engine is None:
            engine = Engine(
                proxy_config=proxy_config,
                macro_config=macro_config,
                latency_estimator=latency_estimator,
                ledger=ledger,
            )
        elif any(arg is not None for arg in
                 (proxy_config, macro_config, latency_estimator, ledger)):
            raise SearchError(
                "pass either a pre-built engine or its configuration, not "
                "both — the engine's config would silently win"
            )
        self.engine = engine
        self.proxy_config = engine.proxy_config
        self.macro_config = engine.macro_config

    # ------------------------------------------------------------------
    @property
    def ledger(self) -> CostLedger:
        """The engine's cost ledger (shared across objective clones)."""
        return self.engine.ledger

    @property
    def latency_estimator(self) -> LatencyEstimator:
        """Lazily profiled latency estimator (built on first use)."""
        return self.engine.latency_estimator

    @property
    def built_latency_estimator(self) -> Optional[LatencyEstimator]:
        """The estimator if already built, else None (no profiling cost).

        The public seam for composing layers — constraint checkers and
        search loops reuse an existing estimator through this instead of
        reaching into engine internals.
        """
        return self.engine.built_latency_estimator

    def cost_models(self) -> List:
        """The registered models behind the weights' extra cost axes."""
        return [self.engine.cost_model(name)
                for name in self.weights.cost_weights]

    def with_weights(self, weights: ObjectiveWeights) -> "HybridObjective":
        """Same engine (estimators, cache, ledger), different weights."""
        return HybridObjective(weights=weights, engine=self.engine,
                               executor=self.executor)

    # ------------------------------------------------------------------
    # Genotype-level indicators (engine-cached, canonicalization-aware)
    # ------------------------------------------------------------------
    def genotype_indicators(self, genotype: Genotype) -> Dict[str, float]:
        """Raw indicator values for a concrete architecture (the four
        built-ins, plus one entry per weighted extra cost axis)."""
        row = self.engine.evaluate(genotype,
                                   with_latency=self.weights.uses_latency)
        for model in self.cost_models():
            row[model.name] = self.engine.cost(genotype, model)
        return row

    def evaluate_population(
        self, genotypes: Sequence[Genotype],
        executor=None,
    ) -> IndicatorTable:
        """Indicator table for a population (the search loops' entry point).

        ``executor`` overrides the objective's default executor for this
        call; either is handed to the engine's parallel-runtime hook.
        """
        return self.engine.evaluate_population(
            genotypes,
            with_latency=self.weights.uses_latency,
            executor=executor if executor is not None else self.executor,
            cost_models=self.cost_models() or None,
        )

    # ------------------------------------------------------------------
    # Supernet-level indicators (for the pruning search)
    # ------------------------------------------------------------------
    def supernet_indicators(self, edge_specs: Sequence[EdgeSpec]) -> Dict[str, float]:
        """Indicator values for a supernet state (alive-op sets)."""
        if self.weights.uses_costs:
            raise SearchError(
                "extra cost axes are genotype-level models; the supernet "
                "(pruning) path supports only the built-in indicators — "
                f"drop cost weights {sorted(self.weights.cost_weights)} "
                "or use a genotype-level algorithm")
        out: Dict[str, float] = {
            "ntk": self.engine.supernet_ntk(edge_specs),
            "linear_regions": self.engine.supernet_linear_regions(edge_specs),
            "flops": self.expected_flops(edge_specs),
        }
        if self.weights.uses_latency:
            out["latency"] = self.expected_latency_ms(edge_specs)
        else:
            out["latency"] = 0.0
        return out

    def supernet_population(
        self, spec_lists: Sequence[Sequence[EdgeSpec]],
        executor=None,
    ) -> List[Dict[str, float]]:
        """Indicator rows for a batch of supernet states (pruning rounds).

        Repeated states — e.g. identical candidate prunings re-scored by
        the constraint-adaptation outer loop — resolve from the cache.
        An ``executor`` (the objective's by default) pre-computes missing
        states in worker processes before the serial assembly below.
        """
        executor = executor if executor is not None else self.executor
        if executor is not None:
            executor.warm_supernets(self.engine, spec_lists)
        return [self.supernet_indicators(specs) for specs in spec_lists]

    def expected_flops(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Expected deployment FLOPs under a uniform op choice per edge."""
        config = self.macro_config
        total = float(count_flops(Genotype(("none",) * 6), config))  # fixed parts
        for c, s in zip(config.stage_channels, config.stage_sizes):
            per_cell = 0.0
            for spec in edge_specs:
                if not spec.alive_ops:
                    continue
                per_cell += np.mean([op_flops(op, c, s, s) for op in spec.alive_ops])
            total += config.cells_per_stage * per_cell
        return total

    def expected_latency_ms(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Expected deployment latency under a uniform op choice per edge.

        Fixed parts (stem, reductions, head, constant overhead) come from
        the empty-cell network; per-edge terms average the LUT latency of
        each alive op; node-add kernels are included in expectation via the
        probability that each edge is active (non-``none``).
        """
        estimator = self.latency_estimator
        config = self.macro_config
        total = estimator.estimate_ms(Genotype(("none",) * 6))
        lut = estimator.lut
        for c, s in zip(config.stage_channels, config.stage_sizes):
            per_cell = 0.0
            active_prob = [0.0] * len(EDGES)
            for spec in edge_specs:
                if not spec.alive_ops:
                    continue
                entries = []
                for op in spec.alive_ops:
                    layer = op_layer(op, c, s)
                    entries.append(0.0 if layer is None else lut.lookup(layer))
                per_cell += float(np.mean(entries))
                active_prob[spec.edge_index] = np.mean(
                    [op != "none" for op in spec.alive_ops]
                )
            add_ms = lut.entries.get(("add", c, c, s, s, 1, 1), 0.0)
            for node in range(1, NUM_NODES):
                expected_in = sum(
                    active_prob[idx] for idx, (_, dst) in enumerate(EDGES) if dst == node
                )
                per_cell += max(0.0, expected_in - 1.0) * add_ms
            total += config.cells_per_stage * per_cell
        return total

    # ------------------------------------------------------------------
    # Rank combination
    # ------------------------------------------------------------------
    def combined_ranks(self, indicator_rows: List[Dict[str, float]]) -> np.ndarray:
        """Weighted rank sum across a comparison batch (lower = better)."""
        names = ["ntk", "linear_regions"]
        weights = {"ntk": self.weights.ntk,
                   "linear_regions": self.weights.linear_regions}
        if self.weights.uses_flops:
            names.append("flops")
            weights["flops"] = self.weights.flops
        if self.weights.uses_latency:
            names.append("latency")
            weights["latency"] = self.weights.latency
        directions = dict(_DIRECTIONS)
        for name, weight in self.weights.cost_weights.items():
            names.append(name)
            weights[name] = weight
            directions[name] = False  # every cost axis: lower is better
        columns = {}
        for name in names:
            raw = np.array([row[name] for row in indicator_rows], dtype=float)
            raw[~np.isfinite(raw)] = _INF_SENTINEL
            columns[name] = raw
        return combine_ranks(columns, directions, weights)

    def score_genotypes(self, genotypes: Sequence[Genotype]) -> np.ndarray:
        """Combined rank score for a batch of architectures.

        Routed through the engine's population API: the batch is
        deduplicated canonically and every indicator comes from (or lands
        in) the shared cache.
        """
        return self.combined_ranks(self.evaluate_population(genotypes).rows())
