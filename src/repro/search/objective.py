"""The hybrid objective function (paper contribution #2).

Combines the two trainless indicators with the two hardware indicators by
*relative ranking*: every candidate in a comparison batch is ranked per
indicator, and ranks are summed with tunable weights::

    score = rank(κ_NTK; ↓) + rank(LR; ↑) + w_F · rank(F; ↓) + w_L · rank(L; ↓)

Lower combined score is better.  ``w_F``/``w_L`` are the paper's "tunable
weight factors for precise control over the contributions of F and L".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.latency import LatencyEstimator
from repro.hardware.layers import op_layer
from repro.proxies.base import ProxyConfig
from repro.proxies.flops import count_flops
from repro.proxies.linear_regions import count_line_regions, supernet_line_regions
from repro.proxies.ntk import ntk_condition_number, supernet_ntk_condition_number
from repro.proxies.ranking import combine_ranks
from repro.searchspace.cell import EdgeSpec
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import EDGES, NUM_NODES, op_flops
from repro.utils.timing import CostLedger, Timer

#: A large-but-finite stand-in for infinite condition numbers so ranking
#: never sees NaN/inf arithmetic surprises.
_INF_SENTINEL = 1e30


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative importance of each indicator in the combined rank."""

    ntk: float = 1.0
    linear_regions: float = 1.0
    flops: float = 0.0
    latency: float = 0.0

    def scaled_hardware(self, factor: float) -> "ObjectiveWeights":
        """Multiply both hardware weights (constraint adaptation step)."""
        return replace(self, flops=self.flops * factor,
                       latency=self.latency * factor)

    @property
    def uses_flops(self) -> bool:
        return self.flops > 0.0

    @property
    def uses_latency(self) -> bool:
        return self.latency > 0.0


#: Rank directions: True = higher raw value is better.
_DIRECTIONS = {
    "ntk": False,
    "linear_regions": True,
    "flops": False,
    "latency": False,
}


class HybridObjective:
    """Evaluates and rank-combines indicators for genotypes and supernets."""

    def __init__(
        self,
        proxy_config: Optional[ProxyConfig] = None,
        weights: Optional[ObjectiveWeights] = None,
        macro_config: Optional[MacroConfig] = None,
        latency_estimator: Optional[LatencyEstimator] = None,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.proxy_config = proxy_config or ProxyConfig()
        self.weights = weights or ObjectiveWeights()
        self.macro_config = macro_config or MacroConfig.full()
        self._latency_estimator = latency_estimator
        self.ledger = ledger if ledger is not None else CostLedger()

    # ------------------------------------------------------------------
    @property
    def latency_estimator(self) -> LatencyEstimator:
        """Lazily profiled latency estimator (built on first use)."""
        if self._latency_estimator is None:
            self._latency_estimator = LatencyEstimator(config=self.macro_config)
        return self._latency_estimator

    def with_weights(self, weights: ObjectiveWeights) -> "HybridObjective":
        """Same estimators and ledger, different indicator weights."""
        clone = HybridObjective(
            proxy_config=self.proxy_config,
            weights=weights,
            macro_config=self.macro_config,
            latency_estimator=self._latency_estimator,
            ledger=self.ledger,
        )
        return clone

    # ------------------------------------------------------------------
    # Genotype-level indicators
    # ------------------------------------------------------------------
    def genotype_indicators(self, genotype: Genotype) -> Dict[str, float]:
        """All four raw indicator values for a concrete architecture."""
        out: Dict[str, float] = {}
        with Timer() as t_ntk:
            out["ntk"] = ntk_condition_number(genotype, self.proxy_config)
        self.ledger.add("ntk_eval", t_ntk.elapsed)
        with Timer() as t_lr:
            out["linear_regions"] = count_line_regions(genotype, self.proxy_config)
        self.ledger.add("lr_eval", t_lr.elapsed)
        out["flops"] = float(count_flops(genotype, self.macro_config))
        if self.weights.uses_latency:
            with Timer() as t_lat:
                out["latency"] = self.latency_estimator.estimate_ms(genotype)
            self.ledger.add("latency_eval", t_lat.elapsed)
        else:
            out["latency"] = 0.0
        return out

    # ------------------------------------------------------------------
    # Supernet-level indicators (for the pruning search)
    # ------------------------------------------------------------------
    def supernet_indicators(self, edge_specs: Sequence[EdgeSpec]) -> Dict[str, float]:
        """Indicator values for a supernet state (alive-op sets)."""
        out: Dict[str, float] = {}
        with Timer() as t_ntk:
            out["ntk"] = supernet_ntk_condition_number(edge_specs, self.proxy_config)
        self.ledger.add("ntk_eval", t_ntk.elapsed)
        edge_op_sets = [spec.alive_ops for spec in edge_specs]
        with Timer() as t_lr:
            out["linear_regions"] = supernet_line_regions(edge_op_sets, self.proxy_config)
        self.ledger.add("lr_eval", t_lr.elapsed)
        out["flops"] = self.expected_flops(edge_specs)
        if self.weights.uses_latency:
            out["latency"] = self.expected_latency_ms(edge_specs)
        else:
            out["latency"] = 0.0
        return out

    def expected_flops(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Expected deployment FLOPs under a uniform op choice per edge."""
        config = self.macro_config
        total = float(count_flops(Genotype(("none",) * 6), config))  # fixed parts
        for c, s in zip(config.stage_channels, config.stage_sizes):
            per_cell = 0.0
            for spec in edge_specs:
                if not spec.alive_ops:
                    continue
                per_cell += np.mean([op_flops(op, c, s, s) for op in spec.alive_ops])
            total += config.cells_per_stage * per_cell
        return total

    def expected_latency_ms(self, edge_specs: Sequence[EdgeSpec]) -> float:
        """Expected deployment latency under a uniform op choice per edge.

        Fixed parts (stem, reductions, head, constant overhead) come from
        the empty-cell network; per-edge terms average the LUT latency of
        each alive op; node-add kernels are included in expectation via the
        probability that each edge is active (non-``none``).
        """
        estimator = self.latency_estimator
        config = self.macro_config
        total = estimator.estimate_ms(Genotype(("none",) * 6))
        lut = estimator.lut
        for c, s in zip(config.stage_channels, config.stage_sizes):
            per_cell = 0.0
            active_prob = [0.0] * len(EDGES)
            for spec in edge_specs:
                if not spec.alive_ops:
                    continue
                entries = []
                for op in spec.alive_ops:
                    layer = op_layer(op, c, s)
                    entries.append(0.0 if layer is None else lut.lookup(layer))
                per_cell += float(np.mean(entries))
                active_prob[spec.edge_index] = np.mean(
                    [op != "none" for op in spec.alive_ops]
                )
            add_ms = lut.entries.get(("add", c, c, s, s, 1, 1), 0.0)
            for node in range(1, NUM_NODES):
                expected_in = sum(
                    active_prob[idx] for idx, (_, dst) in enumerate(EDGES) if dst == node
                )
                per_cell += max(0.0, expected_in - 1.0) * add_ms
            total += config.cells_per_stage * per_cell
        return total

    # ------------------------------------------------------------------
    # Rank combination
    # ------------------------------------------------------------------
    def combined_ranks(self, indicator_rows: List[Dict[str, float]]) -> np.ndarray:
        """Weighted rank sum across a comparison batch (lower = better)."""
        names = ["ntk", "linear_regions"]
        weights = {"ntk": self.weights.ntk,
                   "linear_regions": self.weights.linear_regions}
        if self.weights.uses_flops:
            names.append("flops")
            weights["flops"] = self.weights.flops
        if self.weights.uses_latency:
            names.append("latency")
            weights["latency"] = self.weights.latency
        columns = {}
        for name in names:
            raw = np.array([row[name] for row in indicator_rows], dtype=float)
            raw[~np.isfinite(raw)] = _INF_SENTINEL
            columns[name] = raw
        return combine_ranks(columns, _DIRECTIONS, weights)

    def score_genotypes(self, genotypes: Sequence[Genotype]) -> np.ndarray:
        """Combined rank score for a batch of architectures."""
        rows = [self.genotype_indicators(g) for g in genotypes]
        return self.combined_ranks(rows)
