"""Search algorithms (Section II of the paper).

* :class:`MicroNASSearch` — the paper's hardware-aware pruning-based
  search over the supernet, driven by the hybrid objective (NTK + linear
  regions + FLOPs/latency indicators with tunable weights), with outer-loop
  weight adaptation under hard constraints,
* :class:`TENASSearch` — the TE-NAS baseline (same pruning, no hardware
  indicators),
* :class:`ZeroShotRandomSearch` — sample-and-rank baseline under the same
  proxy budget,
* :class:`ConstrainedEvolutionarySearch` — the µNAS-style train-based
  baseline (aging evolution; every candidate pays simulated training time),
* :class:`TrainlessEvolutionarySearch` — the same aging-evolution loop
  driven by the batched trainless engine (no training, cache-backed),
* :class:`SteadyStateEvolutionarySearch` — event-driven asynchronous
  evolution over the async runtime: ``n_workers`` candidates stay in
  flight, children are mutated from the current Pareto set the moment any
  future resolves (no generation barriers),
* :class:`MacroStageSearch` — the secondary stage: fit the discovered cell
  onto a device by searching cells-per-stage and channel width.

All indicator values flow through :class:`repro.engine.Engine` — the
batched, canonicalization-aware evaluation layer — rather than being
re-derived inline by each algorithm.
"""

from repro.search.objective import HybridObjective, ObjectiveWeights
from repro.search.costs import (
    CostModel,
    DEPLOY_PRECISIONS,
    DeployPrecision,
    FLOAT32_DEPLOY,
    INT8_DEPLOY,
    build_cost_model,
    register_cost_model,
    registered_cost_models,
    resolve_deploy_precision,
)
from repro.search.constraints import HardwareConstraints
from repro.search.result import SearchResult
from repro.search.pruning import MicroNASSearch
from repro.search.tenas import TENASSearch
from repro.search.random_search import ZeroShotRandomSearch
from repro.search.evolutionary import (
    ConstrainedEvolutionarySearch,
    EvolutionConfig,
    SteadyStateEvolutionarySearch,
    TrainlessEvolutionarySearch,
)
from repro.search.pareto import (
    ParetoPoint,
    ParetoResult,
    ParetoZeroShotSearch,
    crowding_distance,
    dominates,
    non_dominated_sort,
)
from repro.search.macro import (
    DeploymentPlan,
    MacroCandidate,
    MacroSearchSpace,
    MacroStageSearch,
    device_constraints,
    plan_deployment,
)

__all__ = [
    "HybridObjective",
    "ObjectiveWeights",
    "CostModel",
    "DeployPrecision",
    "DEPLOY_PRECISIONS",
    "FLOAT32_DEPLOY",
    "INT8_DEPLOY",
    "build_cost_model",
    "register_cost_model",
    "registered_cost_models",
    "resolve_deploy_precision",
    "HardwareConstraints",
    "SearchResult",
    "MicroNASSearch",
    "TENASSearch",
    "ZeroShotRandomSearch",
    "ConstrainedEvolutionarySearch",
    "SteadyStateEvolutionarySearch",
    "TrainlessEvolutionarySearch",
    "EvolutionConfig",
    "DeploymentPlan",
    "MacroCandidate",
    "MacroSearchSpace",
    "MacroStageSearch",
    "device_constraints",
    "plan_deployment",
    "ParetoPoint",
    "ParetoResult",
    "ParetoZeroShotSearch",
    "crowding_distance",
    "dominates",
    "non_dominated_sort",
]
