"""Oracle frontiers: the best any search could do under a budget.

NAS-Bench-201's headline virtue is that the space is small enough to
enumerate, so the *oracle* answer to "best accuracy under X ms" is
computable exactly.  That turns search evaluation from "is this good?"
into the sharper question the regret study (A13) asks: *how far from
optimal* does zero-shot search land?

Enumeration runs over canonical forms only (9,445 of 15,625 strings —
see :mod:`repro.searchspace.stats`): the surrogate accuracy is
canonicalisation-invariant, and the canonical form is the right
deployment object for latency (an optimising runtime dead-code-eliminates
unreachable branches; see :mod:`repro.hardware.graphopt`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.benchdata.surrogate import SurrogateModel
from repro.errors import BenchmarkDataError
from repro.hardware.latency import LatencyEstimator
from repro.searchspace.canonical import canonicalize
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space


@dataclass(frozen=True)
class OracleTable:
    """Exhaustive (latency, accuracy) pairs over canonical architectures."""

    indices: np.ndarray       # canonical arch indices
    latencies_ms: np.ndarray
    accuracies: np.ndarray
    dataset: str

    def __len__(self) -> int:
        return len(self.indices)

    # ------------------------------------------------------------------
    def best_under_latency(self, budget_ms: float) -> Tuple[Genotype, float]:
        """The most accurate architecture with latency <= budget."""
        feasible = self.latencies_ms <= budget_ms
        if not feasible.any():
            raise BenchmarkDataError(
                f"no architecture meets {budget_ms:g} ms; fastest is "
                f"{self.latencies_ms.min():.1f} ms"
            )
        best = np.flatnonzero(feasible)[np.argmax(self.accuracies[feasible])]
        return Genotype.from_index(int(self.indices[best])), float(
            self.accuracies[best]
        )

    def regret(self, genotype: Genotype, budget_ms: float) -> float:
        """Accuracy gap between a found architecture and the oracle."""
        _, oracle_acc = self.best_under_latency(budget_ms)
        surrogate = SurrogateModel()
        return oracle_acc - surrogate.mean_accuracy(
            canonicalize(genotype), self.dataset
        )

    def pareto_frontier(self) -> List[Tuple[float, float]]:
        """(latency, accuracy) knees: the exact accuracy/latency frontier."""
        order = np.argsort(self.latencies_ms)
        frontier: List[Tuple[float, float]] = []
        best_acc = -np.inf
        for idx in order:
            acc = float(self.accuracies[idx])
            if acc > best_acc:
                frontier.append((float(self.latencies_ms[idx]), acc))
                best_acc = acc
        return frontier


def build_oracle_table(
    estimator: LatencyEstimator,
    dataset: str = "cifar10",
    space: Optional[NasBench201Space] = None,
    limit: Optional[int] = None,
) -> OracleTable:
    """Enumerate canonical architectures: estimated latency + accuracy.

    ``limit`` truncates the enumeration (deterministically, by canonical
    index order) — useful for tests; production runs enumerate all
    canonical classes in well under a minute.
    """
    space = space or NasBench201Space()
    surrogate = SurrogateModel()
    seen = set()
    indices: List[int] = []
    latencies: List[float] = []
    accuracies: List[float] = []
    for genotype in space:
        canon = canonicalize(genotype)
        key = canon.to_index()
        if key in seen:
            continue
        seen.add(key)
        indices.append(key)
        latencies.append(estimator.estimate_ms(canon))
        accuracies.append(surrogate.mean_accuracy(canon, dataset))
        if limit is not None and len(indices) >= limit:
            break
    return OracleTable(
        indices=np.array(indices, dtype=np.int64),
        latencies_ms=np.array(latencies),
        accuracies=np.array(accuracies),
        dataset=dataset,
    )
