"""Simulated training-cost model.

Train-based NAS (µNAS) pays full training for every candidate; the paper's
1104× efficiency claim compares those GPU-hours against MicroNAS's proxy
wall-clock.  This model assigns each architecture a deterministic training
time calibrated to NAS-Bench-201's reported per-epoch times on a single
modern GPU: cost grows affinely with the network's FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.proxies.flops import count_flops
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig


@dataclass(frozen=True)
class TrainingCostModel:
    """GPU-seconds to train one architecture for ``epochs`` epochs.

    ``base_seconds_per_epoch`` covers data loading and fixed overheads;
    ``seconds_per_mflop_epoch`` is the compute term.  Defaults give the
    all-3×3 cell (~190 MFLOPs) ≈ 23 s/epoch ≈ 1.3 GPU-hours for the
    benchmark's 200-epoch schedule, consistent with the published logs.
    """

    epochs: int = 200
    base_seconds_per_epoch: float = 4.0
    seconds_per_mflop_epoch: float = 0.10

    def seconds_per_epoch(self, genotype: Genotype,
                          config: MacroConfig = None) -> float:
        mflops = count_flops(genotype, config or MacroConfig.full()) / 1e6
        return self.base_seconds_per_epoch + self.seconds_per_mflop_epoch * mflops

    def training_seconds(self, genotype: Genotype,
                         config: MacroConfig = None,
                         epochs: int = None) -> float:
        """Full-training GPU-seconds for one candidate."""
        n_epochs = epochs if epochs is not None else self.epochs
        return n_epochs * self.seconds_per_epoch(genotype, config)

    def training_gpu_hours(self, genotype: Genotype,
                           config: MacroConfig = None,
                           epochs: int = None) -> float:
        return self.training_seconds(genotype, config, epochs) / 3600.0
