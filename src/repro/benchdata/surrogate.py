"""Analytic accuracy surrogate for NAS-Bench-201 architectures.

The surrogate maps topology features to test accuracy per dataset::

    acc = guess + (ceiling - guess) * quality,   quality in [0, 1]

``quality`` combines an **expressivity** term (operator composition with
diminishing returns — a second 3×3 conv helps less than the first), a
**trainability** term (moderate effective depth is best; skip connections
help; excessive depth without skips hurts), and structural penalties
(pooling on every input→output path, near-disconnection).  Disconnected
cells collapse to random-guess accuracy, exactly as in the real benchmark.

Noise is seeded per (architecture, dataset, trial seed) so repeated queries
are reproducible and different "training seeds" give correlated but
distinct results, mirroring the three seeds the real benchmark provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import BenchmarkDataError
from repro.searchspace.canonical import canonicalize
from repro.searchspace.features import TopologyFeatures, extract_features
from repro.searchspace.genotype import Genotype
from repro.utils.rng import new_rng, stable_seed


@dataclass(frozen=True)
class DatasetDifficulty:
    """Per-dataset calibration of the surrogate."""

    guess_accuracy: float  # random-guess floor (100 / classes)
    ceiling: float         # best achievable accuracy in the space
    noise_sigma: float     # seed-to-seed accuracy spread near the top


#: Calibrated to the published NAS-Bench-201 accuracy ranges.
DIFFICULTY: Dict[str, DatasetDifficulty] = {
    "cifar10": DatasetDifficulty(10.0, 94.6, 0.22),
    "cifar100": DatasetDifficulty(1.0, 73.8, 0.45),
    "imagenet16-120": DatasetDifficulty(0.83, 47.6, 0.55),
}


def _expressivity(features: TopologyFeatures) -> float:
    """Saturating benefit of convolutional capacity, in [0, 1]."""
    capacity = features.num_conv3x3 + 0.45 * features.num_conv1x1
    saturating = 1.0 - math.exp(-0.55 * capacity)
    path_diversity = math.log1p(features.num_paths) / math.log1p(7)
    return 0.82 * saturating + 0.18 * min(1.0, path_diversity)


def _trainability(features: TopologyFeatures) -> float:
    """Preference for moderate depth and skip connectivity, in [0, 1]."""
    depth = features.max_conv_depth
    # Depth 2-3 trains best at this scale; deeper cells pay a penalty that
    # skip connections partially recover (mirroring what the NTK condition
    # number measures on real networks).
    depth_term = math.exp(-0.5 * ((depth - 2.4) / 1.6) ** 2)
    skip_bonus = 0.10 if features.num_skip > 0 else 0.0
    deep_no_skip_penalty = 0.12 if (depth >= 3 and features.num_skip == 0) else 0.0
    return min(1.0, max(0.0, depth_term + skip_bonus - deep_no_skip_penalty))


def _quality(features: TopologyFeatures) -> float:
    """Noise-free architecture quality in [0, 1]."""
    if not features.is_connected:
        return 0.0
    expressivity = _expressivity(features)
    trainability = _trainability(features)
    quality = 0.30 + 0.46 * expressivity + 0.30 * trainability
    if features.pool_on_all_paths:
        quality -= 0.14
    if features.conv_count == 0:
        # Connected but linear (skip/pool only): can't fit much.
        quality -= 0.22
    return min(1.0, max(0.0, quality))


class SurrogateModel:
    """Deterministic accuracy oracle for (genotype, dataset, seed) triples."""

    def __init__(self, noise_scale: float = 1.0) -> None:
        if noise_scale < 0:
            raise BenchmarkDataError("noise_scale must be non-negative")
        self.noise_scale = noise_scale

    def quality(self, genotype: Genotype) -> float:
        """Noise-free quality score in [0, 1] (useful for analysis).

        Computed on the *canonical* genotype: operations on dead edges
        (unreachable from the input or unable to reach the output) never
        influence the trained function, so they must not influence quality.
        """
        return _quality(extract_features(canonicalize(genotype)))

    def accuracy(self, genotype: Genotype, dataset: str = "cifar10",
                 seed: int = 0) -> float:
        """Simulated final test accuracy (percent) after full training."""
        key = dataset.lower()
        if key not in DIFFICULTY:
            raise BenchmarkDataError(
                f"unknown dataset {dataset!r}; expected one of {sorted(DIFFICULTY)}"
            )
        difficulty = DIFFICULTY[key]
        # Features of the canonical form (dead edges cannot affect the
        # trained function); noise stays seeded by the *raw* index, like
        # independently-trained duplicate entries in the real benchmark.
        features = extract_features(canonicalize(genotype))
        quality = _quality(features)
        rng = new_rng(stable_seed("acc", key, seed, genotype.to_index()))
        if not features.is_connected:
            jitter = abs(rng.normal(0.0, 0.3))
            return min(100.0, difficulty.guess_accuracy + jitter)
        noise = rng.normal(0.0, difficulty.noise_sigma * self.noise_scale)
        # Quality's effect saturates near the ceiling: top architectures are
        # separated mostly by noise, as in the real benchmark.
        shaped = quality**0.8
        acc = (
            difficulty.guess_accuracy
            + (difficulty.ceiling - difficulty.guess_accuracy) * shaped
            + noise
        )
        return float(min(100.0, max(difficulty.guess_accuracy * 0.5, acc)))

    def mean_accuracy(self, genotype: Genotype, dataset: str = "cifar10",
                      seeds: Optional[range] = None) -> float:
        """Average accuracy across training seeds (default 3 seeds)."""
        seeds = seeds if seeds is not None else range(3)
        values = [self.accuracy(genotype, dataset, seed) for seed in seeds]
        return float(np.mean(values))


_DEFAULT_MODEL = SurrogateModel()


def accuracy_of(genotype: Genotype, dataset: str = "cifar10", seed: int = 0) -> float:
    """Module-level convenience wrapper over a shared :class:`SurrogateModel`."""
    return _DEFAULT_MODEL.accuracy(genotype, dataset, seed)
