"""Surrogate NAS-Bench-201 benchmark data.

The real NAS-Bench-201 ships pre-trained accuracy tables for all 15,625
architectures on CIFAR-10 / CIFAR-100 / ImageNet16-120; those tables are a
~2 GB gated download.  This package substitutes a deterministic *analytic
surrogate*: per-architecture accuracy is a function of the cell's
topological features (effective conv depth, operator composition, skip
connectivity, disconnection) plus seeded noise, calibrated to the
benchmark's published accuracy ranges.  A training-cost model provides the
simulated GPU-hours that train-based baselines (µNAS) pay per candidate.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.benchdata.surrogate import SurrogateModel, accuracy_of
from repro.benchdata.cost import TrainingCostModel
from repro.benchdata.api import ArchRecord, SurrogateBenchmarkAPI
from repro.benchdata.oracle import OracleTable, build_oracle_table

__all__ = [
    "SurrogateModel",
    "accuracy_of",
    "TrainingCostModel",
    "ArchRecord",
    "SurrogateBenchmarkAPI",
    "OracleTable",
    "build_oracle_table",
]
