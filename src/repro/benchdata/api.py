"""A NAS-Bench-201-style query API over the surrogate tables.

Mirrors the shape of the original ``NASBench201API``: query by architecture
string, integer index, or :class:`Genotype`; returns an :class:`ArchRecord`
with accuracy per dataset/seed, FLOPs, params and simulated training cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.benchdata.cost import TrainingCostModel
from repro.benchdata.surrogate import DIFFICULTY, SurrogateModel
from repro.errors import BenchmarkDataError
from repro.proxies.flops import count_flops, count_params
from repro.searchspace.genotype import Genotype
from repro.searchspace.network import MacroConfig
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES

#: Number of architectures in the NAS-Bench-201 space (5^6).
SPACE_SIZE = len(CANDIDATE_OPS) ** NUM_EDGES

ArchKey = Union[int, str, Genotype]


@dataclass(frozen=True)
class ArchRecord:
    """Everything the benchmark knows about one architecture."""

    genotype: Genotype
    index: int
    flops: int
    params: int
    accuracies: Dict[str, float]       # dataset -> mean test accuracy
    per_seed: Dict[Tuple[str, int], float]  # (dataset, seed) -> accuracy
    training_seconds: float

    @property
    def arch_str(self) -> str:
        return self.genotype.to_arch_str()

    def accuracy(self, dataset: str = "cifar10") -> float:
        key = dataset.lower()
        if key not in self.accuracies:
            raise BenchmarkDataError(f"no accuracy recorded for {dataset!r}")
        return self.accuracies[key]


class SurrogateBenchmarkAPI:
    """Query interface over the analytic surrogate (drop-in NB201 stand-in)."""

    def __init__(
        self,
        datasets: Optional[List[str]] = None,
        seeds: Tuple[int, ...] = (0, 1, 2),
        surrogate: Optional[SurrogateModel] = None,
        cost_model: Optional[TrainingCostModel] = None,
        macro_config: Optional[MacroConfig] = None,
    ) -> None:
        self.datasets = [d.lower() for d in (datasets or list(DIFFICULTY))]
        for dataset in self.datasets:
            if dataset not in DIFFICULTY:
                raise BenchmarkDataError(f"unknown dataset {dataset!r}")
        self.seeds = seeds
        self.surrogate = surrogate or SurrogateModel()
        self.cost_model = cost_model or TrainingCostModel()
        self.macro_config = macro_config or MacroConfig.full()
        self._cache: Dict[int, ArchRecord] = {}

    def __len__(self) -> int:
        return SPACE_SIZE

    def _resolve(self, arch: ArchKey) -> Genotype:
        if isinstance(arch, Genotype):
            return arch
        if isinstance(arch, int):
            return Genotype.from_index(arch)
        if isinstance(arch, str):
            return Genotype.from_arch_str(arch)
        raise BenchmarkDataError(f"cannot interpret architecture key {arch!r}")

    def query(self, arch: ArchKey) -> ArchRecord:
        """Full record for an architecture (cached)."""
        genotype = self._resolve(arch)
        index = genotype.to_index()
        if index in self._cache:
            return self._cache[index]
        per_seed = {
            (dataset, seed): self.surrogate.accuracy(genotype, dataset, seed)
            for dataset in self.datasets
            for seed in self.seeds
        }
        accuracies = {
            dataset: sum(per_seed[(dataset, s)] for s in self.seeds) / len(self.seeds)
            for dataset in self.datasets
        }
        record = ArchRecord(
            genotype=genotype,
            index=index,
            flops=count_flops(genotype, self.macro_config),
            params=count_params(genotype, self.macro_config),
            accuracies=accuracies,
            per_seed=per_seed,
            training_seconds=self.cost_model.training_seconds(
                genotype, self.macro_config
            ),
        )
        self._cache[index] = record
        return record

    def accuracy(self, arch: ArchKey, dataset: str = "cifar10") -> float:
        return self.query(arch).accuracy(dataset)

    def iter_records(self, indices: Optional[List[int]] = None) -> Iterator[ArchRecord]:
        """Iterate records for given indices (or the whole space — slow)."""
        space = indices if indices is not None else range(15625)
        for index in space:
            yield self.query(int(index))

    def best_architecture(self, dataset: str = "cifar10",
                          indices: Optional[List[int]] = None) -> ArchRecord:
        """Highest mean-accuracy record among ``indices`` (or everything)."""
        best: Optional[ArchRecord] = None
        for record in self.iter_records(indices):
            if best is None or record.accuracy(dataset) > best.accuracy(dataset):
                best = record
        assert best is not None
        return best
