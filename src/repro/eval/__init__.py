"""Evaluation utilities: rank correlations and experiment reporting."""

from repro.eval.correlation import kendall_tau, pearson, spearman_rho
from repro.eval.hypervolume import (
    front_hypervolume,
    hypervolume_2d,
    hypervolume_ratio,
)
from repro.eval.report import (
    ExperimentRecord,
    agreement_summary,
    render_markdown,
    within_factor,
)

__all__ = [
    "kendall_tau",
    "pearson",
    "spearman_rho",
    "front_hypervolume",
    "hypervolume_2d",
    "hypervolume_ratio",
    "ExperimentRecord",
    "agreement_summary",
    "render_markdown",
    "within_factor",
]
