"""Rank-correlation measures used throughout the paper's analysis.

Kendall-τ is the paper's headline correlation (Fig. 2a/2b).  We wrap SciPy
where available but keep a pure-NumPy fallback so the implementations are
testable against each other.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import ReproError


def _validate(a: Sequence[float], b: Sequence[float]) -> tuple:
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ReproError(f"correlation inputs must be equal-length 1-D, got {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ReproError("correlation needs at least two points")
    return x, y


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall rank correlation τ-b (handles ties)."""
    x, y = _validate(a, b)
    tau = stats.kendalltau(x, y).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def kendall_tau_naive(a: Sequence[float], b: Sequence[float]) -> float:
    """O(n²) τ-a reference implementation (no tie correction).

    Used in tests to cross-check :func:`kendall_tau` on tie-free inputs.
    """
    x, y = _validate(a, b)
    n = x.size
    concordant = 0
    discordant = 0
    for i in range(n):
        dx = x[i + 1:] - x[i]
        dy = y[i + 1:] - y[i]
        sign = np.sign(dx) * np.sign(dy)
        concordant += int((sign > 0).sum())
        discordant += int((sign < 0).sum())
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation."""
    x, y = _validate(a, b)
    rho = stats.spearmanr(x, y).statistic
    return float(rho) if np.isfinite(rho) else 0.0


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson linear correlation."""
    x, y = _validate(a, b)
    if x.std() == 0.0 or y.std() == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
