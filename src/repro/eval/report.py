"""Structured paper-vs-measured experiment records and markdown rendering.

EXPERIMENTS.md tracks, for every table and figure, what the paper reports
and what this reproduction measures.  Benchmarks can emit
:class:`ExperimentRecord` rows and render them with :func:`render_markdown`
so the document never drifts from the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


def within_factor(measured: float, expected: float, factor: float) -> bool:
    """Whether two positive quantities agree within a multiplicative band.

    ``within_factor(a, b, 2)`` is true when ``b/2 <= a <= 2b`` — the right
    notion of agreement for quantities (latencies, speedups, search costs)
    whose absolute scale depends on the substrate.
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    if measured <= 0 or expected <= 0:
        raise ValueError("within_factor compares positive quantities")
    ratio = measured / expected
    return 1.0 / factor <= ratio <= factor


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-vs-measured comparison line.

    ``paper_value`` is ``None`` for artifacts the paper reports only
    qualitatively (e.g. "latency-guided beats FLOPs-guided").
    """

    experiment_id: str
    artifact: str
    metric: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""
    agrees: Optional[bool] = None
    note: str = ""

    def verdict(self) -> str:
        if self.agrees is None:
            return "n/a"
        return "yes" if self.agrees else "NO"

    def _format(self, value: Optional[float]) -> str:
        if value is None:
            return "—"
        if value == int(value) and abs(value) < 1e6:
            return f"{int(value)}{(' ' + self.unit) if self.unit else ''}"
        return f"{value:.3g}{(' ' + self.unit) if self.unit else ''}"

    def markdown_row(self) -> str:
        cells = (
            self.experiment_id,
            self.artifact,
            self.metric,
            self._format(self.paper),
            self._format(self.measured),
            self.verdict(),
            self.note,
        )
        return "| " + " | ".join(str(c) for c in cells) + " |"


_HEADER = (
    "| id | artifact | metric | paper | measured | shape holds | note |\n"
    "|---|---|---|---|---|---|---|"
)


def render_markdown(records: Sequence[ExperimentRecord],
                    title: str = "") -> str:
    """A complete markdown section for a list of records."""
    lines: List[str] = []
    if title:
        lines.append(f"## {title}")
        lines.append("")
    lines.append(_HEADER)
    lines.extend(record.markdown_row() for record in records)
    return "\n".join(lines)


def agreement_summary(records: Iterable[ExperimentRecord]) -> str:
    """One line: how many checked shapes hold."""
    all_records = list(records)
    checked = [r for r in all_records if r.agrees is not None]
    if not checked:
        return "no checked shapes"
    holding = sum(r.agrees for r in checked)
    qualitative = len(all_records) - len(checked)
    return (f"{holding}/{len(checked)} checked shapes hold "
            f"({qualitative} qualitative rows)")
