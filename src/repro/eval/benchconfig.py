"""Benchmark-scale configuration shared by the harnesses in ``benchmarks/``.

Benchmarks regenerate every table/figure of the paper.  Because the proxy
substrate is pure NumPy on CPU, they default to a *reduced* proxy scale
that preserves all qualitative shapes; set the environment variable
``REPRO_BENCH_SCALE=paper`` to run at the paper's exact operating point
(NTK batch 32, wider proxy networks — several times slower).
"""

from __future__ import annotations

import os

from repro.proxies.base import ProxyConfig


def bench_scale() -> str:
    """Current scale: ``"reduced"`` (default) or ``"paper"``."""
    return os.environ.get("REPRO_BENCH_SCALE", "reduced")


def reduced_proxy_config(seed: int = 0,
                         precision: str = "float64") -> ProxyConfig:
    """THE fast/reduced proxy operating point.

    Single definition shared by the CLI's ``--fast`` flag, the runtime
    harness's ``fast=True`` and the benchmark default scale — the
    persistent store fingerprints ``astuple(proxy_config)``, so every
    consumer must agree bit-for-bit or warm-starts silently stop working
    across entry points.  ``precision`` selects the compute policy
    (``float64`` default; ``float32`` for faster kernels) and is part of
    that fingerprint.
    """
    return ProxyConfig(init_channels=4, cells_per_stage=1, input_size=8,
                       ntk_batch_size=16, lr_num_samples=64, lr_input_size=4,
                       lr_channels=3, seed=seed, precision=precision)


def search_proxy_config() -> ProxyConfig:
    """Proxy configuration used inside search benchmarks."""
    if bench_scale() == "paper":
        return ProxyConfig()  # batch 32, 8 channels, 16x16 input
    return reduced_proxy_config()


def correlation_proxy_config() -> ProxyConfig:
    """Proxy configuration for the Fig. 2 correlation studies."""
    if bench_scale() == "paper":
        return ProxyConfig()
    return ProxyConfig(init_channels=6, cells_per_stage=1, input_size=8,
                       ntk_batch_size=16, lr_num_samples=64, lr_input_size=4,
                       lr_channels=3, seed=0)


def num_correlation_archs() -> int:
    """Architectures sampled for correlation studies (Fig. 2a/2b)."""
    return 60 if bench_scale() == "paper" else 28
