"""Exact 2-D hypervolume indicator for minimisation fronts.

The standard scalar quality measure for a Pareto front: the area of
objective space dominated by the front, bounded by a reference point that
every front point must dominate.  Used to compare multi-objective search
outcomes (e.g. the A11 zero-shot front across seeds or sample sizes) with
one number instead of eyeballing curves.

Only the two-objective case is implemented — exact, O(n log n) — because
that is what the quality/latency front needs; a general N-D hypervolume
is exponential and out of scope.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ReproError


def hypervolume_2d(
    points: Sequence[Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Dominated area between a minimisation front and ``reference``.

    Points at or beyond the reference in any coordinate contribute
    nothing.  Dominated (non-front) points are handled correctly — the
    area is computed from the non-dominated subset.
    """
    ref_x, ref_y = reference
    kept = [
        (float(x), float(y))
        for x, y in points
        if x < ref_x and y < ref_y
    ]
    if not kept:
        return 0.0
    # Sort by x ascending; walk keeping the running best (lowest) y.
    kept.sort()
    area = 0.0
    best_y = ref_y
    for x, y in kept:
        if y >= best_y:
            continue  # dominated by an earlier (smaller-x) point
        area += (ref_x - x) * (best_y - y)
        best_y = y
    return area


def hypervolume_ratio(
    points: Sequence[Tuple[float, float]],
    reference: Tuple[float, float],
    ideal: Tuple[float, float],
) -> float:
    """Hypervolume normalised by the ``ideal``-to-``reference`` box.

    1.0 means the front collapses onto the ideal corner; 0.0 means
    nothing dominates the reference.
    """
    ref_x, ref_y = reference
    ideal_x, ideal_y = ideal
    if not (ideal_x < ref_x and ideal_y < ref_y):
        raise ReproError("ideal must strictly dominate the reference")
    box = (ref_x - ideal_x) * (ref_y - ideal_y)
    return hypervolume_2d(points, reference) / box


def front_hypervolume(
    latencies_ms: Sequence[float],
    quality_ranks: Sequence[float],
    reference: Tuple[float, float] = None,
) -> float:
    """Convenience wrapper for the A11 front's (latency, quality) axes.

    The default reference is 10 % beyond the front's worst corner, the
    usual convention when no external reference exists.
    """
    latencies = np.asarray(latencies_ms, dtype=float)
    qualities = np.asarray(quality_ranks, dtype=float)
    if latencies.shape != qualities.shape or latencies.size == 0:
        raise ReproError("need equal-length, non-empty objective arrays")
    if reference is None:
        reference = (float(latencies.max() * 1.1),
                     float(qualities.max() * 1.1 + 1e-9))
    return hypervolume_2d(list(zip(latencies, qualities)), reference)
