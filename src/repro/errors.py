"""Exception hierarchy for the MicroNAS reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AutogradError(ReproError):
    """Raised for invalid automatic-differentiation operations."""


class ShapeError(AutogradError):
    """Raised when tensor shapes are incompatible for an operation."""


class GenotypeError(ReproError):
    """Raised for malformed architecture strings or invalid genotypes."""


class SearchSpaceError(ReproError):
    """Raised for invalid search-space configurations or indices."""


class ProxyError(ReproError):
    """Raised when a zero-cost proxy cannot be evaluated."""


class HardwareModelError(ReproError):
    """Raised for invalid hardware model configurations or LUT misses."""


class ConstraintError(ReproError):
    """Raised when a search constraint is infeasible or violated."""


class SearchError(ReproError):
    """Raised when a search algorithm reaches an invalid state."""


class BenchmarkDataError(ReproError):
    """Raised for invalid surrogate-benchmark queries."""
