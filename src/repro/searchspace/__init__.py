"""The NAS-Bench-201 cell search space.

A cell is a directed acyclic graph with 4 nodes; each of the 6 edges carries
one of 5 candidate operations.  An architecture is one operation assignment
per edge (5^6 = 15,625 architectures).  Cells are stacked into the standard
NAS-Bench-201 macro skeleton: stem -> N cells -> reduction -> N cells ->
reduction -> N cells -> global pool -> classifier.
"""

from repro.searchspace.ops import (
    CANDIDATE_OPS,
    NUM_EDGES,
    NUM_NODES,
    OP_INDEX,
    build_op,
    op_is_parametric,
)
from repro.searchspace.genotype import Genotype
from repro.searchspace.cell import Cell, EdgeSpec, SuperCell
from repro.searchspace.network import MacroConfig, NasBench201Network, build_network
from repro.searchspace.features import TopologyFeatures, extract_features
from repro.searchspace.space import NasBench201Space
from repro.searchspace.stats import (
    SpaceStatistics,
    canonical_census,
    class_of,
    op_histogram,
    space_statistics,
    unique_sample,
)

__all__ = [
    "CANDIDATE_OPS",
    "NUM_EDGES",
    "NUM_NODES",
    "OP_INDEX",
    "build_op",
    "op_is_parametric",
    "Genotype",
    "Cell",
    "EdgeSpec",
    "SuperCell",
    "MacroConfig",
    "NasBench201Network",
    "build_network",
    "TopologyFeatures",
    "extract_features",
    "NasBench201Space",
    "SpaceStatistics",
    "canonical_census",
    "class_of",
    "op_histogram",
    "space_statistics",
    "unique_sample",
]
