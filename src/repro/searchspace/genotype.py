"""Architecture genotypes and the NAS-Bench-201 arch-string codec.

A genotype is the 6-tuple of operation names on the cell edges, in the
canonical edge order ``(0→1, 0→2, 1→2, 0→3, 1→3, 2→3)``.  It round-trips
with the benchmark's string format::

    |op~0|+|op~0|op~1|+|op~0|op~1|op~2|

and with a base-5 integer index in ``[0, 15625)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import GenotypeError
from repro.searchspace.ops import CANDIDATE_OPS, EDGES, NUM_EDGES, OP_INDEX

_ARCH_TOKEN = re.compile(r"([^|~]+)~(\d+)")

#: Edges grouped by destination node, in string order.
_EDGES_BY_NODE: Tuple[Tuple[int, ...], ...] = (
    tuple(i for i, (_, dst) in enumerate(EDGES) if dst == node) for node in (1, 2, 3)
)
_EDGES_BY_NODE = tuple(_EDGES_BY_NODE)


@dataclass(frozen=True)
class Genotype:
    """An immutable NAS-Bench-201 architecture."""

    ops: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.ops) != NUM_EDGES:
            raise GenotypeError(
                f"a genotype needs {NUM_EDGES} operations, got {len(self.ops)}"
            )
        for op in self.ops:
            if op not in OP_INDEX:
                raise GenotypeError(f"unknown operation {op!r}")
        object.__setattr__(self, "ops", tuple(self.ops))

    # ------------------------------------------------------------------
    # Codec: arch string
    # ------------------------------------------------------------------
    def to_arch_str(self) -> str:
        """Render the canonical NAS-Bench-201 architecture string."""
        groups = []
        for node_edges in _EDGES_BY_NODE:
            tokens = "".join(
                f"|{self.ops[edge]}~{EDGES[edge][0]}|" for edge in node_edges
            )
            groups.append(tokens.replace("||", "|"))
        return "+".join(groups)

    @classmethod
    def from_arch_str(cls, arch_str: str) -> "Genotype":
        """Parse an architecture string (inverse of :meth:`to_arch_str`)."""
        groups = arch_str.split("+")
        if len(groups) != 3:
            raise GenotypeError(f"expected 3 node groups, got {len(groups)}: {arch_str!r}")
        ops = ["none"] * NUM_EDGES
        for node_offset, group in enumerate(groups):
            raw_tokens = [token for token in group.split("|") if token]
            expected = node_offset + 1
            if len(raw_tokens) != expected:
                raise GenotypeError(
                    f"node {expected} should have {expected} incoming edges, "
                    f"got {len(raw_tokens)} in {group!r}"
                )
            for token in raw_tokens:
                match = _ARCH_TOKEN.fullmatch(token)
                if match is None:
                    raise GenotypeError(f"malformed edge token {token!r}")
                op_name, src_str = match.groups()
                src = int(src_str)
                dst = node_offset + 1
                try:
                    edge_idx = EDGES.index((src, dst))
                except ValueError as exc:
                    raise GenotypeError(f"invalid edge {src}->{dst}") from exc
                if op_name not in OP_INDEX:
                    raise GenotypeError(f"unknown operation {op_name!r}")
                ops[edge_idx] = op_name
        return cls(tuple(ops))

    # ------------------------------------------------------------------
    # Codec: integer index
    # ------------------------------------------------------------------
    def to_index(self) -> int:
        """Base-5 encode the op assignment (edge 0 is the least significant)."""
        index = 0
        for edge in reversed(range(NUM_EDGES)):
            index = index * len(CANDIDATE_OPS) + OP_INDEX[self.ops[edge]]
        return index

    @classmethod
    def from_index(cls, index: int) -> "Genotype":
        """Decode a base-5 architecture index (inverse of :meth:`to_index`)."""
        size = len(CANDIDATE_OPS) ** NUM_EDGES
        if not 0 <= index < size:
            raise GenotypeError(f"index {index} outside [0, {size})")
        ops = []
        remaining = index
        for _ in range(NUM_EDGES):
            ops.append(CANDIDATE_OPS[remaining % len(CANDIDATE_OPS)])
            remaining //= len(CANDIDATE_OPS)
        return cls(tuple(ops))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def op_on_edge(self, src: int, dst: int) -> str:
        """Operation assigned to the edge ``src -> dst``."""
        try:
            return self.ops[EDGES.index((src, dst))]
        except ValueError as exc:
            raise GenotypeError(f"no edge {src}->{dst} in the cell DAG") from exc

    def with_op(self, edge_index: int, op_name: str) -> "Genotype":
        """Return a copy with one edge's operation replaced."""
        if not 0 <= edge_index < NUM_EDGES:
            raise GenotypeError(f"edge index {edge_index} outside [0, {NUM_EDGES})")
        ops = list(self.ops)
        ops[edge_index] = op_name
        return Genotype(tuple(ops))

    def count(self, op_name: str) -> int:
        """Number of edges carrying ``op_name``."""
        return sum(1 for op in self.ops if op == op_name)

    def __str__(self) -> str:
        return self.to_arch_str()

    @classmethod
    def all_genotypes(cls) -> Iterator["Genotype"]:
        """Iterate every architecture in index order (15,625 total)."""
        size = len(CANDIDATE_OPS) ** NUM_EDGES
        for index in range(size):
            yield cls.from_index(index)

    @classmethod
    def random(cls, rng, ops: Sequence[str] = CANDIDATE_OPS) -> "Genotype":
        """Sample a uniform random genotype using a numpy Generator."""
        choices = tuple(rng.choice(len(ops), size=NUM_EDGES))
        return cls(tuple(ops[i] for i in choices))

    @classmethod
    def resolve(cls, value) -> "Genotype":
        """Accept an integer index (or numeric string) or an arch string.

        The shared user-input resolver behind the CLI's positional ``arch``
        arguments and ``RuntimeConfig.arch``.
        """
        try:
            return cls.from_index(int(value))
        except (TypeError, ValueError):
            return cls.from_arch_str(str(value))
