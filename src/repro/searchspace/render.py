"""ASCII rendering of cell architectures (used by the CLI and examples)."""

from __future__ import annotations

from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import EDGES

_SHORT = {
    "none": "·",
    "skip_connect": "skip",
    "nor_conv_1x1": "1x1",
    "nor_conv_3x3": "3x3",
    "avg_pool_3x3": "pool",
}


def render_cell(genotype: Genotype) -> str:
    """Multi-line ASCII diagram of the cell DAG.

    One line per node, listing its incoming edges::

        node 0 (input)
        node 1 <- 3x3(0)
        node 2 <- 3x3(0), 3x3(1)
        node 3 (output) <- skip(0), 3x3(1), 3x3(2)
    """
    lines = ["node 0 (input)"]
    for node in (1, 2, 3):
        incoming = []
        for edge_idx, (src, dst) in enumerate(EDGES):
            if dst != node:
                continue
            op = genotype.ops[edge_idx]
            incoming.append(f"{_SHORT[op]}({src})")
        label = f"node {node} (output)" if node == 3 else f"node {node}"
        lines.append(f"{label} <- " + ", ".join(incoming))
    return "\n".join(lines)
