"""The NAS-Bench-201 macro skeleton and network builders.

Layout (for ``MacroConfig(init_channels=C, cells_per_stage=N)``)::

    stem: 3x3 conv (3 -> C) + BN
    stage 1: N cells @ C
    reduction residual block (stride 2, C -> 2C)
    stage 2: N cells @ 2C
    reduction residual block (stride 2, 2C -> 4C)
    stage 3: N cells @ 4C
    BN-ReLU -> global average pool -> linear classifier

The proxies run on a *reduced* configuration (fewer cells, narrower, small
input) exactly as TE-NAS does; the hardware indicators are computed on the
full deployment configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.autograd import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
)
from repro.searchspace.cell import Cell, EdgeSpec, SuperCell
from repro.searchspace.genotype import Genotype
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class MacroConfig:
    """Macro-skeleton hyper-parameters.

    ``full()`` matches the NAS-Bench-201 training configuration; ``proxy()``
    is the reduced network the zero-cost indicators are measured on.
    """

    init_channels: int = 16
    cells_per_stage: int = 5
    num_classes: int = 10
    input_channels: int = 3
    image_size: int = 32

    @classmethod
    def full(cls, num_classes: int = 10, image_size: int = 32) -> "MacroConfig":
        return cls(16, 5, num_classes, 3, image_size)

    @classmethod
    def proxy(cls, num_classes: int = 10) -> "MacroConfig":
        return cls(init_channels=8, cells_per_stage=1, num_classes=num_classes,
                   input_channels=3, image_size=16)

    @property
    def stage_channels(self) -> Tuple[int, int, int]:
        c = self.init_channels
        return (c, 2 * c, 4 * c)

    @property
    def stage_sizes(self) -> Tuple[int, int, int]:
        s = self.image_size
        return (s, s // 2, s // 4)


class ReductionBlock(Module):
    """NAS-Bench-201 inter-stage residual block (stride 2, doubles width)."""

    def __init__(self, in_channels: int, out_channels: int, rng: SeedLike = None) -> None:
        super().__init__()
        generator = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.main = Sequential(
            ReLU(),
            Conv2d(in_channels, out_channels, 3, stride=2, padding=1, rng=generator),
            BatchNorm2d(out_channels),
            ReLU(),
            Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=generator),
            BatchNorm2d(out_channels),
        )
        self.shortcut = Sequential(
            AvgPool2d(2, stride=2),
            Conv2d(in_channels, out_channels, 1, stride=1, padding=0, rng=generator),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.main(x) + self.shortcut(x)


class NasBench201Network(Module):
    """A complete network realising one genotype (or a supernet state)."""

    def __init__(
        self,
        config: MacroConfig,
        cell_factory: Callable[[int], Module],
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.config = config
        generator = new_rng(rng)
        c1, c2, c3 = config.stage_channels
        self.stem = Sequential(
            Conv2d(config.input_channels, c1, 3, stride=1, padding=1, rng=generator),
            BatchNorm2d(c1),
        )
        body: List[Module] = []
        for stage_idx, channels in enumerate((c1, c2, c3)):
            if stage_idx > 0:
                body.append(ReductionBlock(channels // 2, channels, rng=generator))
            for _ in range(config.cells_per_stage):
                body.append(cell_factory(channels))
        self.body = ModuleList(body)
        self.lastact = Sequential(BatchNorm2d(c3), ReLU())
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(c3, config.num_classes, rng=generator)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.body:
            out = block(out)
        out = self.lastact(out)
        out = self.pool(out)
        return self.classifier(out)

    def cells(self) -> List[Module]:
        """The cell modules in network order (excludes reduction blocks)."""
        return [m for m in self.body if isinstance(m, (Cell, SuperCell))]


def build_network(
    genotype: Genotype,
    config: Optional[MacroConfig] = None,
    rng: SeedLike = None,
    record_patterns: bool = False,
) -> NasBench201Network:
    """Build a full network for a concrete architecture."""
    config = config or MacroConfig.full()
    generator = new_rng(rng)

    def factory(channels: int) -> Module:
        return Cell(genotype, channels, rng=generator, record_patterns=record_patterns)

    return NasBench201Network(config, factory, rng=generator)


def build_supernet(
    edge_specs: Sequence[EdgeSpec],
    config: Optional[MacroConfig] = None,
    rng: SeedLike = None,
    record_patterns: bool = False,
) -> NasBench201Network:
    """Build a network whose cells carry the given alive-op sets."""
    config = config or MacroConfig.proxy()
    generator = new_rng(rng)

    def factory(channels: int) -> Module:
        return SuperCell(edge_specs, channels, rng=generator,
                         record_patterns=record_patterns)

    return NasBench201Network(config, factory, rng=generator)
