"""Candidate operations of the NAS-Bench-201 cell.

The operator set is fixed by the benchmark definition:

* ``none``          — zeroise (edge absent),
* ``skip_connect``  — identity,
* ``nor_conv_1x1``  — ReLU → 1×1 conv → BatchNorm,
* ``nor_conv_3x3``  — ReLU → 3×3 conv (pad 1) → BatchNorm,
* ``avg_pool_3x3``  — 3×3 average pooling (stride 1, pad 1).

All cell-internal operations are stride 1 and channel preserving.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.autograd import Tensor
from repro.errors import SearchSpaceError
from repro.nn import AvgPool2d, BatchNorm2d, Conv2d, Module, ReLU, Sequential
from repro.utils.rng import SeedLike

NUM_NODES = 4
NUM_EDGES = 6

#: Edge list of the cell DAG as (source node, destination node), in the
#: canonical NAS-Bench-201 order used by architecture strings.
EDGES: Tuple[Tuple[int, int], ...] = ((0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3))

CANDIDATE_OPS: Tuple[str, ...] = (
    "none",
    "skip_connect",
    "nor_conv_1x1",
    "nor_conv_3x3",
    "avg_pool_3x3",
)

OP_INDEX: Dict[str, int] = {name: idx for idx, name in enumerate(CANDIDATE_OPS)}

#: Kernel size used by each convolutional candidate.
CONV_KERNEL: Dict[str, int] = {"nor_conv_1x1": 1, "nor_conv_3x3": 3}


class Zero(Module):
    """The ``none`` operation: output zeros of the input shape."""

    def forward(self, x: Tensor) -> Tensor:
        return x * 0.0


class Identity(Module):
    """The ``skip_connect`` operation."""

    def forward(self, x: Tensor) -> Tensor:
        return x


def op_is_parametric(op_name: str) -> bool:
    """Whether an operation has learnable weights (affects params/FLOPs)."""
    return op_name in CONV_KERNEL


def build_op(op_name: str, channels: int, rng: SeedLike = None,
             record_patterns: bool = False) -> Module:
    """Instantiate a candidate operation at the given channel width.

    ``record_patterns`` turns on ReLU activation-pattern recording, which the
    linear-region proxy consumes.
    """
    if op_name == "none":
        return Zero()
    if op_name == "skip_connect":
        return Identity()
    if op_name == "avg_pool_3x3":
        return AvgPool2d(3, stride=1, padding=1)
    if op_name in CONV_KERNEL:
        kernel = CONV_KERNEL[op_name]
        return Sequential(
            ReLU(record_pattern=record_patterns),
            Conv2d(channels, channels, kernel, stride=1,
                   padding=kernel // 2, bias=False, rng=rng),
            BatchNorm2d(channels),
        )
    raise SearchSpaceError(f"unknown operation {op_name!r}")


def op_flops(op_name: str, channels: int, height: int, width: int) -> int:
    """FLOPs of one op at a given feature shape.

    Convention: 1 multiply-add = 1 FLOP, matching the NAS-Bench-201 API's
    reported numbers (and hence the paper's Table I scale); pooling counts
    ``k*k`` adds per output element; ``none``/``skip_connect`` are free.
    """
    if op_name in CONV_KERNEL:
        kernel = CONV_KERNEL[op_name]
        return channels * channels * kernel * kernel * height * width
    if op_name == "avg_pool_3x3":
        return 9 * channels * height * width
    return 0


def op_params(op_name: str, channels: int) -> int:
    """Learnable parameter count of one op (conv weights + BN affine)."""
    if op_name in CONV_KERNEL:
        kernel = CONV_KERNEL[op_name]
        return channels * channels * kernel * kernel + 2 * channels
    return 0
