"""Topological feature extraction for genotypes.

These features drive the surrogate accuracy model and are also useful for
analysis: effective paths from the cell input to the cell output, conv
depth, skip connectivity, and disconnection detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import EDGES

#: Operations that propagate information (everything except ``none``).
_PASSING_OPS = {"skip_connect", "nor_conv_1x1", "nor_conv_3x3", "avg_pool_3x3"}
_CONV_OPS = {"nor_conv_1x1", "nor_conv_3x3"}


@dataclass(frozen=True)
class TopologyFeatures:
    """Structural summary of one cell architecture."""

    is_connected: bool
    num_paths: int
    max_conv_depth: int
    min_conv_depth: int
    mean_conv_depth: float
    num_conv3x3: int
    num_conv1x1: int
    num_skip: int
    num_pool: int
    num_none: int
    has_direct_skip: bool
    effective_edges: int
    pool_on_all_paths: bool

    @property
    def conv_count(self) -> int:
        return self.num_conv3x3 + self.num_conv1x1


def cell_graph(genotype: Genotype) -> nx.DiGraph:
    """Build the effective DAG of a genotype (``none`` edges removed)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(4))
    for edge_idx, (src, dst) in enumerate(EDGES):
        op = genotype.ops[edge_idx]
        if op in _PASSING_OPS:
            graph.add_edge(src, dst, op=op, index=edge_idx)
    return graph


def effective_paths(genotype: Genotype) -> List[Tuple[str, ...]]:
    """All input→output op sequences through non-``none`` edges."""
    graph = cell_graph(genotype)
    paths: List[Tuple[str, ...]] = []
    for node_path in nx.all_simple_paths(graph, source=0, target=3):
        ops = tuple(
            graph.edges[u, v]["op"] for u, v in zip(node_path[:-1], node_path[1:])
        )
        paths.append(ops)
    return paths


def extract_features(genotype: Genotype) -> TopologyFeatures:
    """Compute :class:`TopologyFeatures` for a genotype."""
    paths = effective_paths(genotype)
    conv_depths = [sum(1 for op in path if op in _CONV_OPS) for path in paths]
    pool_free_path = any(
        all(op != "avg_pool_3x3" for op in path) for path in paths
    )
    return TopologyFeatures(
        is_connected=bool(paths),
        num_paths=len(paths),
        max_conv_depth=max(conv_depths) if conv_depths else 0,
        min_conv_depth=min(conv_depths) if conv_depths else 0,
        mean_conv_depth=(sum(conv_depths) / len(conv_depths)) if conv_depths else 0.0,
        num_conv3x3=genotype.count("nor_conv_3x3"),
        num_conv1x1=genotype.count("nor_conv_1x1"),
        num_skip=genotype.count("skip_connect"),
        num_pool=genotype.count("avg_pool_3x3"),
        num_none=genotype.count("none"),
        has_direct_skip=genotype.op_on_edge(0, 3) == "skip_connect",
        effective_edges=sum(1 for op in genotype.ops if op in _PASSING_OPS),
        pool_on_all_paths=bool(paths) and not pool_free_path,
    )
