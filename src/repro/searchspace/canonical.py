"""Functional canonicalisation of genotypes.

Many NAS-Bench-201 genotypes realise the *same function*: an operation on
an edge that cannot reach the cell output (or cannot be reached from the
input) never executes meaningfully.  The canonical form replaces every
such dead edge with ``none``, which

* deduplicates functionally-equivalent architectures in search traces,
* matches what an optimising deployment runtime would actually compile
  (the latency layer walker already skips ``none`` edges, but a dead
  *conv* edge would otherwise be billed).

The surrogate accuracy model is path-based, so canonically-equal genotypes
receive identical quality scores — a property the tests pin down.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Set, Tuple

import networkx as nx

from repro.searchspace.features import cell_graph
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import EDGES


def live_edges(genotype: Genotype) -> Set[int]:
    """Indices of edges on some input→output path of non-``none`` ops."""
    graph = cell_graph(genotype)
    reaches_from_input = set(nx.descendants(graph, 0)) | {0}
    reaches_output = set(nx.ancestors(graph, 3)) | {3}
    alive: Set[int] = set()
    for edge_idx, (src, dst) in enumerate(EDGES):
        if genotype.ops[edge_idx] == "none":
            continue
        if src in reaches_from_input and dst in reaches_output:
            alive.add(edge_idx)
    return alive


@lru_cache(maxsize=None)
def _canonical_ops(ops: Tuple[str, ...]) -> Tuple[str, ...]:
    """Memoized dead-edge elimination on the raw op tuple.

    Canonicalization builds a cell graph per call and sits on every hot
    path (cache keys, population dedupe, constraint checks); the whole
    space is 15,625 genotypes, so an unbounded memo stays tiny while
    making repeat canonicalizations O(1).
    """
    alive = live_edges(Genotype(ops))
    return tuple(
        op if idx in alive else "none" for idx, op in enumerate(ops)
    )


def canonicalize(genotype: Genotype) -> Genotype:
    """Replace every dead edge's operation with ``none``."""
    return Genotype(_canonical_ops(genotype.ops))


def is_canonical(genotype: Genotype) -> bool:
    """Whether the genotype equals its canonical form."""
    return canonicalize(genotype) == genotype


def functionally_equal(a: Genotype, b: Genotype) -> bool:
    """Whether two genotypes realise the same cell function structurally."""
    return canonicalize(a) == canonicalize(b)
