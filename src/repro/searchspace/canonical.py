"""Functional canonicalisation of genotypes.

Many NAS-Bench-201 genotypes realise the *same function*: an operation on
an edge that cannot reach the cell output (or cannot be reached from the
input) never executes meaningfully.  The canonical form replaces every
such dead edge with ``none``, which

* deduplicates functionally-equivalent architectures in search traces,
* matches what an optimising deployment runtime would actually compile
  (the latency layer walker already skips ``none`` edges, but a dead
  *conv* edge would otherwise be billed).

The surrogate accuracy model is path-based, so canonically-equal genotypes
receive identical quality scores — a property the tests pin down.
"""

from __future__ import annotations

from typing import Set

import networkx as nx

from repro.searchspace.features import cell_graph
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import EDGES


def live_edges(genotype: Genotype) -> Set[int]:
    """Indices of edges on some input→output path of non-``none`` ops."""
    graph = cell_graph(genotype)
    reaches_from_input = set(nx.descendants(graph, 0)) | {0}
    reaches_output = set(nx.ancestors(graph, 3)) | {3}
    alive: Set[int] = set()
    for edge_idx, (src, dst) in enumerate(EDGES):
        if genotype.ops[edge_idx] == "none":
            continue
        if src in reaches_from_input and dst in reaches_output:
            alive.add(edge_idx)
    return alive


def canonicalize(genotype: Genotype) -> Genotype:
    """Replace every dead edge's operation with ``none``."""
    alive = live_edges(genotype)
    ops = tuple(
        op if idx in alive else "none" for idx, op in enumerate(genotype.ops)
    )
    return Genotype(ops)


def is_canonical(genotype: Genotype) -> bool:
    """Whether the genotype equals its canonical form."""
    return canonicalize(genotype) == genotype


def functionally_equal(a: Genotype, b: Genotype) -> bool:
    """Whether two genotypes realise the same cell function structurally."""
    return canonicalize(a) == canonicalize(b)
