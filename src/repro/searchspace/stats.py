"""Search-space analytics: functional redundancy of NAS-Bench-201.

Many of the 15,625 architecture strings are *functionally identical*:
edges that never reach the output can carry any operator without changing
the computed function (``searchspace.canonical`` maps them all to one
canonical form).  These statistics matter for search and evaluation:

* a random sample over arch strings over-weights big canonical classes,
* proxy evaluations on two members of one class are wasted work,
* the headline "15,625 architectures" overstates the space's diversity.

:func:`space_statistics` quantifies the redundancy once per space;
:func:`unique_sample` draws samples that are distinct *as functions*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SearchSpaceError
from repro.searchspace.canonical import canonicalize, live_edges
from repro.searchspace.genotype import Genotype
from repro.searchspace.space import NasBench201Space
from repro.utils.rng import SeedLike, new_rng


def op_histogram(genotypes) -> Dict[str, int]:
    """Operator usage counts over a collection of genotypes."""
    counts: Counter = Counter()
    for genotype in genotypes:
        counts.update(genotype.ops)
    return dict(counts)


@dataclass(frozen=True)
class SpaceStatistics:
    """Functional-redundancy census of a cell search space."""

    total_arch_strings: int
    canonical_classes: int
    disconnected_arch_strings: int
    largest_class_size: int
    singleton_classes: int

    @property
    def redundancy(self) -> float:
        """Fraction of arch strings that are duplicates of another string."""
        return 1.0 - self.canonical_classes / self.total_arch_strings


def canonical_census(space: Optional[NasBench201Space] = None) -> Dict[int, int]:
    """Members per canonical class, keyed by the canonical form's index.

    Enumerates the whole space once (15,625 canonicalisations — cheap).
    """
    space = space or NasBench201Space()
    class_sizes: Counter = Counter()
    for genotype in space:
        class_sizes[canonicalize(genotype).to_index()] += 1
    return dict(class_sizes)


def space_statistics(space: Optional[NasBench201Space] = None) -> SpaceStatistics:
    """Enumerate the space and group arch strings by canonical form."""
    space = space or NasBench201Space()
    class_sizes = canonical_census(space)
    disconnected = sum(
        1 for genotype in space if not live_edges(genotype)
    )
    sizes = list(class_sizes.values())
    return SpaceStatistics(
        total_arch_strings=len(space),
        canonical_classes=len(class_sizes),
        disconnected_arch_strings=disconnected,
        largest_class_size=max(sizes),
        singleton_classes=sum(size == 1 for size in sizes),
    )


def unique_sample(
    count: int,
    rng: SeedLike = None,
    space: Optional[NasBench201Space] = None,
    max_attempts_factor: int = 50,
) -> List[Genotype]:
    """Sample genotypes pairwise-distinct *as functions*.

    Draws until ``count`` architectures with distinct canonical forms are
    collected; returned genotypes are the canonical representatives, so
    downstream proxy/hardware evaluations never repeat work.
    """
    if count < 1:
        raise SearchSpaceError("count must be positive")
    space = space or NasBench201Space()
    generator = new_rng(rng)
    seen = set()
    out: List[Genotype] = []
    attempts = 0
    limit = count * max_attempts_factor
    while len(out) < count:
        attempts += 1
        if attempts > limit:
            raise SearchSpaceError(
                f"could not find {count} functionally unique architectures "
                f"in {limit} draws"
            )
        index = int(generator.integers(0, len(space)))
        canon = canonicalize(space.get(index))
        key = canon.to_index()
        if key in seen:
            continue
        seen.add(key)
        out.append(canon)
    return out


def class_of(
    genotype: Genotype,
    census: Optional[Dict[int, int]] = None,
) -> Tuple[Genotype, int]:
    """The canonical representative and the size of a genotype's class.

    Pass a precomputed :func:`canonical_census` when querying many
    genotypes; otherwise one is computed on the fly.
    """
    if census is None:
        census = canonical_census()
    canon = canonicalize(genotype)
    return canon, census[canon.to_index()]