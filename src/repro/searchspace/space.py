"""Search-space level utilities: enumeration, sampling, neighbourhoods."""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.errors import SearchSpaceError
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import CANDIDATE_OPS, NUM_EDGES
from repro.utils.rng import SeedLike, new_rng


class NasBench201Space:
    """The full NAS-Bench-201 architecture space (15,625 genotypes)."""

    def __init__(self, ops: Sequence[str] = CANDIDATE_OPS) -> None:
        for op in ops:
            if op not in CANDIDATE_OPS:
                raise SearchSpaceError(f"unknown operation {op!r}")
        self.ops = tuple(ops)

    def __len__(self) -> int:
        return len(self.ops) ** NUM_EDGES

    def __iter__(self) -> Iterator[Genotype]:
        return Genotype.all_genotypes()

    def __contains__(self, genotype: Genotype) -> bool:
        return all(op in self.ops for op in genotype.ops)

    def get(self, index: int) -> Genotype:
        return Genotype.from_index(index)

    def sample(self, count: int, rng: SeedLike = None,
               unique: bool = True) -> List[Genotype]:
        """Uniformly sample architectures (without replacement by default)."""
        generator = new_rng(rng)
        if unique:
            if count > len(self):
                raise SearchSpaceError(
                    f"cannot sample {count} unique architectures from {len(self)}"
                )
            indices = generator.choice(len(self), size=count, replace=False)
            return [Genotype.from_index(int(i)) for i in indices]
        return [Genotype.random(generator, self.ops) for _ in range(count)]

    def neighbours(self, genotype: Genotype) -> List[Genotype]:
        """All genotypes at Hamming distance 1 (one edge-op mutation)."""
        result: List[Genotype] = []
        for edge in range(NUM_EDGES):
            for op in self.ops:
                if op != genotype.ops[edge]:
                    result.append(genotype.with_op(edge, op))
        return result

    def mutate(self, genotype: Genotype, rng: SeedLike = None) -> Genotype:
        """Random single-edge mutation (used by the evolutionary baseline)."""
        generator = new_rng(rng)
        edge = int(generator.integers(NUM_EDGES))
        alternatives = [op for op in self.ops if op != genotype.ops[edge]]
        op = alternatives[int(generator.integers(len(alternatives)))]
        return genotype.with_op(edge, op)
