"""Cell modules: fixed-architecture cells and the pruning supernet cell.

Node semantics follow NAS-Bench-201: node 0 is the cell input, and each
later node is the *sum* of its incoming edge operations applied to the
corresponding source nodes.  Node 3 is the cell output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.autograd import Tensor
from repro.errors import SearchSpaceError
from repro.nn import Module, ModuleList
from repro.searchspace.genotype import Genotype
from repro.searchspace.ops import EDGES, NUM_NODES, build_op
from repro.utils.rng import SeedLike, new_rng, stable_seed


class Cell(Module):
    """A cell with exactly one operation per edge (a concrete architecture)."""

    def __init__(self, genotype: Genotype, channels: int, rng: SeedLike = None,
                 record_patterns: bool = False) -> None:
        super().__init__()
        self.genotype = genotype
        self.channels = channels
        # Per-(edge, op) seeding mirrors SuperCell so that a supernet pruned
        # down to singletons realises exactly this cell's weights.
        base = int(new_rng(rng).integers(2**31))
        self.edge_ops = ModuleList(
            build_op(op_name, channels,
                     rng=stable_seed("supercell-op", base, edge_idx, op_name),
                     record_patterns=record_patterns)
            for edge_idx, op_name in enumerate(genotype.ops)
        )

    def forward(self, x: Tensor) -> Tensor:
        nodes: List[Tensor] = [x]
        for dst in range(1, NUM_NODES):
            total = None
            for edge_idx, (src, edge_dst) in enumerate(EDGES):
                if edge_dst != dst:
                    continue
                contribution = self.edge_ops[edge_idx](nodes[src])
                total = contribution if total is None else total + contribution
            if total is None:  # pragma: no cover - DAG guarantees incoming edges
                raise SearchSpaceError(f"node {dst} has no incoming edges")
            nodes.append(total)
        return nodes[-1]


@dataclass
class EdgeSpec:
    """The set of operations still alive on one supernet edge."""

    edge_index: int
    alive_ops: Tuple[str, ...]

    def without(self, op_name: str) -> "EdgeSpec":
        if op_name not in self.alive_ops:
            raise SearchSpaceError(
                f"op {op_name!r} not alive on edge {self.edge_index}"
            )
        remaining = tuple(op for op in self.alive_ops if op != op_name)
        return EdgeSpec(self.edge_index, remaining)

    @property
    def decided(self) -> bool:
        return len(self.alive_ops) == 1


class SuperCell(Module):
    """A cell whose edges each carry a *set* of candidate operations.

    The forward pass sums every alive operation's output on each edge and
    divides by the number of alive ops, so pruning an op changes the
    function smoothly.  This is the network the pruning-based search scores.
    """

    def __init__(
        self,
        edge_specs: Sequence[EdgeSpec],
        channels: int,
        rng: SeedLike = None,
        record_patterns: bool = False,
    ) -> None:
        super().__init__()
        if len(edge_specs) != len(EDGES):
            raise SearchSpaceError(
                f"need {len(EDGES)} edge specs, got {len(edge_specs)}"
            )
        self.edge_specs = list(edge_specs)
        self.channels = channels
        # Weight sharing across prunings: each (edge, op) module is seeded
        # independently of which *other* ops are alive, so removing one op
        # leaves every remaining weight identical.  The pruning search
        # relies on this — candidate scores then reflect the removed op's
        # contribution rather than re-initialisation noise (TE-NAS shares
        # supernet weights the same way).
        base = int(new_rng(rng).integers(2**31))
        self._edge_modules: Dict[Tuple[int, str], Module] = {}
        ops = ModuleList()
        for spec in self.edge_specs:
            for op_name in spec.alive_ops:
                op_seed = stable_seed("supercell-op", base, spec.edge_index, op_name)
                module = build_op(op_name, channels, rng=op_seed,
                                  record_patterns=record_patterns)
                self._edge_modules[(spec.edge_index, op_name)] = module
                ops.append(module)
        self.ops = ops

    def forward(self, x: Tensor) -> Tensor:
        nodes: List[Tensor] = [x]
        for dst in range(1, NUM_NODES):
            total = None
            for edge_idx, (src, edge_dst) in enumerate(EDGES):
                if edge_dst != dst:
                    continue
                spec = self.edge_specs[edge_idx]
                if not spec.alive_ops:
                    continue
                edge_out = None
                for op_name in spec.alive_ops:
                    module = self._edge_modules[(edge_idx, op_name)]
                    out = module(nodes[src])
                    edge_out = out if edge_out is None else edge_out + out
                edge_out = edge_out * (1.0 / len(spec.alive_ops))
                total = edge_out if total is None else total + edge_out
            if total is None:
                total = nodes[0] * 0.0
            nodes.append(total)
        return nodes[-1]
