"""NumPy data augmentation for the final-training stage.

The standard CIFAR-style recipe NAS-Bench-201 trains with: random crop
(zero padding), horizontal flip, optional cutout.  All transforms operate
on ``(N, C, H, W)`` batches and draw from an explicit generator so
training runs stay reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import SeedLike, new_rng


def random_flip(images: np.ndarray, rng: np.random.Generator,
                probability: float = 0.5) -> np.ndarray:
    """Horizontally flip each image independently with ``probability``."""
    if not 0.0 <= probability <= 1.0:
        raise ReproError("flip probability must be in [0, 1]")
    out = images.copy()
    mask = rng.random(len(images)) < probability
    out[mask] = out[mask, :, :, ::-1]
    return out


def random_crop(images: np.ndarray, rng: np.random.Generator,
                padding: int = 4) -> np.ndarray:
    """Zero-pad by ``padding`` and crop back to the original size."""
    if padding < 0:
        raise ReproError("padding must be non-negative")
    if padding == 0:
        return images.copy()
    n, c, h, w = images.shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                      dtype=images.dtype)
    padded[:, :, padding:padding + h, padding:padding + w] = images
    out = np.empty_like(images)
    tops = rng.integers(0, 2 * padding + 1, size=n)
    lefts = rng.integers(0, 2 * padding + 1, size=n)
    for i, (top, left) in enumerate(zip(tops, lefts)):
        out[i] = padded[i, :, top:top + h, left:left + w]
    return out


def cutout(images: np.ndarray, rng: np.random.Generator,
           size: int) -> np.ndarray:
    """Zero one ``size``×``size`` square per image (DeVries & Taylor)."""
    if size < 0:
        raise ReproError("cutout size must be non-negative")
    if size == 0:
        return images.copy()
    n, c, h, w = images.shape
    out = images.copy()
    ys = rng.integers(0, h, size=n)
    xs = rng.integers(0, w, size=n)
    half = size // 2
    for i, (y, x) in enumerate(zip(ys, xs)):
        y0, y1 = max(0, y - half), min(h, y + half + 1)
        x0, x1 = max(0, x - half), min(w, x + half + 1)
        out[i, :, y0:y1, x0:x1] = 0.0
    return out


class Augmenter:
    """Composed crop → flip → cutout pipeline with its own RNG stream."""

    def __init__(self, crop_padding: int = 4, flip_probability: float = 0.5,
                 cutout_size: int = 0, seed: SeedLike = None) -> None:
        if crop_padding < 0 or cutout_size < 0:
            raise ReproError("augmentation sizes must be non-negative")
        self.crop_padding = crop_padding
        self.flip_probability = flip_probability
        self.cutout_size = cutout_size
        self._rng = new_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        out = images
        if self.crop_padding:
            out = random_crop(out, self._rng, self.crop_padding)
        if self.flip_probability:
            out = random_flip(out, self._rng, self.flip_probability)
        if self.cutout_size:
            out = cutout(out, self._rng, self.cutout_size)
        return out

    def describe(self) -> str:
        parts = []
        if self.crop_padding:
            parts.append(f"crop(pad={self.crop_padding})")
        if self.flip_probability:
            parts.append(f"flip(p={self.flip_probability})")
        if self.cutout_size:
            parts.append(f"cutout({self.cutout_size})")
        return " -> ".join(parts) if parts else "identity"
