"""Training callbacks: early stopping and best-weights checkpointing."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Module


class EarlyStopping:
    """Stop when a monitored metric fails to improve for ``patience`` evals.

    The metric is maximised (accuracy-style).  ``update`` returns True
    when training should stop.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ReproError("patience must be >= 1")
        if min_delta < 0:
            raise ReproError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.stalled = 0
        self.stopped = False

    def update(self, value: float) -> bool:
        if self.best is None or value > self.best + self.min_delta:
            self.best = value
            self.stalled = 0
        else:
            self.stalled += 1
        self.stopped = self.stalled >= self.patience
        return self.stopped


class BestCheckpoint:
    """Keeps a copy of the weights that scored best on the eval metric."""

    def __init__(self, model: Module) -> None:
        self.model = model
        self.best: Optional[float] = None
        self.best_epoch: Optional[int] = None
        self._state: Optional[Dict[str, np.ndarray]] = None

    def update(self, value: float, epoch: int) -> bool:
        """Record the weights if ``value`` improves; returns improvement."""
        if self.best is None or value > self.best:
            self.best = value
            self.best_epoch = epoch
            self._state = self.model.state_dict()
            return True
        return False

    @property
    def has_checkpoint(self) -> bool:
        return self._state is not None

    def restore(self) -> None:
        """Load the best weights back into the model."""
        if self._state is None:
            raise ReproError("no checkpoint recorded yet")
        self.model.load_state_dict(self._state)
