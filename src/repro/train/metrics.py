"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def accuracy_score(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of (N, C) logits (or probabilities) vs int labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ReproError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    return float((logits.argmax(axis=1) == labels).mean())


def confusion_matrix(logits: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) count matrix: rows = true, cols = predicted."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    preds = logits.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, preds), 1)
    return matrix
