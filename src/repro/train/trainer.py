"""Mini-batch training loop for discovered architectures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import Tensor, cross_entropy, no_grad
from repro.data.synthetic import SyntheticImageDataset
from repro.errors import ReproError
from repro.nn.module import Module
from repro.train.augment import Augmenter
from repro.train.callbacks import BestCheckpoint, EarlyStopping
from repro.train.metrics import accuracy_score
from repro.train.optim import SGD
from repro.train.schedules import CosineLR, LRSchedule
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class TrainerConfig:
    """Final-training hyper-parameters (scaled-down NB201 schedule)."""

    epochs: int = 10
    batch_size: int = 32
    batches_per_epoch: int = 20
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    grad_clip: Optional[float] = 5.0
    seed: int = 0


@dataclass
class EpochStats:
    """Loss/accuracy of one epoch."""

    epoch: int
    lr: float
    train_loss: float
    train_accuracy: float
    eval_accuracy: Optional[float] = None


class Trainer:
    """Trains a network on a synthetic dataset with SGD + cosine annealing.

    The paper's search is zero-shot; this is the post-search deployment
    training step (Fig. 1's final stage), usable at reduced scale on CPU.
    """

    def __init__(
        self,
        model: Module,
        dataset: SyntheticImageDataset,
        config: Optional[TrainerConfig] = None,
        schedule: Optional[LRSchedule] = None,
        augmenter: Optional[Augmenter] = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainerConfig()
        self.augmenter = augmenter
        if self.config.epochs <= 0 or self.config.batches_per_epoch <= 0:
            raise ReproError("epochs and batches_per_epoch must be positive")
        self.optimizer = SGD(
            model.parameters(),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self.schedule = schedule or CosineLR(self.config.lr, self.config.epochs)
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    def _clip_gradients(self) -> None:
        limit = self.config.grad_clip
        if limit is None:
            return
        total = 0.0
        for p in self.optimizer.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = total**0.5
        if norm > limit:
            scale = limit / (norm + 1e-12)
            for p in self.optimizer.params:
                if p.grad is not None:
                    p.grad *= scale

    def train_epoch(self, epoch: int, rng) -> EpochStats:
        """One pass of ``batches_per_epoch`` optimisation steps."""
        lr = self.schedule.apply(self.optimizer, epoch)
        self.model.train(True)
        losses, accuracies = [], []
        for _ in range(self.config.batches_per_epoch):
            images, labels = self.dataset.batch(self.config.batch_size, rng=rng,
                                                balanced=False)
            if self.augmenter is not None:
                images = self.augmenter(images)
            self.optimizer.zero_grad()
            logits = self.model(Tensor(images))
            loss = cross_entropy(logits, labels)
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            loss.clear_tape_grads()
            losses.append(loss.item())
            accuracies.append(accuracy_score(logits.data, labels))
        return EpochStats(
            epoch=epoch,
            lr=lr,
            train_loss=float(np.mean(losses)),
            train_accuracy=float(np.mean(accuracies)),
        )

    def evaluate(self, num_batches: int = 5, rng: SeedLike = None) -> float:
        """Top-1 accuracy over held-out synthetic batches (eval mode)."""
        generator = new_rng(rng if rng is not None else self.config.seed + 10_000)
        self.model.train(False)
        accuracies = []
        with no_grad():
            for _ in range(num_batches):
                images, labels = self.dataset.batch(self.config.batch_size,
                                                    rng=generator, balanced=False)
                logits = self.model(Tensor(images))
                accuracies.append(accuracy_score(logits.data, labels))
        return float(np.mean(accuracies))

    def fit(
        self,
        evaluate_every: int = 0,
        early_stopping: Optional[EarlyStopping] = None,
        checkpoint: Optional[BestCheckpoint] = None,
    ) -> List[EpochStats]:
        """Run the full schedule; returns per-epoch statistics.

        With ``evaluate_every`` set, each evaluation feeds the optional
        callbacks: ``early_stopping`` can cut the schedule short and
        ``checkpoint`` keeps (and finally restores) the best weights.
        """
        if (early_stopping or checkpoint) and not evaluate_every:
            raise ReproError(
                "callbacks need evaluate_every > 0 to receive metrics"
            )
        rng = new_rng(self.config.seed)
        for epoch in range(self.config.epochs):
            stats = self.train_epoch(epoch, rng)
            stop = False
            if evaluate_every and (epoch + 1) % evaluate_every == 0:
                stats.eval_accuracy = self.evaluate()
                if checkpoint is not None:
                    checkpoint.update(stats.eval_accuracy, epoch)
                if early_stopping is not None:
                    stop = early_stopping.update(stats.eval_accuracy)
            self.history.append(stats)
            if stop:
                break
        if checkpoint is not None and checkpoint.has_checkpoint:
            checkpoint.restore()
        return self.history
