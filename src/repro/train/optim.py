"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: List[Parameter]) -> None:
        if not params:
            raise ReproError("optimizer needs at least one parameter")
        self.params = list(params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with Nesterov-free momentum and decoupled-free weight decay.

    Matches the classic schedule NAS-Bench-201 trains with (momentum 0.9,
    weight decay 5e-4); weight decay is added to the gradient (coupled),
    as in standard SGD.
    """

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ReproError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ReproError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update; parameters without gradients are skipped."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = self.momentum * vel + grad if vel is not None else grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with coupled weight decay.

    Useful when training reduced networks from poor initialisations in the
    examples; the paper-matching deployment schedule remains SGD+cosine.
    """

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ReproError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ReproError("betas must be in [0, 1)")
        if eps <= 0:
            raise ReproError("eps must be positive")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected update."""
        self._t += 1
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(p)], self._v[id(p)] = m, v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
