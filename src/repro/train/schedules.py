"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.train.optim import SGD


class LRSchedule:
    """Base schedule: maps epoch index to a learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ReproError("base_lr must be positive")
        self.base_lr = base_lr

    def lr_at(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, optimizer: SGD, epoch: int) -> float:
        lr = self.lr_at(epoch)
        optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class CosineLR(LRSchedule):
    """Cosine annealing to ``min_lr`` over ``total_epochs`` (NB201 default)."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ReproError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        t = min(max(epoch, 0), self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * t)
        )


class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(base_lr)
        if step_size <= 0:
            raise ReproError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (max(epoch, 0) // self.step_size)
