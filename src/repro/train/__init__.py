"""Training facilities for discovered architectures.

MicroNAS itself is zero-shot — no candidate is ever trained — but the
paper's workflow (Fig. 1) ends by training the *discovered* architecture
for deployment.  This package provides that final stage: SGD with momentum
and weight decay, cosine/step learning-rate schedules, cross-entropy
training loops and evaluation metrics, all on the NumPy autograd substrate.

Training here is CPU-NumPy and therefore only practical for the reduced
configurations used in examples and tests; the accuracy oracle for
experiments remains :mod:`repro.benchdata`.
"""

from repro.train.augment import Augmenter, cutout, random_crop, random_flip
from repro.train.callbacks import BestCheckpoint, EarlyStopping
from repro.train.optim import SGD, Adam, Optimizer
from repro.train.schedules import ConstantLR, CosineLR, StepLR
from repro.train.metrics import accuracy_score, confusion_matrix
from repro.train.trainer import EpochStats, Trainer, TrainerConfig

__all__ = [
    "SGD",
    "Adam",
    "Optimizer",
    "Augmenter",
    "random_crop",
    "random_flip",
    "cutout",
    "BestCheckpoint",
    "EarlyStopping",
    "ConstantLR",
    "CosineLR",
    "StepLR",
    "accuracy_score",
    "confusion_matrix",
    "EpochStats",
    "Trainer",
    "TrainerConfig",
]
