"""Base classes for neural-network modules.

Mirrors the familiar Module/Parameter split: a :class:`Parameter` is a
gradient-carrying tensor registered on a :class:`Module`; modules nest, and
``parameters()`` walks the tree in registration order (deterministic, which
matters for reproducible NTK Jacobian layouts).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable module attribute (requires_grad=True)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and networks."""

    _hook_ids = itertools.count()

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._forward_hooks: "OrderedDict[int, Callable]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        """Total learnable parameter count (used as the Params indicator)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.asarray(buf).copy()
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key in state:
                param.data[...] = state[key]
        for name in list(self._buffers):
            key = f"{prefix}{name}"
            if key in state:
                self._buffers[name][...] = state[key]
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def register_forward_hook(
        self, hook: Callable[["Module", Tuple, Tensor], None]
    ) -> int:
        """Attach ``hook(module, inputs, output)`` to run after each forward.

        The batched NTK kernel uses hooks to capture per-layer activations
        for per-sample gradient reconstruction.  Returns a handle for
        :meth:`remove_forward_hook`.
        """
        handle = next(Module._hook_ids)
        self.__dict__.setdefault("_forward_hooks", OrderedDict())[handle] = hook
        return handle

    def remove_forward_hook(self, handle: int) -> None:
        self.__dict__.get("_forward_hooks", {}).pop(handle, None)

    def __call__(self, *args, **kwargs) -> Tensor:
        out = self.forward(*args, **kwargs)
        hooks = self.__dict__.get("_forward_hooks")
        if hooks:
            for hook in tuple(hooks.values()):
                hook(self, args, out)
        return out

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        extra = self.extra_repr()
        head = f"{type(self).__name__}({extra})"
        if not self._modules:
            return head
        body = "\n".join(
            f"  ({name}): " + repr(mod).replace("\n", "\n  ")
            for name, mod in self._modules.items()
        )
        return f"{head.rstrip(')')}\n{body}\n)" if extra else f"{type(self).__name__}(\n{body}\n)"
