"""A small neural-network layer library built on :mod:`repro.autograd`.

Provides the layers needed to realise NAS-Bench-201 architectures:
convolutions, batch normalisation, ReLU, pooling, linear classifier heads
and containers, with Kaiming/Xavier initialisers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential, ModuleList
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.pool import AvgPool2d, GlobalAvgPool2d
from repro.nn.layers.shape import Flatten
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "init",
]
