"""Concrete layer implementations."""
