"""Batch normalisation."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.autograd.precision import default_dtype
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalisation over NCHW tensors.

    In training mode normalisation uses batch statistics (and updates the
    running estimates); in eval mode it uses the running estimates.  Zero-cost
    proxies evaluate networks at initialisation in training mode, matching
    the reference TE-NAS/NAS-Bench-201 setup.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1,
                 affine: bool = True) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        #: Eval-mode fast path for the frozen-BN NTK: when set, the next
        #: forward computes this batch's statistics out-of-tape, stores them
        #: as the running estimates and normalises with them as constants —
        #: equivalent to a momentum-1.0 training pass followed by an eval
        #: pass, in a single forward.
        self.freeze_stats_on_forward = False
        # Parameters AND buffers live in the active policy's compute
        # dtype: running statistics feed back into the tape (and the
        # batched NTK kernel's per-sample reconstruction), so float64
        # buffers under a float32 policy would silently upcast every
        # downstream product.
        dtype = default_dtype()
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=dtype),
                                    name="bn.weight")
            self.bias = Parameter(np.zeros(num_features, dtype=dtype),
                                  name="bn.bias")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got {x.shape}")
        if not self.training and self.freeze_stats_on_forward:
            mean = x.data.mean(axis=(0, 2, 3), keepdims=True)
            centered = x.data - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean[...] = mean.reshape(-1)
            self.running_var[...] = var.reshape(-1)
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            inv_std = (var + self.eps) ** -0.5
            normalised = centered * inv_std
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            self.running_mean += self.momentum * (batch_mean - self.running_mean)
            self.running_var += self.momentum * (batch_var - self.running_var)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            normalised = (x - mean) * ((var + self.eps) ** -0.5)
        if not self.affine:
            return normalised
        scale = F.reshape(self.weight, (1, self.num_features, 1, 1))
        shift = F.reshape(self.bias, (1, self.num_features, 1, 1))
        return normalised * scale + shift

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, affine={self.affine}"
