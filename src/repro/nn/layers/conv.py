"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

from repro.autograd import Tensor, functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike


class Conv2d(Module):
    """Square-kernel 2-D convolution over NCHW tensors.

    The NAS-Bench-201 operator set only needs square kernels with symmetric
    padding, so that is all this layer supports (enforced at construction).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng), name="conv.weight")
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros((out_channels,)), name="conv.bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )
