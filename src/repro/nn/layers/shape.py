"""Shape-manipulation layers."""

from __future__ import annotations

from repro.autograd import Tensor, functional as F
from repro.nn.module import Module


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        features = 1
        for dim in x.shape[1:]:
            features *= dim
        return F.reshape(x, (batch, features))
