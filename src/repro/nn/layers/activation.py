"""Activation layers."""

from __future__ import annotations

from repro.autograd import Tensor, functional as F
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit.

    Optionally records the binary activation pattern of its last forward
    pass; the linear-region proxy uses this to enumerate activation regions.
    """

    def __init__(self, record_pattern: bool = False) -> None:
        super().__init__()
        self.record_pattern = record_pattern
        self.last_pattern = None

    def forward(self, x: Tensor) -> Tensor:
        if self.record_pattern:
            self.last_pattern = x.data > 0.0
        return F.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)
