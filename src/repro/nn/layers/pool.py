"""Pooling layers."""

from __future__ import annotations

from typing import Optional

from repro.autograd import Tensor, functional as F
from repro.nn.module import Module


class AvgPool2d(Module):
    """Average pooling with square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2d(Module):
    """Spatial global average pooling: NCHW -> NC."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
