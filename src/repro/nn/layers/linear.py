"""Fully-connected layer."""

from __future__ import annotations

from repro.autograd import Tensor, functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), rng=rng, gain=1.0),
            name="linear.weight",
        )
        self.bias = Parameter(init.zeros((out_features,)), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, F.transpose(self.weight))
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"
