"""Weight initialisers.

NTK-based proxies are evaluated at initialisation, so the initialisation
scheme is part of the proxy definition: we follow TE-NAS and use Kaiming
normal (fan-in, ReLU gain) for convolutions and linear layers.

Every initialiser accepts a ``dtype`` (default: the active precision
policy's compute dtype, float64 unless scoped otherwise).  Random draws
always happen in float64 and are *then* cast: a float32 network therefore
sees the rounded values of the exact same RNG stream its float64 twin
uses, which is what makes cross-precision rank-agreement tests meaningful
(same weights up to rounding, not different random networks).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.autograd.precision import default_dtype
from repro.utils.rng import SeedLike, new_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def _cast(array: np.ndarray, dtype: Optional[np.dtype]) -> np.ndarray:
    return array.astype(dtype or default_dtype(), copy=False)


def kaiming_normal(
    shape: Tuple[int, ...], rng: SeedLike = None, gain: float = math.sqrt(2.0),
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """He-normal initialisation (fan-in mode, ReLU gain by default)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return _cast(new_rng(rng).normal(0.0, std, size=shape), dtype)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: SeedLike = None, gain: float = math.sqrt(2.0),
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """He-uniform initialisation (fan-in mode)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return _cast(new_rng(rng).uniform(-bound, bound, size=shape), dtype)


def xavier_normal(shape: Tuple[int, ...], rng: SeedLike = None,
                  dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Glorot-normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return _cast(new_rng(rng).normal(0.0, std, size=shape), dtype)


def zeros(shape: Tuple[int, ...],
          dtype: Optional[np.dtype] = None) -> np.ndarray:
    return np.zeros(shape, dtype=dtype or default_dtype())


def ones(shape: Tuple[int, ...],
         dtype: Optional[np.dtype] = None) -> np.ndarray:
    return np.ones(shape, dtype=dtype or default_dtype())
