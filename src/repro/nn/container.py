"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.autograd import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """A list of submodules that registers them for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._items)), module)
        self._items.append(module)
        return self

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - not callable
        raise NotImplementedError("ModuleList is a container, not a layer")
