"""Fault-tolerance runtime: policy overhead and recovery under faults.

Two measurements, both writing ``BENCH_faults.json``:

1. **Fault-free overhead** — the same sleep-padded population warm is
   pushed through :class:`~repro.runtime.async_pool.AsyncPopulationExecutor`
   twice: once with ``fault_policy=None`` (the legacy batch-gather path)
   and once with a full :class:`~repro.runtime.faults.FaultPolicy`
   (deadlines armed, retry budget armed, quarantine on).  No fault ever
   fires, so the gap is pure policy bookkeeping — per-chunk gather
   loops, deadline arithmetic, claim tracking.  The policy must cost
   under 2% wall-clock.

2. **Recovery under a 20% fault rate** — a fixed sampled population is
   evaluated on fork workers wrapped in a fuzzing
   :class:`~repro.runtime.faults.FaultPlan` (hash-selected ~20% of
   candidates crash the worker process, hang past the chunk deadline,
   or poison deterministically).  Crash and hang candidates must heal
   through respawn/retry; poison candidates must end quarantined; and
   every surviving row must be **bit-identical** to a fault-free serial
   run of the same candidates.

Run directly (``python benchmarks/bench_fault_tolerance.py``) or via
pytest (``pytest benchmarks/bench_fault_tolerance.py``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.engine import Engine
from repro.eval.benchconfig import bench_scale, search_proxy_config
from repro.runtime.async_pool import AsyncPopulationExecutor
from repro.runtime.faults import FaultPlan, FaultPolicy, QuarantineLedger
from repro.runtime.pool import _evaluate_genotype_chunk
from repro.searchspace.canonical import canonicalize
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer, format_duration

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

# Overhead part: enough candidates that per-chunk policy bookkeeping
# would show up if it were expensive, padded so the workload duration is
# stable against scheduler noise (the pad dominates proxy compute).
OVERHEAD_CANDIDATES = 64
OVERHEAD_PAD_S = 0.004
OVERHEAD_REPEATS = 7
OVERHEAD_BUDGET = 0.02  # the acceptance bar: < 2% policy overhead

# Fault part: fuzzed fault injection at the issue's 20% rate.
FAULT_CANDIDATES = 24
FAULT_RATE = 0.2
N_WORKERS = 4
CHUNK_TIMEOUT_S = 2.0
HANG_S = 4.0  # hangs must overrun the deadline decisively


def _padded_worker(payload):
    """Real chunk evaluation plus a fixed per-candidate pad.

    The pad makes each run long enough (~0.26s) that wall-clock deltas
    measure policy bookkeeping rather than timer granularity."""
    rows, seconds = _evaluate_genotype_chunk(payload)
    pad = OVERHEAD_PAD_S * len(rows)
    time.sleep(pad)
    return rows, seconds + pad


# ----------------------------------------------------------------------
# Part 1: fault-free policy overhead
# ----------------------------------------------------------------------
def _warm_once(proxy_config, population, fault_policy) -> float:
    engine = Engine(proxy_config=proxy_config)
    with AsyncPopulationExecutor(n_workers=1, chunk_size=1, mode="serial",
                                 genotype_worker=_padded_worker,
                                 fault_policy=fault_policy) as executor:
        with Timer() as timer:
            executor.warm_population(engine, population,
                                     assume_canonical=False)
        assert executor.stats.retries == 0
        assert executor.stats.quarantined == 0
        return timer.elapsed


def _run_overhead(proxy_config) -> Dict:
    population = NasBench201Space().sample(OVERHEAD_CANDIDATES, rng=5)
    policy = FaultPolicy(chunk_timeout=30.0, max_retries=2)
    baseline, policed = [], []
    # Alternate which arm goes first each round so machine drift within
    # a round hits both arms equally; compare minima (the
    # least-disturbed observation of each arm).
    for repeat in range(OVERHEAD_REPEATS):
        arms = [(baseline, None), (policed, policy)]
        for times, arm_policy in (arms if repeat % 2 == 0
                                  else reversed(arms)):
            times.append(_warm_once(proxy_config, population, arm_policy))
    best_baseline, best_policed = min(baseline), min(policed)
    return {
        "candidates": OVERHEAD_CANDIDATES,
        "pad_seconds_per_candidate": OVERHEAD_PAD_S,
        "repeats": OVERHEAD_REPEATS,
        "baseline_wall_seconds": best_baseline,
        "policy_wall_seconds": best_policed,
        "overhead_fraction": (best_policed - best_baseline)
                             / max(best_baseline, 1e-9),
        "budget_fraction": OVERHEAD_BUDGET,
    }


# ----------------------------------------------------------------------
# Part 2: completion and bit-identity under a 20% fault rate
# ----------------------------------------------------------------------
def _run_faulted(proxy_config, tmp_dir: Path) -> Dict:
    population = NasBench201Space().sample(FAULT_CANDIDATES, rng=13)
    unique = {canonicalize(g).to_index(): g for g in population}

    # Hash fuzzing covers the bulk of the fault rate, but which action a
    # digest picks is arbitrary — script one guaranteed hang and one
    # guaranteed poison so every recovery mechanism (respawn, deadline
    # retry, quarantine) demonstrably fires in the recorded run.
    hang_target, poison_target = sorted(unique)[:2]
    plan = FaultPlan(state_path=str(tmp_dir / "fault-state"),
                     script={hang_target: ("hang",),
                             poison_target: ("poison",)},
                     hash_rate=FAULT_RATE,
                     hash_actions=("crash", "hang", "poison"),
                     hang_seconds=HANG_S)
    ledger = QuarantineLedger(tmp_dir / "quarantine.jsonl")
    policy = FaultPolicy(chunk_timeout=CHUNK_TIMEOUT_S, max_retries=2,
                         max_respawns=8, backoff_base=0.01)

    engine = Engine(proxy_config=proxy_config)
    with AsyncPopulationExecutor(n_workers=N_WORKERS, chunk_size=1,
                                 mode="fork",
                                 genotype_worker=plan.wrap(
                                     _evaluate_genotype_chunk),
                                 fault_policy=policy,
                                 quarantine_ledger=ledger) as executor:
        with Timer() as timer:
            executor.submit_population(engine, population)
            completed = set()
            for chunk in executor.gather_all():
                completed.update(chunk.canonical_indices)
        stats = executor.stats
        quarantined = set(executor.quarantined_genotypes)

    # Every unique candidate either completed or ended quarantined.
    assert completed | quarantined == set(unique)
    assert not (completed & quarantined)

    # Surviving rows are bit-identical to a fault-free serial run.
    survivors = [unique[index] for index in sorted(completed)]
    warmed = engine.evaluate_population(survivors)
    assert warmed.cache_misses == 0  # every row came from the workers
    serial = Engine(proxy_config=proxy_config).evaluate_population(survivors)
    bit_identical = all(
        np.array_equal(serial.columns[name], warmed.columns[name])
        for name in serial.columns
    )

    return {
        "candidates": FAULT_CANDIDATES,
        "unique_candidates": len(unique),
        "fault_rate": FAULT_RATE,
        "fault_actions": ["crash", "hang", "poison"],
        "chunk_timeout_seconds": CHUNK_TIMEOUT_S,
        "wall_seconds": timer.elapsed,
        "scripted_hang": hang_target,
        "scripted_poison": poison_target,
        "completed_rows": len(completed),
        "completed_fraction": len(completed) / len(unique),
        "quarantined": sorted(quarantined),
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "respawns": stats.respawns,
        "survivors_bit_identical": bit_identical,
    }


def run_fault_tolerance() -> Dict:
    proxy_config = search_proxy_config()
    overhead = _run_overhead(proxy_config)
    with tempfile.TemporaryDirectory() as tmp:
        faulted = _run_faulted(proxy_config, Path(tmp))
    result = {
        "bench_scale": bench_scale(),
        "overhead": overhead,
        "faulted": faulted,
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_fault_tolerance(benchmark):
    result = benchmark.pedantic(run_fault_tolerance, rounds=1, iterations=1)
    _report(result)
    overhead, faulted = result["overhead"], result["faulted"]
    # Acceptance: an armed-but-idle policy costs < 2% wall-clock.
    assert overhead["overhead_fraction"] < OVERHEAD_BUDGET
    # Acceptance: under ~20% mixed faults the run still completes, only
    # poison candidates are lost, and survivors match serial exactly.
    assert faulted["survivors_bit_identical"]
    assert faulted["completed_fraction"] >= 0.75
    assert faulted["completed_rows"] + len(faulted["quarantined"]) \
        == faulted["unique_candidates"]
    # Every recovery mechanism fired: the scripted hang tripped the
    # deadline (then healed on retry), the scripted poison ended
    # quarantined, and worker death forced at least one respawn.
    assert faulted["scripted_poison"] in faulted["quarantined"]
    assert faulted["scripted_hang"] not in faulted["quarantined"]
    assert faulted["timeouts"] >= 1
    assert faulted["respawns"] >= 1


def _report(result: Dict) -> None:
    overhead, faulted = result["overhead"], result["faulted"]
    print()
    print(f"fault-free baseline : "
          f"{format_duration(overhead['baseline_wall_seconds'])}")
    print(f"fault-free policed  : "
          f"{format_duration(overhead['policy_wall_seconds'])}"
          f"  -> {overhead['overhead_fraction']:+.2%} overhead"
          f" (budget {overhead['budget_fraction']:.0%})")
    print(f"faulted run         : "
          f"{format_duration(faulted['wall_seconds'])}"
          f"  ({faulted['completed_rows']}/{faulted['unique_candidates']}"
          f" rows, {len(faulted['quarantined'])} quarantined)")
    print(f"recovery            : {faulted['retries']} retries, "
          f"{faulted['timeouts']} timeouts, "
          f"{faulted['respawns']} respawns")
    print(f"survivors identical : {faulted['survivors_bit_identical']}")
    print(f"written             : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_fault_tolerance())
