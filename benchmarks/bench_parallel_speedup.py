"""Parallel-runtime speedup: serial vs pool, cold vs persisted warm-start.

Times one population evaluation four ways:

* **serial cold** — a fresh engine, no executor, empty cache: the PR-1
  baseline every run used to pay.
* **pool cold** — a fresh engine fanned out over
  :class:`~repro.runtime.pool.PopulationExecutor` worker processes.
  Verifies the acceptance criterion that pool-evaluated populations are
  **bit-identical** to serial evaluation (same ``IndicatorTable`` rows).
* **store warm** — a fresh engine whose cache is warm-started from a
  :class:`~repro.runtime.store.RuntimeStore` persisted by the cold run:
  what every repeated benchmark run, CI job and multi-device study pays
  after the first run on a machine.
* **stale store** — a fingerprint-mismatched store must load nothing
  (cold-path timing with a poisoned-store guard, not a wrong answer).

Results land in ``BENCH_parallel.json`` at the repo root, next to
``BENCH_engine.json``, so the perf trajectory is tracked per PR.

Run directly (``python benchmarks/bench_parallel_speedup.py``) or via
pytest (``pytest benchmarks/bench_parallel_speedup.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import tempfile
from pathlib import Path
from typing import Dict

import numpy as np

from repro.engine import Engine
from repro.eval.benchconfig import bench_scale, search_proxy_config
from repro.runtime import PopulationExecutor, RuntimeStore, cache_fingerprint
from repro.searchspace.network import MacroConfig
from repro.searchspace.space import NasBench201Space
from repro.utils.timing import Timer, format_duration

POPULATION_SIZE = 48
N_WORKERS = max(2, multiprocessing.cpu_count())
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _fresh_engine(proxy_config) -> Engine:
    return Engine(proxy_config=proxy_config, macro_config=MacroConfig.full())


def _tables_bit_identical(a, b) -> bool:
    return all(np.array_equal(a.columns[name], b.columns[name])
               for name in a.columns)


def run_parallel_speedup() -> Dict:
    proxy_config = search_proxy_config()
    population = NasBench201Space().sample(POPULATION_SIZE, rng=7)
    fingerprint = cache_fingerprint(proxy_config, MacroConfig.full())

    serial_engine = _fresh_engine(proxy_config)
    with Timer() as serial_timer:
        serial_table = serial_engine.evaluate_population(population)

    executor = PopulationExecutor(n_workers=N_WORKERS, chunk_size=4)
    pool_engine = _fresh_engine(proxy_config)
    with Timer() as pool_timer:
        pool_table = pool_engine.evaluate_population(population,
                                                     executor=executor)

    with tempfile.TemporaryDirectory() as tmp:
        store = RuntimeStore(tmp)
        persisted = store.save_cache(serial_engine.cache, fingerprint)

        warm_engine = _fresh_engine(proxy_config)
        with Timer() as load_timer:
            loaded = store.load_cache_into(warm_engine.cache, fingerprint)
        with Timer() as warm_timer:
            warm_table = warm_engine.evaluate_population(population)

        # A stale store (different proxy/macro fingerprint) must be
        # rejected outright — warm-start never trades speed for poison.
        stale_fingerprint = cache_fingerprint(
            proxy_config.with_seed(proxy_config.seed + 1), MacroConfig.full()
        )
        stale_engine = _fresh_engine(proxy_config)
        stale_loaded = store.load_cache_into(stale_engine.cache,
                                             stale_fingerprint)

    warm_seconds = load_timer.elapsed + warm_timer.elapsed
    result = {
        "bench_scale": bench_scale(),
        "population_size": POPULATION_SIZE,
        "unique_canonical": serial_table.unique_canonical,
        "n_workers": N_WORKERS,
        "cpu_count": multiprocessing.cpu_count(),
        "pool_mode": executor.stats.mode,
        "serial_cold_seconds": serial_timer.elapsed,
        "pool_cold_seconds": pool_timer.elapsed,
        "store_load_seconds": load_timer.elapsed,
        "warm_eval_seconds": warm_timer.elapsed,
        "warm_total_seconds": warm_seconds,
        "pool_speedup": serial_timer.elapsed / max(pool_timer.elapsed, 1e-9),
        "warm_speedup": serial_timer.elapsed / max(warm_seconds, 1e-9),
        "pool_bit_identical": _tables_bit_identical(serial_table, pool_table),
        "warm_bit_identical": _tables_bit_identical(serial_table, warm_table),
        "store_entries_persisted": persisted,
        "store_entries_loaded": loaded,
        "stale_store_entries_loaded": stale_loaded,
        "pool": executor.stats.to_dict(),
    }
    OUTPUT_PATH.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    return result


def test_parallel_speedup(benchmark):
    result = benchmark.pedantic(run_parallel_speedup, rounds=1, iterations=1)
    _report(result)
    assert result["pool_bit_identical"]
    assert result["warm_bit_identical"]
    assert result["store_entries_loaded"] == result["store_entries_persisted"]
    assert result["stale_store_entries_loaded"] == 0
    # The persisted-store warm path must beat cold evaluation soundly;
    # pool speedup is hardware-dependent (== serial on 1-core CI) and is
    # recorded rather than asserted.
    assert result["warm_speedup"] >= 3.0


def _report(result: Dict) -> None:
    print()
    print(f"population              : {result['population_size']} "
          f"({result['unique_canonical']} unique canonical)")
    print(f"serial cold             : "
          f"{format_duration(result['serial_cold_seconds'])}")
    print(f"pool cold ({result['n_workers']} workers)    : "
          f"{format_duration(result['pool_cold_seconds'])}"
          f"  -> {result['pool_speedup']:.2f}x ({result['pool_mode']})")
    print(f"store warm (load+eval)  : "
          f"{format_duration(result['warm_total_seconds'])}"
          f"  -> {result['warm_speedup']:.0f}x")
    print(f"pool bit-identical      : {result['pool_bit_identical']}")
    print(f"warm bit-identical      : {result['warm_bit_identical']}")
    print(f"stale store rejected    : "
          f"{result['stale_store_entries_loaded'] == 0}")
    print(f"written                 : {OUTPUT_PATH}")


if __name__ == "__main__":
    _report(run_parallel_speedup())
